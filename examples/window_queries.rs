//! Window queries: the other fundamental SDBS operator from the paper's
//! introduction. Index a street map, run window queries of varying
//! selectivity, and verify against a linear scan.
//!
//! ```sh
//! cargo run --release -p psj-examples --bin window_queries
//! ```

use psj_datagen::Scenario;
use psj_geom::Rect;
use psj_rtree::{PagedTree, RTree};
use std::time::Instant;

fn main() {
    let scenario = Scenario::scaled(7, 0.1);
    let (streets, _) = scenario.generate();
    println!("indexing {} street segments...", streets.len());
    let mut tree = RTree::new();
    for o in &streets {
        tree.insert(o.mbr(), o.oid);
    }
    let paged = PagedTree::freeze(&tree, |_| None);
    let world = paged.mbr();
    println!(
        "tree: height {}, {} pages, world {:.1} x {:.1} km\n",
        paged.height(),
        paged.num_pages(),
        world.width(),
        world.height()
    );

    println!(
        "{:>12} {:>10} {:>14} {:>14}",
        "window", "results", "R*-tree", "linear scan"
    );
    for frac in [0.01f64, 0.05, 0.2, 0.5, 1.0] {
        let w = Rect::new(
            world.xl,
            world.yl,
            world.xl + world.width() * frac.sqrt(),
            world.yl + world.height() * frac.sqrt(),
        );

        let t0 = Instant::now();
        let hits = paged.window_query(&w);
        let tree_time = t0.elapsed();

        let t0 = Instant::now();
        let scan: Vec<u64> = streets
            .iter()
            .filter(|o| o.mbr().intersects(&w))
            .map(|o| o.oid)
            .collect();
        let scan_time = t0.elapsed();

        assert_eq!(hits.len(), scan.len(), "index and scan disagree");
        println!(
            "{:>11.0}% {:>10} {:>14.2?} {:>14.2?}",
            frac * 100.0,
            hits.len(),
            tree_time,
            scan_time
        );
    }
    println!("\n(index wins at low selectivity; the scan catches up as the window grows)");
}
