//! "Find all forests which are in a city" — the paper's introductory
//! example, as a polygon containment join.
//!
//! The filter step runs on the polygon MBRs through the R\*-tree join; the
//! refinement step then tests exact polygon containment. This shows how the
//! library handles join predicates beyond line intersection: run the filter
//! with `refine = false`, keep the exact geometry on the side, and refine
//! with whatever predicate the query needs.
//!
//! ```sh
//! cargo run --release -p psj-examples --bin forests_in_cities
//! ```

use psj_core::{run_native_join, NativeConfig};
use psj_geom::{Point, Polygon};
use psj_rtree::{PagedTree, RTree};
use rand_like::SimpleRng;

/// Tiny deterministic LCG so the example needs no extra dependencies.
mod rand_like {
    pub struct SimpleRng(u64);
    impl SimpleRng {
        pub fn new(seed: u64) -> Self {
            SimpleRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        }
        pub fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
        pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
            lo + self.next_f64() * (hi - lo)
        }
    }
}

fn blob(rng: &mut SimpleRng, cx: f64, cy: f64, r: f64, sides: usize) -> Polygon {
    let ring = (0..sides)
        .map(|i| {
            let a = i as f64 / sides as f64 * std::f64::consts::TAU;
            let rr = r * (0.8 + 0.4 * rng.next_f64());
            Point::new(cx + rr * a.cos(), cy + rr * a.sin())
        })
        .collect();
    Polygon::new(ring)
}

fn main() {
    let mut rng = SimpleRng::new(1996);

    // Cities: 40 large polygons scattered over a 100x100 map.
    let cities: Vec<Polygon> = (0..40)
        .map(|_| {
            let cx = rng.range(10.0, 90.0);
            let cy = rng.range(10.0, 90.0);
            let r = rng.range(4.0, 9.0);
            blob(&mut rng, cx, cy, r, 12)
        })
        .collect();

    // Forests: 600 small polygons, some inside cities, most not.
    let forests: Vec<Polygon> = (0..600)
        .map(|_| {
            let cx = rng.range(0.0, 100.0);
            let cy = rng.range(0.0, 100.0);
            let r = rng.range(0.3, 1.5);
            blob(&mut rng, cx, cy, r, 8)
        })
        .collect();

    // Index the MBRs; keep the exact polygons for refinement.
    let index = |polys: &[Polygon]| {
        let mut t = RTree::new();
        for (i, p) in polys.iter().enumerate() {
            t.insert(p.mbr(), i as u64);
        }
        PagedTree::freeze(&t, |_| None)
    };
    let forest_tree = index(&forests);
    let city_tree = index(&cities);

    // Filter step: MBR-intersecting (forest, city) pairs via the parallel
    // R*-tree join.
    let mut cfg = NativeConfig::new(4);
    cfg.refine = false; // we refine with the polygon predicate below
    let filter = run_native_join(&forest_tree, &city_tree, &cfg);

    // Refinement step: exact containment.
    let mut contained: Vec<(u64, u64)> = filter
        .pairs
        .iter()
        .copied()
        .filter(|&(f, c)| cities[c as usize].contains_polygon(&forests[f as usize]))
        .collect();
    contained.sort_unstable();

    println!("cities:                 {}", cities.len());
    println!("forests:                {}", forests.len());
    println!("filter-step candidates: {}", filter.candidates);
    println!("forests inside a city:  {}", contained.len());
    println!(
        "false-hit rate:         {:.0}%",
        100.0 * (1.0 - contained.len() as f64 / filter.candidates.max(1) as f64)
    );
    for (f, c) in contained.iter().take(6) {
        println!("  forest {f:>3} ⊂ city {c}");
    }

    // Sanity: brute-force agreement.
    let mut brute: Vec<(u64, u64)> = Vec::new();
    for (f, forest) in forests.iter().enumerate() {
        for (c, city) in cities.iter().enumerate() {
            if city.contains_polygon(forest) {
                brute.push((f as u64, c as u64));
            }
        }
    }
    brute.sort_unstable();
    assert_eq!(
        contained, brute,
        "index join must agree with the brute force"
    );
    println!("verified against brute force ✓");
}
