//! Quickstart: index two small relations with R\*-trees and join them in
//! parallel.
//!
//! ```sh
//! cargo run --release -p psj-examples --bin quickstart
//! ```

use psj_core::{run_native_join, NativeConfig};
use psj_geom::{Point, Polyline};
use psj_rtree::{PagedTree, RTree};

fn main() {
    // --- 1. Two tiny relations: "roads" and "rivers". ----------------------
    // Roads: a little grid. Rivers: two diagonals crossing it.
    let roads: Vec<Polyline> = (0..10)
        .flat_map(|k| {
            let c = k as f64;
            [
                Polyline::new(vec![Point::new(0.0, c), Point::new(9.0, c)]), // horizontal
                Polyline::new(vec![Point::new(c, 0.0), Point::new(c, 9.0)]), // vertical
            ]
        })
        .collect();
    let rivers = vec![
        Polyline::new(vec![Point::new(-1.0, -1.0), Point::new(10.0, 10.0)]),
        Polyline::new(vec![Point::new(-1.0, 10.0), Point::new(10.0, -1.0)]),
        Polyline::new(vec![Point::new(20.0, 20.0), Point::new(30.0, 30.0)]), // far away
    ];

    // --- 2. Build and freeze one R*-tree per relation. ---------------------
    // `freeze` assigns 4 KB pages and stores the exact geometry in per-page
    // clusters so the join's refinement step can use it.
    let tree_of = |objs: &[Polyline]| {
        let mut t = RTree::new();
        for (i, g) in objs.iter().enumerate() {
            t.insert(g.mbr(), i as u64);
        }
        let objs = objs.to_vec();
        PagedTree::freeze(&t, move |oid| Some(objs[oid as usize].clone()))
    };
    let road_tree = tree_of(&roads);
    let river_tree = tree_of(&rivers);

    // --- 3. Parallel spatial join: which roads cross which rivers? ---------
    let cfg = NativeConfig::new(4); // 4 threads, dynamic assignment + stealing
    let result = run_native_join(&road_tree, &river_tree, &cfg);

    println!("tasks created:        {}", result.tasks);
    println!("filter candidates:    {}", result.candidates);
    println!("exact intersections:  {}", result.pairs.len());
    println!("wall time:            {:?}", result.elapsed);

    let mut pairs = result.pairs;
    pairs.sort_unstable();
    for (road, river) in pairs.iter().take(8) {
        println!("  road {road:>2} crosses river {river}");
    }
    if pairs.len() > 8 {
        println!("  ... and {} more", pairs.len() - 8);
    }

    // Every road crosses both diagonals; river 2 is out of reach.
    assert!(pairs.iter().all(|&(_, river)| river != 2));
}
