//! Map overlay: the paper's motivating workload at (scaled-down) TIGER
//! size — join a street map against a boundaries/rivers/railways map and
//! report filter and refinement statistics plus the parallel speed-up on
//! the *real* machine this example runs on.
//!
//! ```sh
//! cargo run --release -p psj-examples --bin map_overlay -- [scale]
//! ```
//! Default scale 0.1 (≈13 k + 13 k objects). Scale 1.0 reproduces the
//! paper's full workload (needs a few seconds to index).

use psj_core::{join_candidates, run_native_join, NativeConfig};
use psj_datagen::{map_stats, Scenario};
use psj_rtree::{PagedTree, RTree};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let scenario = Scenario::scaled(1996, scale);
    println!(
        "generating TIGER-like scenario: {} streets + {} line features",
        scenario.map1_objects, scenario.map2_objects
    );
    let (map1, map2) = scenario.generate();
    let s1 = map_stats(&map1);
    let s2 = map_stats(&map2);
    println!(
        "map1: avg MBR extent {:.3} km, avg {:.1} vertices; map2: {:.3} km, {:.1} vertices",
        s1.avg_mbr_extent, s1.avg_vertices, s2.avg_mbr_extent, s2.avg_vertices
    );

    let index = |objs: &[psj_datagen::MapObject], name: &str| {
        let t0 = Instant::now();
        let mut t = RTree::new();
        for o in objs {
            t.insert(o.mbr(), o.oid);
        }
        let geoms: HashMap<u64, psj_geom::Polyline> =
            objs.iter().map(|o| (o.oid, o.geom.clone())).collect();
        let paged = PagedTree::freeze(&t, move |oid| geoms.get(&oid).cloned());
        println!(
            "{name}: height {}, {} data pages, {} dir pages ({:.2?})",
            paged.height(),
            paged.stats().num_data_pages,
            paged.stats().num_dir_pages,
            t0.elapsed()
        );
        paged
    };
    let a = index(&map1, "tree1");
    let b = index(&map2, "tree2");

    // Sequential filter step (the BKS'93 baseline).
    let t0 = Instant::now();
    let seq = join_candidates(&a, &b);
    let seq_time = t0.elapsed();
    println!(
        "\nsequential filter step: {} candidates in {:.2?}",
        seq.candidates.len(),
        seq_time
    );

    // Parallel join with exact refinement at increasing thread counts.
    println!("\nparallel join (filter + exact refinement):");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>8}",
        "threads", "results", "wall time", "speedup", "steals"
    );
    let mut t1 = None;
    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut threads = 1;
    while threads <= max_threads {
        let res = run_native_join(&a, &b, &NativeConfig::new(threads));
        let secs = res.elapsed.as_secs_f64();
        let base = *t1.get_or_insert(secs);
        println!(
            "{:>8} {:>12} {:>12.3?} {:>9.1}x {:>8}",
            threads,
            res.pairs.len(),
            res.elapsed,
            base / secs,
            res.steals
        );
        threads *= 2;
    }
}
