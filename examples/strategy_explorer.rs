//! Strategy explorer: run the *simulated* KSR1-style platform over all
//! combinations of buffer organization, task assignment and reassignment
//! policy, and print a comparison table — a miniature of the paper's whole
//! evaluation in one command.
//!
//! ```sh
//! cargo run --release -p psj-examples --bin strategy_explorer -- [scale] [procs] [disks]
//! ```

use psj_core::{run_sim_join, Assignment, BufferOrg, Reassignment, SimConfig, VictimSelection};
use psj_datagen::Scenario;
use psj_rtree::{PagedTree, RTree};
use std::collections::HashMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let procs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let disks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(procs);
    let buffer = ((800.0 * scale).ceil() as usize).max(2 * procs);

    println!("scale {scale}, {procs} processors, {disks} disks, buffer {buffer} pages\n");
    let (map1, map2) = Scenario::scaled(1996, scale).generate();
    let index = |objs: &[psj_datagen::MapObject]| {
        let mut t = RTree::new();
        for o in objs {
            t.insert(o.mbr(), o.oid);
        }
        let geoms: HashMap<u64, psj_geom::Polyline> =
            objs.iter().map(|o| (o.oid, o.geom.clone())).collect();
        PagedTree::freeze(&t, move |oid| geoms.get(&oid).cloned())
    };
    let a = index(&map1);
    let b = index(&map2);

    println!(
        "{:<8} {:<12} {:<11} {:>9} {:>10} {:>8} {:>8} {:>9}",
        "buffer", "assignment", "reassign", "resp[s]", "reads", "hit%", "steals", "busy[s]"
    );
    for buffer_org in [BufferOrg::Local, BufferOrg::Global] {
        for assignment in [
            Assignment::StaticRange,
            Assignment::StaticRoundRobin,
            Assignment::Dynamic,
        ] {
            for reassignment in [
                Reassignment::None,
                Reassignment::RootLevel,
                Reassignment::AllLevels,
            ] {
                let cfg = SimConfig {
                    num_procs: procs,
                    num_disks: disks,
                    buffer_pages_total: buffer,
                    buffer_org,
                    assignment,
                    reassignment,
                    victim: VictimSelection::MostLoaded,
                    platform: psj_core::Platform::paper(disks),
                    min_tasks_factor: 4,
                    min_steal: 2,
                    seed: 0,
                    collect_candidates: false,
                    ..SimConfig::best(procs, disks, buffer)
                };
                let m = run_sim_join(&a, &b, &cfg).metrics;
                println!(
                    "{:<8} {:<12} {:<11} {:>9.1} {:>10} {:>7.1}% {:>8} {:>9.1}",
                    match buffer_org {
                        BufferOrg::Local => "local",
                        BufferOrg::Global => "global",
                    },
                    assignment.short(),
                    match reassignment {
                        Reassignment::None => "none",
                        Reassignment::RootLevel => "root",
                        Reassignment::AllLevels => "all",
                    },
                    m.response_secs(),
                    m.disk_accesses,
                    m.buffer.hit_ratio() * 100.0,
                    m.reassignments,
                    m.total_busy_secs(),
                );
            }
        }
    }
    println!("\nthe paper's named variants: lsr = local/range/root,");
    println!("gsrr = global/round-robin/root, gd = global/dynamic/root,");
    println!("best = global/dynamic/all");
}
