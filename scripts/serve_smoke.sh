#!/usr/bin/env bash
# Smoke test for the query service: generate a small workload, start
# `psj serve` on loopback, drive it with `psj bench-serve`, and assert the
# run completed requests and the server shut down cleanly within a bound.
set -euo pipefail

PSJ="${PSJ:-target/release/psj}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

PORT="${SERVE_SMOKE_PORT:-7941}"
ADDR="127.0.0.1:${PORT}"
TIMEOUT_S=120

echo "== generate + build =="
"$PSJ" generate --scale 0.02 --seed 1996 --out1 "$WORK/m1.psjm" --out2 "$WORK/m2.psjm"
"$PSJ" build --map "$WORK/m1.psjm" --out "$WORK/t1.psjt"
"$PSJ" build --map "$WORK/m2.psjm" --out "$WORK/t2.psjt"

echo "== start server =="
"$PSJ" serve --trees "$WORK/t1.psjt,$WORK/t2.psjt" --addr "$ADDR" \
  --workers 2 --cache 1024 > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the listener to come up.
for _ in $(seq 1 100); do
  if grep -q "serving on" "$WORK/server.log" 2>/dev/null; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server exited before accepting connections:"; cat "$WORK/server.log"; exit 1
  fi
  sleep 0.1
done

echo "== bench-serve =="
"$PSJ" bench-serve --addr "$ADDR" --clients 4 --requests 50 --seed 7 \
  --out "$WORK/smoke.json" --shutdown | tee "$WORK/bench.log"

echo "== assertions =="
COMPLETED=$(sed -n 's/.*"completed": \([0-9]*\).*/\1/p' "$WORK/smoke.json" | head -1)
if [ -z "$COMPLETED" ] || [ "$COMPLETED" -eq 0 ]; then
  echo "FAIL: no completed requests (completed=${COMPLETED:-unset})"
  cat "$WORK/smoke.json"; exit 1
fi
echo "completed requests: $COMPLETED"

# The --shutdown flag asked the server to drain and exit; it must do so
# within the timeout, with exit status 0.
WAITED=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
  if [ "$WAITED" -ge "$TIMEOUT_S" ]; then
    echo "FAIL: server still running ${TIMEOUT_S}s after shutdown request"
    kill -9 "$SERVER_PID"; exit 1
  fi
  sleep 1; WAITED=$((WAITED + 1))
done
if ! wait "$SERVER_PID"; then
  echo "FAIL: server exited non-zero"; cat "$WORK/server.log"; exit 1
fi
grep -q "server report" "$WORK/server.log" || {
  echo "FAIL: no shutdown report in server log"; cat "$WORK/server.log"; exit 1
}
echo "== server log =="
cat "$WORK/server.log"
echo "serve smoke test passed"
