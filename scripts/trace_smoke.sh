#!/usr/bin/env bash
# Smoke test for the observability layer: run a traced native join and
# validate the emitted JSONL with `psj trace-check`, then start a server,
# scrape the Prometheus exposition with `psj metrics`, and assert the
# scrape agrees with the binary stats report.
set -euo pipefail

PSJ="${PSJ:-target/release/psj}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

PORT="${TRACE_SMOKE_PORT:-7951}"
ADDR="127.0.0.1:${PORT}"

echo "== generate + build =="
"$PSJ" generate --scale 0.02 --seed 1996 --out1 "$WORK/m1.psjm" --out2 "$WORK/m2.psjm"
"$PSJ" build --map "$WORK/m1.psjm" --out "$WORK/t1.psjt"
"$PSJ" build --map "$WORK/m2.psjm" --out "$WORK/t2.psjt"

echo "== traced join =="
"$PSJ" join --tree1 "$WORK/t1.psjt" --tree2 "$WORK/t2.psjt" \
  --threads 4 --cache 256 --trace "$WORK/join.jsonl" | tee "$WORK/join.log"
grep -q "task segments:" "$WORK/join.log" || {
  echo "FAIL: join printed no task attribution"; exit 1
}

echo "== trace-check =="
# Exits nonzero unless every line parses, spans nest per thread row, and
# the trace contains at least one span.
"$PSJ" trace-check "$WORK/join.jsonl"
# Every line must be a self-contained JSON object (JSONL, Perfetto-loadable).
BAD=$(grep -cv '^{.*}$' "$WORK/join.jsonl" || true)
if [ "$BAD" -ne 0 ]; then
  echo "FAIL: $BAD non-JSON-object lines in trace"; exit 1
fi
# At least one task span and the worker thread-name metadata must be present.
grep -q '"name":"task"' "$WORK/join.jsonl" || { echo "FAIL: no task spans"; exit 1; }
grep -q '"ph":"M"' "$WORK/join.jsonl" || { echo "FAIL: no thread metadata"; exit 1; }

echo "== metrics scrape =="
"$PSJ" serve --trees "$WORK/t1.psjt,$WORK/t2.psjt" --addr "$ADDR" \
  --workers 2 --cache 1024 > "$WORK/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  if grep -q "serving on" "$WORK/server.log" 2>/dev/null; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server exited before accepting connections:"; cat "$WORK/server.log"; exit 1
  fi
  sleep 0.1
done

"$PSJ" query --addr "$ADDR" --tree 0 --window 0,0,0.05,0.05 > /dev/null
"$PSJ" query --addr "$ADDR" --tree 0 --join-with 1 > /dev/null
"$PSJ" metrics --addr "$ADDR" | tee "$WORK/metrics.txt" | head -20

COMPLETED=$(sed -n 's/^psj_requests_completed_total \([0-9]*\)$/\1/p' "$WORK/metrics.txt")
if [ -z "$COMPLETED" ] || [ "$COMPLETED" -lt 2 ]; then
  echo "FAIL: exposition missing completed counter (got '${COMPLETED:-unset}')"; exit 1
fi
# The binary stats report reads the same atomics as the scrape.
"$PSJ" query --addr "$ADDR" --stats | tee "$WORK/stats.txt"
grep -q "requests:   ${COMPLETED} completed" "$WORK/stats.txt" || {
  echo "FAIL: stats report disagrees with Prometheus scrape (${COMPLETED} completed)"
  exit 1
}
grep -q '^psj_request_latency_seconds_bucket{le=' "$WORK/metrics.txt" || {
  echo "FAIL: no histogram buckets in exposition"; exit 1
}
grep -q '^psj_worker_panics_total 0$' "$WORK/metrics.txt" || {
  echo "FAIL: unexpected worker panics (or counter missing)"; exit 1
}

"$PSJ" query --addr "$ADDR" --shutdown
wait "$SERVER_PID" || { echo "FAIL: server exited non-zero"; cat "$WORK/server.log"; exit 1; }
echo "trace smoke test passed"
