#!/usr/bin/env bash
# Smoke test for the sharded cluster: plan shards from generated maps,
# start three `psj serve --shard-id` processes plus the scatter-gather
# router, drive load through the router while SIGKILLing one shard
# mid-run, and assert the cluster degraded (partial answers, success on
# at least two thirds of the load) instead of failing — then restart the
# shard and assert the router's prober brings it back, as recorded by
# the per-shard Prometheus counters.
set -euo pipefail

PSJ="${PSJ:-target/release/psj}"
WORK="$(mktemp -d)"
cleanup() {
  kill -9 "${ROUTER_PID:-}" "${S0_PID:-}" "${S1_PID:-}" "${S2_PID:-}" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

BASE_PORT="${CLUSTER_SMOKE_PORT:-7951}"
ROUTER_ADDR="127.0.0.1:$((BASE_PORT + 10))"

echo "== generate + shard-plan =="
"$PSJ" generate --scale 0.02 --seed 1996 --out1 "$WORK/m1.psjm" --out2 "$WORK/m2.psjm"
"$PSJ" shard-plan --map1 "$WORK/m1.psjm" --map2 "$WORK/m2.psjm" --shards 3 \
  --out "$WORK/cluster" --base-port "$BASE_PORT"

echo "== start shards + router =="
start_shard() { # id -> pid, log at $WORK/shard$1.log
  local id=$1
  "$PSJ" serve --trees "$WORK/cluster/shard${id}_a.psjt,$WORK/cluster/shard${id}_b.psjt" \
    --addr "127.0.0.1:$((BASE_PORT + id))" --shard-id "$id" \
    --workers 2 --cache 1024 > "$WORK/shard${id}.log" 2>&1 &
}
wait_for() { # pattern, log, pid
  for _ in $(seq 1 100); do
    if grep -q "$1" "$2" 2>/dev/null; then return 0; fi
    if ! kill -0 "$3" 2>/dev/null; then
      echo "process died before '$1':"; cat "$2"; exit 1
    fi
    sleep 0.1
  done
  echo "timed out waiting for '$1' in $2"; cat "$2"; exit 1
}
start_shard 0; S0_PID=$!
start_shard 1; S1_PID=$!
start_shard 2; S2_PID=$!
wait_for "serving on" "$WORK/shard0.log" "$S0_PID"
wait_for "serving on" "$WORK/shard1.log" "$S1_PID"
wait_for "serving on" "$WORK/shard2.log" "$S2_PID"
"$PSJ" cluster-serve --topology "$WORK/cluster/topology.txt" --addr "$ROUTER_ADDR" \
  > "$WORK/router.log" 2>&1 &
ROUTER_PID=$!
wait_for "routing on" "$WORK/router.log" "$ROUTER_PID"

echo "== load through the router, SIGKILL shard 1 mid-run =="
"$PSJ" bench-serve --addr "$ROUTER_ADDR" --clients 4 --requests 1500 --seed 7 \
  --deadline-ms 2000 --reconnect --out "$WORK/smoke.json" > "$WORK/bench.log" 2>&1 &
BENCH_PID=$!
sleep 0.5
kill -9 "$S1_PID"
wait "$BENCH_PID" || { echo "FAIL: bench-serve errored"; cat "$WORK/bench.log"; exit 1; }
cat "$WORK/bench.log"

echo "== assertions: degraded, not dead =="
OFFERED=$(sed -n 's/.*"offered": \([0-9]*\).*/\1/p' "$WORK/smoke.json" | head -1)
COMPLETED=$(sed -n 's/.*"completed": \([0-9]*\).*/\1/p' "$WORK/smoke.json" | head -1)
if [ -z "$OFFERED" ] || [ -z "$COMPLETED" ] || [ "$OFFERED" -eq 0 ]; then
  echo "FAIL: bad bench report"; cat "$WORK/smoke.json"; exit 1
fi
# Success on at least two thirds of the offered load with a shard dead.
if [ $((COMPLETED * 3)) -lt $((OFFERED * 2)) ]; then
  echo "FAIL: only $COMPLETED/$OFFERED completed with one shard down"
  cat "$WORK/smoke.json"; exit 1
fi
echo "completed $COMPLETED/$OFFERED with shard 1 dead"

# A full-extent window through the router must answer partially (the dead
# shard named), not hang or error: query prints a deterministic banner.
"$PSJ" query --addr "$ROUTER_ADDR" --tree 0 --window=-1e12,-1e12,1e12,1e12 \
  --deadline-ms 2000 > "$WORK/partial.log"
grep -q "partial (missing shards: 1)" "$WORK/partial.log" || {
  echo "FAIL: expected a partial answer naming shard 1"; cat "$WORK/partial.log"; exit 1
}
echo "router degraded to: $(head -1 "$WORK/partial.log")"

echo "== restart shard 1, wait for recovery =="
start_shard 1; S1_PID=$!
wait_for "serving on" "$WORK/shard1.log" "$S1_PID"
RECOVERED=0
for _ in $(seq 1 100); do
  "$PSJ" query --addr "$ROUTER_ADDR" --tree 0 --window=-1e12,-1e12,1e12,1e12 \
    --deadline-ms 2000 > "$WORK/recover.log" 2>&1 || true
  if ! grep -q "partial" "$WORK/recover.log" && grep -q "entries" "$WORK/recover.log"; then
    RECOVERED=1; break
  fi
  sleep 0.2
done
if [ "$RECOVERED" -ne 1 ]; then
  echo "FAIL: shard 1 never rejoined"; cat "$WORK/recover.log"; cat "$WORK/router.log"; exit 1
fi
echo "shard 1 rejoined without touching the router"

echo "== router metrics recorded the round trip =="
"$PSJ" metrics --addr "$ROUTER_ADDR" > "$WORK/metrics.log"
for SERIES in \
  'psj_router_shard_down_total{shard="1"}' \
  'psj_router_shard_probes_total{shard="1"}' \
  'psj_router_shard_recovered_total{shard="1"}'; do
  VALUE=$(grep -F "$SERIES" "$WORK/metrics.log" | awk '{print $2}' | head -1)
  if [ -z "$VALUE" ] || [ "${VALUE%%.*}" -lt 1 ]; then
    echo "FAIL: $SERIES missing or zero (got '${VALUE:-unset}')"
    cat "$WORK/metrics.log"; exit 1
  fi
  echo "$SERIES = $VALUE"
done

echo "cluster smoke test passed"
