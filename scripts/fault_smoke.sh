#!/usr/bin/env bash
# Fault-tolerance smoke test: corrupt one page of a persisted index with
# dd, assert `psj fsck` flags it and exits nonzero, then serve the damaged
# index (leniently) beside a healthy one and assert the healthy tree
# answers while queries needing the poisoned page get a typed
# storage-corrupt reply — all without the server crashing.
set -euo pipefail

PSJ="${PSJ:-target/release/psj}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

PORT="${FAULT_SMOKE_PORT:-7947}"
ADDR="127.0.0.1:${PORT}"

echo "== generate + build =="
"$PSJ" generate --scale 0.02 --seed 1996 --out1 "$WORK/m1.psjm" --out2 "$WORK/m2.psjm"
"$PSJ" build --map "$WORK/m1.psjm" --out "$WORK/healthy.psjt"
"$PSJ" build --map "$WORK/m2.psjm" --out "$WORK/victim.psjt"

echo "== fsck on the clean index =="
"$PSJ" fsck "$WORK/victim.psjt" | tee "$WORK/fsck_clean.json"
grep -qF '"corrupt_pages":[]' "$WORK/fsck_clean.json" || {
  echo "FAIL: clean index reported corrupt pages"; exit 1; }

echo "== corrupt page 0 with dd =="
# Page records start right after the 30-byte header; clobbering offset 30
# lands inside page 0's payload, which the CRC footer must catch.
printf '\377\377\377\377' | dd of="$WORK/victim.psjt" bs=1 seek=30 conv=notrunc status=none

echo "== fsck flags the damage and exits nonzero =="
if "$PSJ" fsck "$WORK/victim.psjt" > "$WORK/fsck_bad.json" 2>"$WORK/fsck_bad.err"; then
  echo "FAIL: fsck exited zero on a corrupt index"; exit 1
fi
cat "$WORK/fsck_bad.json"
grep -qF '"corrupt_pages":[0]' "$WORK/fsck_bad.json" || {
  echo "FAIL: fsck did not name page 0"; exit 1; }

echo "== strict load refuses the corrupt index =="
if "$PSJ" stats --tree "$WORK/victim.psjt" 2>"$WORK/strict.err"; then
  echo "FAIL: strict load accepted a corrupt index"; exit 1
fi
grep -qi "corrupt" "$WORK/strict.err" || {
  echo "FAIL: strict load error is not typed as corruption:";
  cat "$WORK/strict.err"; exit 1; }

echo "== serve healthy + poisoned (lenient) =="
"$PSJ" serve --trees "$WORK/healthy.psjt,$WORK/victim.psjt" --addr "$ADDR" \
  --workers 2 --cache 1024 --lenient > "$WORK/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "serving on" "$WORK/server.log" 2>/dev/null && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server exited before accepting connections:"; cat "$WORK/server.log"; exit 1
  fi
  sleep 0.1
done
grep -q "LENIENT: 1 corrupt pages poisoned" "$WORK/server.log" || {
  echo "FAIL: lenient load did not poison the damaged page";
  cat "$WORK/server.log"; exit 1; }

echo "== healthy tree answers =="
"$PSJ" query --addr "$ADDR" --tree 0 --window="-100000,-100000,100000,100000" \
  | tee "$WORK/healthy.out"
head -n1 "$WORK/healthy.out" | grep -qv "^0 entries" || {
  echo "FAIL: healthy tree returned nothing"; exit 1; }

echo "== poisoned tree degrades to a typed storage error =="
if "$PSJ" query --addr "$ADDR" --tree 1 --window="-100000,-100000,100000,100000" \
    > "$WORK/victim.out" 2>&1; then
  echo "FAIL: query over the poisoned page succeeded"; cat "$WORK/victim.out"; exit 1
fi
grep -q "storage error (corrupt)" "$WORK/victim.out" || {
  echo "FAIL: expected a typed storage-corrupt reply:"; cat "$WORK/victim.out"; exit 1; }

echo "== healthy tree still answers after the storage error =="
"$PSJ" query --addr "$ADDR" --tree 0 --window "0,0,1000,1000" > /dev/null

echo "== telemetry counts the corruption =="
"$PSJ" query --addr "$ADDR" --stats | tee "$WORK/stats.out"
grep -q "corrupt pages detected" "$WORK/stats.out" || {
  echo "FAIL: no corruption telemetry in stats"; exit 1; }

echo "== shutdown =="
"$PSJ" query --addr "$ADDR" --shutdown
WAITED=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
  if [ "$WAITED" -ge 60 ]; then
    echo "FAIL: server still running 60s after shutdown"; kill -9 "$SERVER_PID"; exit 1
  fi
  sleep 1; WAITED=$((WAITED + 1))
done
if ! wait "$SERVER_PID"; then
  echo "FAIL: server exited non-zero"; cat "$WORK/server.log"; exit 1
fi
echo "fault smoke test passed"
