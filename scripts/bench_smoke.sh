#!/usr/bin/env bash
# Benchmark smoke test: run the quick `psj bench-join` suite and compare the
# result against the committed baseline (BENCH_join.json) with bench-check.
# CI machines are noisy and slower than the baseline host, so only
# machine-independent numbers are gated: the kernel speedup ratio, each
# row's *scheduled* speedup vs. its own t=1 run (per-morsel t=1 costs
# replayed through the deterministic scheduler simulator — meaningful even
# on single-core runners), an absolute floor on the 4-thread dynamic row,
# and proof that the quick matrix exercised the steal path at least once.
# Absolute wall-clock throughput is reported but never asserted.
set -euo pipefail

PSJ="${PSJ:-target/release/psj}"
BASELINE="${BENCH_BASELINE:-BENCH_join.json}"
TOLERANCE="${BENCH_TOLERANCE:-0.25}"
# The quick matrix must keep at least this scheduled speedup at 4 threads
# on the dynamic/global row. The committed baseline sits well above it;
# the floor catches scheduler regressions that relative drift would let
# slide when the baseline itself degrades.
MIN_T4="${BENCH_MIN_T4:-1.2}"
# The partition engine must stay genuinely faster than build-index-then-join
# on unindexed streams (the config `partition_speedup_vs_rtree` gates). The
# baseline host measures ~2.3x; 1.3 leaves room for runner noise while still
# catching a partition engine that has stopped paying for itself.
MIN_PARTITION="${BENCH_MIN_PARTITION:-1.3}"
# The contended-read row re-reads a fully resident tree from 4 workers; the
# optimistic (seqlock) path must serve essentially every hit without taking
# a shard mutex. The share is a pure path-count ratio — machine-independent
# — and sits at 1.0 when healthy; 0.9 tolerates scheduling artifacts only.
MIN_OPT_SHARE="${BENCH_MIN_OPT_SHARE:-0.9}"
# Wall ratios between the three contended read paths, measured back to back
# in one process on identical read sequences — they gate the *relative*
# cost of the paths, not the machine. The optimistic path must beat the
# all-mutex locked path (baseline host ~1.45x), and the borrowing guard
# read must beat the Arc-clone optimistic read (baseline host ~1.4x; the
# guard halves the contended atomic RMWs per hit).
MIN_OPT_SPEEDUP="${BENCH_MIN_OPT_SPEEDUP:-1.1}"
MIN_GUARD_SPEEDUP="${BENCH_MIN_GUARD_SPEEDUP:-1.15}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

if [ ! -f "$BASELINE" ]; then
  echo "FAIL: committed baseline $BASELINE not found"; exit 1
fi

echo "== bench-join (quick) =="
"$PSJ" bench-join --quick --seed 1996 --out "$WORK/candidate.json" \
  | tee "$WORK/bench.log"

echo "== bench-check vs $BASELINE (tolerance $TOLERANCE, t4 floor $MIN_T4, partition floor $MIN_PARTITION, opt-share floor $MIN_OPT_SHARE, opt-speedup floor $MIN_OPT_SPEEDUP, guard-speedup floor $MIN_GUARD_SPEEDUP) =="
"$PSJ" bench-check --baseline "$BASELINE" --candidate "$WORK/candidate.json" \
  --tolerance "$TOLERANCE" --min "t4_gd_global=$MIN_T4" --require-steals \
  --min-partition "$MIN_PARTITION" --min-opt-share "$MIN_OPT_SHARE" \
  --min-opt-speedup "$MIN_OPT_SPEEDUP" --min-guard-speedup "$MIN_GUARD_SPEEDUP"

echo "bench smoke test passed"
