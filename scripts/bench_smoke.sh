#!/usr/bin/env bash
# Benchmark smoke test: run the quick `psj bench-join` suite and compare the
# result against the committed baseline (BENCH_join.json) with bench-check.
# CI machines are noisy and slower than the baseline host, so only the
# *relative* numbers are gated: kernel and join speedups must stay within
# the tolerance of the committed run; absolute throughput is reported but
# not asserted.
set -euo pipefail

PSJ="${PSJ:-target/release/psj}"
BASELINE="${BENCH_BASELINE:-BENCH_join.json}"
TOLERANCE="${BENCH_TOLERANCE:-0.25}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

if [ ! -f "$BASELINE" ]; then
  echo "FAIL: committed baseline $BASELINE not found"; exit 1
fi

echo "== bench-join (quick) =="
"$PSJ" bench-join --quick --seed 1996 --out "$WORK/candidate.json" \
  | tee "$WORK/bench.log"

echo "== bench-check vs $BASELINE (tolerance $TOLERANCE) =="
"$PSJ" bench-check --baseline "$BASELINE" --candidate "$WORK/candidate.json" \
  --tolerance "$TOLERANCE"

echo "bench smoke test passed"
