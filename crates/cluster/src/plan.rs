//! Spatial shard planning and the cluster topology format.
//!
//! Shards are vertical slabs: shard `i` owns the half-open x-interval
//! `[x_lo, x_hi)`, with the first slab open to `-inf` and the last to
//! `+inf`, so every reference point `x` has exactly one owner. Items are
//! *replicated* into every slab their MBR overlaps — a window query then
//! only needs the slabs its rectangle touches, and a join fans out to
//! every slab with each shard keeping only the pairs whose reference
//! point (`a.xl.max(b.xl)`) it owns, which yields each cross-shard pair
//! exactly once.
//!
//! Cut placement reuses the morsel cost model: the planner builds
//! throwaway trees over both inputs, runs task creation and
//! [`psj_core::morsel::morselize`] to get the plane-sweep-ordered work
//! estimate, and places cuts so each slab carries an equal share of the
//! *estimated join work* rather than an equal object count — skew in
//! overlap density moves the cuts, exactly like morsel budgets move task
//! boundaries. When the cost model has nothing to say (an empty side,
//! disjoint MBRs, or degenerate estimates) the planner falls back to
//! object-count quantiles of the lower x-edges.

use psj_core::cost::CandidateEstimator;
use psj_core::morsel::{morselize, MorselOptions};
use psj_core::task::create_tasks;
use psj_geom::Rect;
use psj_rtree::bulk::bulk_load_str;
use psj_rtree::PagedTree;

/// One shard's identity and owned x-interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// Shard id, dense from 0.
    pub id: u16,
    /// Inclusive lower bound of the owned interval (`-inf` on shard 0).
    pub x_lo: f64,
    /// Exclusive upper bound of the owned interval (`+inf` on the last).
    pub x_hi: f64,
}

/// An ordered, gap-free partition of the x-axis into shard slabs.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// The slabs, ascending by interval, ids `0..n`.
    pub shards: Vec<ShardSpec>,
}

impl ShardPlan {
    /// Builds a plan from strictly increasing, finite cut positions:
    /// `k` cuts make `k + 1` shards. No cuts makes the trivial
    /// single-shard plan.
    ///
    /// # Panics
    /// If `cuts` is not strictly increasing or contains non-finite values.
    pub fn from_cuts(cuts: &[f64]) -> ShardPlan {
        assert!(
            cuts.windows(2).all(|w| w[0] < w[1]) && cuts.iter().all(|c| c.is_finite()),
            "cuts must be strictly increasing and finite: {cuts:?}"
        );
        let mut shards = Vec::with_capacity(cuts.len() + 1);
        let mut lo = f64::NEG_INFINITY;
        for (i, &c) in cuts.iter().enumerate() {
            shards.push(ShardSpec {
                id: i as u16,
                x_lo: lo,
                x_hi: c,
            });
            lo = c;
        }
        shards.push(ShardSpec {
            id: cuts.len() as u16,
            x_lo: lo,
            x_hi: f64::INFINITY,
        });
        ShardPlan { shards }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan is empty (never true for a constructed plan).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning reference point `x` (exactly one, by the
    /// half-open gap-free construction).
    pub fn owner_of(&self, x: f64) -> u16 {
        self.shards
            .iter()
            .find(|s| x >= s.x_lo && x < s.x_hi)
            .map(|s| s.id)
            // Only x = +inf falls through every half-open interval; it
            // belongs to the last slab.
            .unwrap_or((self.shards.len() - 1) as u16)
    }

    /// Ids of the shards whose slab overlaps the x-range `[xl, xu]`.
    pub fn overlapping(&self, xl: f64, xu: f64) -> Vec<u16> {
        self.shards
            .iter()
            .filter(|s| s.x_lo <= xu && s.x_hi > xl)
            .map(|s| s.id)
            .collect()
    }

    /// Distributes items into per-shard buckets, replicating each item
    /// into every slab its MBR overlaps.
    pub fn assign(&self, items: &[(Rect, u64)]) -> Vec<Vec<(Rect, u64)>> {
        let mut buckets: Vec<Vec<(Rect, u64)>> = vec![Vec::new(); self.shards.len()];
        for &(rect, oid) in items {
            for sid in self.overlapping(rect.xl, rect.xu) {
                buckets[sid as usize].push((rect, oid));
            }
        }
        buckets
    }
}

/// Plans `n` shards over the two join inputs, balancing estimated join
/// work across slabs (see the module docs for the fallbacks).
pub fn plan_shards(a: &[(Rect, u64)], b: &[(Rect, u64)], n: usize) -> ShardPlan {
    let n = n.clamp(1, usize::from(u16::MAX - 1));
    if n == 1 {
        return ShardPlan::from_cuts(&[]);
    }
    let cuts = match morsel_cuts(a, b, n) {
        // The cost model found enough structure to place every cut.
        Some(cuts) if cuts.len() == n - 1 => cuts,
        _ => quantile_cuts(a, b, n),
    };
    ShardPlan::from_cuts(&cuts)
}

/// Cut positions from the morsel cost model: walk the plane-sweep-ordered
/// morsels accumulating estimated candidates and cut whenever the running
/// share crosses the next `k/n` boundary, at the x where the following
/// morsel's restriction window begins.
fn morsel_cuts(a: &[(Rect, u64)], b: &[(Rect, u64)], n: usize) -> Option<Vec<f64>> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let ta = PagedTree::freeze(&bulk_load_str(a), |_| None);
    let tb = PagedTree::freeze(&bulk_load_str(b), |_| None);
    let creation = create_tasks(&ta, &tb, n * 16);
    if creation.tasks.is_empty() {
        // Disjoint MBRs: the join is empty and carries no cost signal.
        return None;
    }
    let est = CandidateEstimator::new(&ta, &tb);
    let plan = morselize(&ta, &tb, &creation.tasks, &est, &MorselOptions::new(n));
    if plan.morsels.is_empty() {
        return None;
    }
    // `max(1)` keeps zero-estimate morsels from collapsing whole regions
    // into one slab.
    let total: u64 = plan.morsels.iter().map(|m| m.est.max(1)).sum();
    let mut cuts: Vec<f64> = Vec::with_capacity(n - 1);
    let mut acc = 0u64;
    for (i, m) in plan.morsels.iter().enumerate() {
        acc += m.est.max(1);
        let k = (cuts.len() + 1) as u64;
        if k < n as u64 && acc.saturating_mul(n as u64) >= total.saturating_mul(k) {
            let Some(next) = plan.morsels.get(i + 1) else {
                break;
            };
            let Some(task) = next.tasks.first() else {
                continue;
            };
            let x = task.window.xl;
            if x.is_finite() && cuts.last().is_none_or(|&c| x > c) {
                cuts.push(x);
            }
        }
    }
    (!cuts.is_empty()).then_some(cuts)
}

/// Fallback cuts: quantiles of the combined lower x-edges.
fn quantile_cuts(a: &[(Rect, u64)], b: &[(Rect, u64)], n: usize) -> Vec<f64> {
    let mut xs: Vec<f64> = a
        .iter()
        .chain(b)
        .map(|(r, _)| r.xl)
        .filter(|x| x.is_finite())
        .collect();
    xs.sort_by(f64::total_cmp);
    let mut cuts = Vec::with_capacity(n - 1);
    if xs.is_empty() {
        // No data at all: arbitrary but valid cuts so the requested shard
        // count still stands up (the shards will simply be empty).
        cuts.extend((1..n).map(|k| k as f64));
        return cuts;
    }
    for k in 1..n {
        let x = xs[(k * xs.len() / n).min(xs.len() - 1)];
        // Heavy duplication can make quantiles collide; a plan with fewer
        // slabs than asked is still correct, just less parallel.
        if cuts.last().is_none_or(|&c| x > c) {
            cuts.push(x);
        }
    }
    cuts
}

/// One line of a parsed topology file: a shard's id, address, owned
/// interval, and tree files.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoShard {
    /// Shard id (must be unique in the file).
    pub id: u16,
    /// Listen address, e.g. `127.0.0.1:7001`.
    pub addr: String,
    /// Inclusive lower bound of the owned interval.
    pub x_lo: f64,
    /// Exclusive upper bound of the owned interval.
    pub x_hi: f64,
    /// Paths of the tree files this shard serves, in tree-index order.
    pub trees: Vec<String>,
}

/// The topology file header; bumped if the line format ever changes.
const TOPOLOGY_HEADER: &str = "psj-topology v1";

/// Serializes a topology: one header line, then one
/// `shard <id> <addr> <x_lo> <x_hi> <tree>...` line per shard. `{:?}`
/// float formatting round-trips `inf`/`-inf` through `f64::from_str`.
pub fn format_topology(shards: &[TopoShard]) -> String {
    let mut out = String::new();
    out.push_str(TOPOLOGY_HEADER);
    out.push('\n');
    for s in shards {
        out.push_str(&format!(
            "shard {} {} {:?} {:?}",
            s.id, s.addr, s.x_lo, s.x_hi
        ));
        for t in &s.trees {
            out.push(' ');
            out.push_str(t);
        }
        out.push('\n');
    }
    out
}

/// Parses a topology file. Empty lines and `#` comments are skipped.
/// Errors carry the offending line for diagnostics.
pub fn parse_topology(text: &str) -> Result<Vec<TopoShard>, String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    match lines.next() {
        Some(TOPOLOGY_HEADER) => {}
        other => {
            return Err(format!(
                "expected '{TOPOLOGY_HEADER}' header, got {other:?}"
            ))
        }
    }
    fn field<'a>(s: Option<&'a str>, what: &str, line: &str) -> Result<&'a str, String> {
        s.ok_or_else(|| format!("missing {what} in line: {line}"))
    }
    let mut shards: Vec<TopoShard> = Vec::new();
    for line in lines {
        let mut f = line.split_whitespace();
        if field(f.next(), "keyword", line)? != "shard" {
            return Err(format!("expected 'shard' line, got: {line}"));
        }
        let id: u16 = field(f.next(), "id", line)?
            .parse()
            .map_err(|e| format!("bad shard id in line '{line}': {e}"))?;
        let addr = field(f.next(), "address", line)?.to_string();
        let x_lo: f64 = field(f.next(), "x_lo", line)?
            .parse()
            .map_err(|e| format!("bad x_lo in line '{line}': {e}"))?;
        let x_hi: f64 = field(f.next(), "x_hi", line)?
            .parse()
            .map_err(|e| format!("bad x_hi in line '{line}': {e}"))?;
        if x_lo.is_nan() || x_hi.is_nan() || x_lo >= x_hi {
            return Err(format!("bad interval [{x_lo}, {x_hi}) in line: {line}"));
        }
        let trees: Vec<String> = f.map(str::to_string).collect();
        if trees.is_empty() {
            return Err(format!("shard {id} lists no tree files: {line}"));
        }
        if shards.iter().any(|s| s.id == id) {
            return Err(format!("duplicate shard id {id}"));
        }
        shards.push(TopoShard {
            id,
            addr,
            x_lo,
            x_hi,
            trees,
        });
    }
    if shards.is_empty() {
        return Err("topology lists no shards".to_string());
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, offset: f64) -> Vec<(Rect, u64)> {
        (0..n)
            .map(|i| {
                let x = (i % 40) as f64 * 2.0 + offset;
                let y = (i / 40) as f64 * 2.0 + offset;
                (Rect::new(x, y, x + 1.5, y + 1.5), i as u64)
            })
            .collect()
    }

    #[test]
    fn from_cuts_partitions_the_axis_without_gaps() {
        let plan = ShardPlan::from_cuts(&[10.0, 20.0, 30.0]);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.shards[0].x_lo, f64::NEG_INFINITY);
        assert_eq!(plan.shards[3].x_hi, f64::INFINITY);
        for w in plan.shards.windows(2) {
            assert_eq!(w[0].x_hi, w[1].x_lo, "slabs abut with no gap");
        }
        // Every reference point has exactly one owner, including the cut
        // positions themselves (half-open: a cut belongs to the right slab).
        for (x, want) in [
            (f64::NEG_INFINITY, 0),
            (-1e300, 0),
            (9.999, 0),
            (10.0, 1),
            (19.999, 1),
            (20.0, 2),
            (30.0, 3),
            (1e300, 3),
            (f64::INFINITY, 3),
        ] {
            assert_eq!(plan.owner_of(x), want, "owner of {x}");
            let owners: Vec<u16> = plan
                .shards
                .iter()
                .filter(|s| x >= s.x_lo && x < s.x_hi)
                .map(|s| s.id)
                .collect();
            assert!(owners.len() <= 1, "at most one interval holds {x}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_cuts_rejects_unsorted_cuts() {
        ShardPlan::from_cuts(&[10.0, 10.0]);
    }

    #[test]
    fn overlapping_and_assign_replicate_straddlers() {
        let plan = ShardPlan::from_cuts(&[10.0]);
        assert_eq!(plan.overlapping(-5.0, 3.0), vec![0]);
        assert_eq!(plan.overlapping(11.0, 15.0), vec![1]);
        assert_eq!(plan.overlapping(8.0, 12.0), vec![0, 1]);
        // xu exactly at the cut still touches the right slab (closed MBRs).
        assert_eq!(plan.overlapping(8.0, 10.0), vec![0, 1]);
        let items = vec![
            (Rect::new(0.0, 0.0, 1.0, 1.0), 1),
            (Rect::new(9.0, 0.0, 11.0, 1.0), 2),
            (Rect::new(20.0, 0.0, 21.0, 1.0), 3),
        ];
        let buckets = plan.assign(&items);
        let oids = |b: &[(Rect, u64)]| b.iter().map(|&(_, o)| o).collect::<Vec<_>>();
        assert_eq!(oids(&buckets[0]), vec![1, 2]);
        assert_eq!(oids(&buckets[1]), vec![2, 3]);
    }

    #[test]
    fn planned_cuts_are_increasing_and_cover_the_data() {
        let a = grid(1200, 0.0);
        let b = grid(900, 0.7);
        for n in [1usize, 2, 3, 4, 7] {
            let plan = plan_shards(&a, &b, n);
            assert!(plan.len() <= n, "never more shards than asked");
            assert!(!plan.is_empty());
            let cuts: Vec<f64> = plan.shards[..plan.len() - 1]
                .iter()
                .map(|s| s.x_hi)
                .collect();
            assert!(
                cuts.windows(2).all(|w| w[0] < w[1]),
                "cuts increase: {cuts:?}"
            );
            // Every candidate reference point is owned exactly once.
            for &(ra, _) in &a {
                for &(rb, _) in b.iter().take(50) {
                    let refpt = ra.xl.max(rb.xl);
                    let owner = plan.owner_of(refpt);
                    let holders = plan
                        .shards
                        .iter()
                        .filter(|s| refpt >= s.x_lo && refpt < s.x_hi)
                        .count();
                    assert_eq!(holders, 1, "refpt {refpt} owned once (owner {owner})");
                }
            }
        }
    }

    #[test]
    fn planner_balances_work_not_counts() {
        // Heavily skewed overlap: the left half is dense, the right sparse.
        let mut a = Vec::new();
        for i in 0..1500u64 {
            let x = (i % 30) as f64 * 0.5;
            let y = (i / 30) as f64 * 0.5;
            a.push((Rect::new(x, y, x + 2.0, y + 2.0), i));
        }
        for i in 0..100u64 {
            let x = 100.0 + (i as f64) * 3.0;
            a.push((Rect::new(x, 0.0, x + 1.0, 1.0), 1500 + i));
        }
        let b = a
            .iter()
            .map(|&(r, o)| (Rect::new(r.xl + 0.2, r.yl + 0.2, r.xu + 0.2, r.yu + 0.2), o))
            .collect::<Vec<_>>();
        let plan = plan_shards(&a, &b, 3);
        // With 94% of objects (and nearly all overlap) left of x = 16, a
        // work-balanced 3-way split must place every cut in the dense
        // region, not at the object-count thirds.
        for s in &plan.shards[..plan.len() - 1] {
            assert!(
                s.x_hi < 100.0,
                "cut at {} should fall inside the dense region",
                s.x_hi
            );
        }
    }

    #[test]
    fn degenerate_inputs_still_plan() {
        // Empty side: quantile fallback over the other side.
        let a = grid(100, 0.0);
        let plan = plan_shards(&a, &[], 3);
        assert!(!plan.is_empty() && plan.len() <= 3);
        // Both empty: arbitrary cuts, requested count honored.
        let plan = plan_shards(&[], &[], 4);
        assert_eq!(plan.len(), 4);
        // Disjoint MBRs: create_tasks is empty, fallback engages.
        let far = grid(100, 1e6);
        let plan = plan_shards(&a, &far, 2);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn topology_round_trips_including_infinite_bounds() {
        let shards = vec![
            TopoShard {
                id: 0,
                addr: "127.0.0.1:7001".into(),
                x_lo: f64::NEG_INFINITY,
                x_hi: 12.5,
                trees: vec!["shard0_a.psjt".into(), "shard0_b.psjt".into()],
            },
            TopoShard {
                id: 1,
                addr: "127.0.0.1:7002".into(),
                x_lo: 12.5,
                x_hi: f64::INFINITY,
                trees: vec!["shard1_a.psjt".into(), "shard1_b.psjt".into()],
            },
        ];
        let text = format_topology(&shards);
        assert!(text.starts_with("psj-topology v1\n"));
        let parsed = parse_topology(&text).unwrap();
        assert_eq!(parsed, shards);
        // Comments and blank lines are tolerated.
        let commented = format!("# cluster of two\n\n{text}");
        assert_eq!(parse_topology(&commented).unwrap(), shards);
    }

    #[test]
    fn topology_rejects_malformed_input() {
        assert!(parse_topology("").is_err(), "missing header");
        assert!(parse_topology("psj-topology v2\n").is_err(), "bad version");
        let head = "psj-topology v1\n";
        assert!(
            parse_topology(&format!("{head}shard 0 127.0.0.1:1 5.0 4.0 t.psjt")).is_err(),
            "inverted interval"
        );
        assert!(
            parse_topology(&format!("{head}shard 0 127.0.0.1:1 0.0 1.0")).is_err(),
            "no trees"
        );
        assert!(
            parse_topology(&format!(
                "{head}shard 0 127.0.0.1:1 0.0 1.0 t\nshard 0 127.0.0.1:2 1.0 2.0 t"
            ))
            .is_err(),
            "duplicate id"
        );
        assert!(parse_topology(head).is_err(), "no shards");
    }
}
