//! Per-shard health tracking for the router.
//!
//! Each shard's connectivity is summarized by a four-state machine:
//!
//! ```text
//!            failure              fails >= down_after
//! Healthy ───────────▶ Suspect ─────────────────────▶ Down
//!    ▲                    │ success                     │ probe due
//!    │                    ▼                             ▼
//!    └──────────────── Healthy ◀── success ────────  Probing
//!                                     (probe failure → Down again)
//! ```
//!
//! `Down` shards are skipped by the scatter path entirely — no connect
//! attempts, no latency — until the probe interval elapses; then exactly
//! one request is let through as a probe (`Probing`). A probe success
//! restores `Healthy`; a probe failure returns to `Down` and re-arms the
//! timer. `Suspect` shards still receive traffic (one failure may be a
//! blip), which is what distinguishes them from `Down`.
//!
//! Everything here takes `now: Instant` explicitly instead of reading the
//! clock, so tests can drive the machine through arbitrary schedules.

use std::time::{Duration, Instant};

/// The four health states, ordered by severity for the gauge encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Health {
    /// Responding normally.
    Healthy = 0,
    /// Recent failures below the down threshold; still routed to.
    Suspect = 1,
    /// Failure threshold reached; skipped until the next probe is due.
    Down = 2,
    /// One probe request is in flight; everything else skips.
    Probing = 3,
}

impl Health {
    /// Numeric encoding for the `psj_router_shard_health` gauge.
    pub fn as_gauge(self) -> u64 {
        self as u64
    }
}

/// Thresholds and timing for the health machine.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Consecutive failures that demote a shard to `Down`.
    pub down_after: u32,
    /// How long a `Down` shard rests before a probe is allowed.
    pub probe_interval: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            down_after: 3,
            probe_interval: Duration::from_millis(500),
        }
    }
}

/// A state transition, reported so the router can count it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before the event.
    pub from: Health,
    /// State after the event.
    pub to: Health,
}

/// What the router should do with a request for this shard right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Send normally (retries allowed).
    Route,
    /// Send exactly one attempt as a probe.
    Probe,
    /// Don't send; count the shard missing.
    Skip,
}

/// Mutable health record for one shard.
#[derive(Debug, Clone, Copy)]
pub struct HealthState {
    health: Health,
    /// Consecutive failures since the last success.
    fails: u32,
    /// When a `Down` shard may next be probed.
    next_probe: Option<Instant>,
}

impl Default for HealthState {
    fn default() -> Self {
        HealthState {
            health: Health::Healthy,
            fails: 0,
            next_probe: None,
        }
    }
}

impl HealthState {
    /// A fresh, healthy record.
    pub fn new() -> Self {
        HealthState::default()
    }

    /// Current state.
    pub fn health(&self) -> Health {
        self.health
    }

    /// Records a successful exchange with the shard.
    pub fn on_success(&mut self) -> Option<Transition> {
        self.fails = 0;
        self.next_probe = None;
        let from = self.health;
        self.health = Health::Healthy;
        (from != Health::Healthy).then_some(Transition {
            from,
            to: Health::Healthy,
        })
    }

    /// Records a failed exchange (connect error, transport error, or
    /// read timeout) observed at `now`.
    pub fn on_failure(&mut self, policy: &HealthPolicy, now: Instant) -> Option<Transition> {
        self.fails = self.fails.saturating_add(1);
        let from = self.health;
        // A failed probe goes straight back to Down regardless of the
        // count: the shard just demonstrated it is still unreachable.
        let to = if from == Health::Probing || self.fails >= policy.down_after {
            Health::Down
        } else {
            Health::Suspect
        };
        self.health = to;
        if to == Health::Down {
            self.next_probe = Some(now + policy.probe_interval);
        }
        (from != to).then_some(Transition { from, to })
    }

    /// Routing decision for a request arriving at `now`. Transitions
    /// `Down` to `Probing` when a probe is due (the caller must then
    /// report the probe's outcome via `on_success`/`on_failure`).
    pub fn route(&mut self, now: Instant) -> RouteDecision {
        match self.health {
            Health::Healthy | Health::Suspect => RouteDecision::Route,
            Health::Probing => RouteDecision::Skip,
            Health::Down => match self.next_probe {
                Some(due) if now >= due => {
                    self.health = Health::Probing;
                    RouteDecision::Probe
                }
                _ => RouteDecision::Skip,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            down_after: 3,
            probe_interval: Duration::from_millis(100),
        }
    }

    #[test]
    fn failures_escalate_healthy_suspect_down() {
        let p = policy();
        let t0 = Instant::now();
        let mut s = HealthState::new();
        assert_eq!(
            s.on_failure(&p, t0),
            Some(Transition {
                from: Health::Healthy,
                to: Health::Suspect
            })
        );
        assert_eq!(s.on_failure(&p, t0), None, "suspect stays suspect");
        assert_eq!(
            s.on_failure(&p, t0),
            Some(Transition {
                from: Health::Suspect,
                to: Health::Down
            })
        );
        assert_eq!(s.health(), Health::Down);
    }

    #[test]
    fn success_resets_from_any_state() {
        let p = policy();
        let t0 = Instant::now();
        let mut s = HealthState::new();
        assert_eq!(
            s.on_success(),
            None,
            "healthy → healthy is not a transition"
        );
        s.on_failure(&p, t0);
        let t = s.on_success().expect("suspect → healthy transitions");
        assert_eq!((t.from, t.to), (Health::Suspect, Health::Healthy));
        // And the failure counter really reset: two more failures stay
        // below the three-strike threshold.
        s.on_failure(&p, t0);
        s.on_failure(&p, t0);
        assert_eq!(s.health(), Health::Suspect);
    }

    #[test]
    fn down_shards_skip_until_probe_due_then_probe_once() {
        let p = policy();
        let t0 = Instant::now();
        let mut s = HealthState::new();
        for _ in 0..3 {
            s.on_failure(&p, t0);
        }
        assert_eq!(s.route(t0), RouteDecision::Skip, "probe not yet due");
        let due = t0 + p.probe_interval;
        assert_eq!(s.route(due), RouteDecision::Probe);
        assert_eq!(s.health(), Health::Probing);
        // While the probe is in flight everyone else skips.
        assert_eq!(s.route(due), RouteDecision::Skip);
    }

    #[test]
    fn failed_probe_rearms_the_timer_successful_probe_recovers() {
        let p = policy();
        let t0 = Instant::now();
        let mut s = HealthState::new();
        for _ in 0..3 {
            s.on_failure(&p, t0);
        }
        let t1 = t0 + p.probe_interval;
        assert_eq!(s.route(t1), RouteDecision::Probe);
        let t = s.on_failure(&p, t1).expect("probing → down transitions");
        assert_eq!((t.from, t.to), (Health::Probing, Health::Down));
        // Timer re-armed from the probe failure, not the original demotion.
        assert_eq!(s.route(t1 + Duration::from_millis(50)), RouteDecision::Skip);
        let t2 = t1 + p.probe_interval;
        assert_eq!(s.route(t2), RouteDecision::Probe);
        let t = s.on_success().expect("probing → healthy transitions");
        assert_eq!((t.from, t.to), (Health::Probing, Health::Healthy));
        assert_eq!(s.route(t2), RouteDecision::Route);
    }
}
