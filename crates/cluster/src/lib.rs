//! psj-cluster: horizontal scale-out for the spatial query service.
//!
//! One `psj-serve` process holds one buffer pool on one machine; this
//! crate spreads a dataset across N such processes and puts a router in
//! front that speaks the same wire protocol on both sides:
//!
//! * [`plan`] — the shard planner: cuts the x-axis into slabs at
//!   plane-sweep positions chosen so the *estimated join work* (not the
//!   object count) balances across shards, reusing the morsel cost model
//!   from `psj-core`. Also the textual topology format that ties shard
//!   ids to addresses and owned intervals.
//! * [`health`] — a per-shard health state machine
//!   (healthy → suspect → down → probing) driven by observed successes,
//!   failures, and probe timing; pure and clock-explicit so every
//!   transition is unit-testable.
//! * [`router`] — the scatter-gather router: routes window/nearest
//!   queries to the owning shards, fans joins out with per-shard owned
//!   intervals (cross-shard pairs deduplicated by the reference-point
//!   test on the shards), gathers under a deadline budget with bounded
//!   jittered retries and hedged reads, and degrades to
//!   `Response::Partial` instead of failing when shards are down.
//!
//! The router is itself a protocol server, so every existing client —
//! the CLI, the load generator, another router — can point at a cluster
//! without changes.

#![warn(missing_docs)]

pub mod health;
pub mod plan;
pub mod router;

pub use health::{Health, HealthPolicy, HealthState, RouteDecision, Transition};
pub use plan::{format_topology, parse_topology, plan_shards, ShardPlan, ShardSpec, TopoShard};
pub use router::{Router, RouterConfig, ShardAddr};
