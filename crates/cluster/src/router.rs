//! The scatter-gather router.
//!
//! A [`Router`] is itself a protocol server: it listens on a socket,
//! speaks the same length-prefixed frames as `psj-serve`, and forwards
//! each request to the shards that can answer it:
//!
//! * window queries go to the shards whose slab overlaps the query
//!   rectangle (often just one);
//! * nearest queries go to every shard (the true neighbors of a point
//!   near a slab boundary may live on either side) and the merged
//!   distance order is truncated back to `k`;
//! * joins fan out to every shard, each carrying that shard's owned
//!   interval so the reference-point filter yields every cross-shard
//!   pair exactly once (see `plan`);
//! * `Stats`/`Metrics` answer from the router's own counters; `Info`
//!   merges the shard views.
//!
//! Robustness is the point of this module. Each shard has a health state
//! machine (`health`), a small connection pool, and a latency histogram.
//! Failed exchanges retry under bounded jittered backoff while the
//! request's deadline allows; slow window/nearest scatters are hedged
//! with a second connection after a p99-based delay; shards that keep
//! failing are marked down and skipped (a background prober readmits
//! them). When shards are unreachable past their budget, the router
//! answers [`Response::Partial`] with the data the live shards produced
//! and the missing ids — degraded, never wedged: every gather is bounded
//! by the request deadline.

use crate::health::{Health, HealthPolicy, HealthState, RouteDecision, Transition};
use psj_obs::{Counter, Gauge, Histogram, Registry};
use psj_serve::protocol::{
    read_frame, write_frame, Request, Response, ServerStats, TreeInfo, MAX_REQUEST_FRAME,
    ROUTER_SHARD,
};
use psj_serve::{BackoffPolicy, Client};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A shard's address and owned x-interval, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardAddr {
    /// Shard id (must match the `--shard-id` the shard serves with).
    pub id: u16,
    /// The shard's listen address.
    pub addr: SocketAddr,
    /// Inclusive lower bound of the owned interval.
    pub x_lo: f64,
    /// Exclusive upper bound of the owned interval.
    pub x_hi: f64,
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:0` for tests).
    pub addr: SocketAddr,
    /// The shards, ascending by owned interval.
    pub shards: Vec<ShardAddr>,
    /// Per-attempt connect timeout to a shard.
    pub connect_timeout: Duration,
    /// Per-attempt read timeout on a shard connection.
    pub read_timeout: Duration,
    /// Gather budget for requests that carry no deadline of their own.
    pub default_deadline: Duration,
    /// Retry budget and backoff shape for failed shard exchanges.
    pub retry: BackoffPolicy,
    /// Health state machine thresholds.
    pub health: HealthPolicy,
    /// Hedge slow window/nearest reads with a second connection.
    pub hedge: bool,
    /// Latency samples required before hedging engages (the p99 of an
    /// empty histogram is meaningless).
    pub hedge_min_samples: u64,
    /// Concurrent in-flight client requests before the router sheds.
    pub queue_bound: usize,
    /// Run the background prober (tests of pure routing turn it off).
    pub probe: bool,
    /// Read timeout on the router's own client connections (bounds how
    /// long a halt takes to propagate).
    pub conn_read_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            shards: Vec::new(),
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_secs(2),
            default_deadline: Duration::from_secs(2),
            retry: BackoffPolicy {
                max_retries: 2,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(100),
                jitter_seed: 0x9E37,
            },
            health: HealthPolicy::default(),
            hedge: true,
            hedge_min_samples: 32,
            queue_bound: 256,
            probe: true,
            conn_read_timeout: Duration::from_millis(250),
        }
    }
}

/// Per-shard runtime state: spec, pooled connections, health, metrics.
struct ShardSlot {
    spec: ShardAddr,
    /// Idle connections, reused across requests (bounded).
    pool: Mutex<Vec<Client>>,
    state: Mutex<HealthState>,
    /// Per-shard latency of successful exchanges; feeds the hedge delay.
    /// Internal — not registered (histogram families are unlabeled).
    latency: Histogram,
    retries: Arc<Counter>,
    hedges: Arc<Counter>,
    failures: Arc<Counter>,
    down_total: Arc<Counter>,
    probes: Arc<Counter>,
    recovered: Arc<Counter>,
    health_gauge: Arc<Gauge>,
}

/// Connections kept idle per shard.
const POOL_CAP: usize = 4;

struct Shared {
    cfg: RouterConfig,
    slots: Vec<ShardSlot>,
    registry: Registry,
    requests: Arc<Counter>,
    completed: Arc<Counter>,
    partials: Arc<Counter>,
    deadlines: Arc<Counter>,
    proto_errors: Arc<Counter>,
    shed: Arc<Counter>,
    latency: Arc<Histogram>,
    inflight: AtomicUsize,
    halt: AtomicBool,
}

fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn halted(&self) -> bool {
        self.halt.load(Ordering::Acquire)
    }

    /// Applies a health transition to the per-shard metrics.
    fn record_transition(&self, idx: usize, t: Option<Transition>) {
        let slot = &self.slots[idx];
        if let Some(t) = t {
            if t.to == Health::Down && t.from != Health::Down {
                slot.down_total.inc();
            }
            if t.to == Health::Healthy && matches!(t.from, Health::Down | Health::Probing) {
                slot.recovered.inc();
            }
        }
        slot.health_gauge
            .set(lock_clean(&slot.state).health().as_gauge());
    }
}

/// The scatter-gather router process.
pub struct Router {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown_rx: mpsc::Receiver<()>,
    shutdown_tx_probe: mpsc::Sender<()>,
}

impl Router {
    /// Binds `cfg.addr` and starts the acceptor (and prober).
    pub fn start(cfg: RouterConfig) -> io::Result<Router> {
        if cfg.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(cfg.addr)?;
        let addr = listener.local_addr()?;
        let registry = Registry::new();
        let slots: Vec<ShardSlot> = cfg
            .shards
            .iter()
            .map(|&spec| {
                let sid = spec.id.to_string();
                let slot = ShardSlot {
                    spec,
                    pool: Mutex::new(Vec::new()),
                    state: Mutex::new(HealthState::new()),
                    latency: Histogram::new(),
                    retries: registry.counter_with_label(
                        "psj_router_shard_retries_total",
                        "Shard exchanges retried after a failure",
                        "shard",
                        &sid,
                    ),
                    hedges: registry.counter_with_label(
                        "psj_router_shard_hedges_total",
                        "Hedge connections opened against a slow shard",
                        "shard",
                        &sid,
                    ),
                    failures: registry.counter_with_label(
                        "psj_router_shard_failures_total",
                        "Failed shard exchanges (connect, transport, timeout)",
                        "shard",
                        &sid,
                    ),
                    down_total: registry.counter_with_label(
                        "psj_router_shard_down_total",
                        "Transitions into the Down state",
                        "shard",
                        &sid,
                    ),
                    probes: registry.counter_with_label(
                        "psj_router_shard_probes_total",
                        "Probe attempts against a Down shard",
                        "shard",
                        &sid,
                    ),
                    recovered: registry.counter_with_label(
                        "psj_router_shard_recovered_total",
                        "Recoveries from Down/Probing back to Healthy",
                        "shard",
                        &sid,
                    ),
                    health_gauge: registry.gauge_with_label(
                        "psj_router_shard_health",
                        "Shard health: 0 healthy, 1 suspect, 2 down, 3 probing",
                        "shard",
                        &sid,
                    ),
                };
                slot.health_gauge.set(Health::Healthy.as_gauge());
                slot
            })
            .collect();
        let shared = Arc::new(Shared {
            requests: registry.counter("psj_router_requests_total", "Requests accepted"),
            completed: registry.counter(
                "psj_router_completed_total",
                "Requests answered with a payload (full or partial)",
            ),
            partials: registry.counter(
                "psj_router_partial_responses_total",
                "Degraded answers with missing shards",
            ),
            deadlines: registry.counter(
                "psj_router_deadline_total",
                "Gathers that ran out of deadline budget",
            ),
            proto_errors: registry
                .counter("psj_router_proto_errors_total", "Malformed client frames"),
            shed: registry.counter(
                "psj_router_shed_total",
                "Requests shed by router admission control",
            ),
            latency: registry.histogram(
                "psj_router_latency_seconds",
                "End-to-end router latency over answered requests",
            ),
            registry,
            slots,
            inflight: AtomicUsize::new(0),
            halt: AtomicBool::new(false),
            cfg,
        });

        let (shutdown_tx, shutdown_rx) = mpsc::channel();
        let shutdown_tx = Arc::new(Mutex::new(Some(shutdown_tx)));
        let shutdown_tx_probe = {
            // A second sender keyed off the same channel so `stop` can
            // unblock `wait` without a client Shutdown.
            let guard = lock_clean(&shutdown_tx);
            guard.as_ref().expect("fresh sender").clone()
        };

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("psj-router-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.halted() {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let shared = Arc::clone(&shared);
                        let shutdown_tx = Arc::clone(&shutdown_tx);
                        let h = std::thread::Builder::new()
                            .name("psj-router-conn".into())
                            .spawn(move || handle_conn(&shared, stream, &shutdown_tx))
                            .expect("spawn router connection thread");
                        lock_clean(&conns).push(h);
                    }
                })
                .expect("spawn router acceptor")
        };
        let prober = shared.cfg.probe.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("psj-router-prober".into())
                .spawn(move || prober_loop(&shared))
                .expect("spawn router prober")
        });

        Ok(Router {
            shared,
            addr,
            acceptor: Some(acceptor),
            prober,
            conns,
            shutdown_rx,
            shutdown_tx_probe,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's metrics in Prometheus text format (same content a
    /// `Metrics` request returns).
    pub fn metrics_text(&self) -> String {
        metrics_text(&self.shared)
    }

    /// Blocks until a client sends [`Request::Shutdown`], then stops.
    pub fn wait(self) {
        let _ = self.shutdown_rx.recv();
        self.stop();
    }

    /// Stops the acceptor, prober, and connection threads. Shards are not
    /// contacted — a router shutdown never takes data nodes with it.
    pub fn stop(mut self) {
        self.shared.halt.store(true, Ordering::SeqCst);
        // In case someone is blocked in `wait`.
        let _ = self.shutdown_tx_probe.send(());
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(p) = self.prober.take() {
            let _ = p.join();
        }
        let conns: Vec<JoinHandle<()>> = std::mem::take(&mut *lock_clean(&self.conns));
        for c in conns {
            let _ = c.join();
        }
    }
}

/// One gathered shard answer (or the lack of one).
enum ShardAnswer {
    /// A payload response (`Entries`/`Neighbors`/`Pairs`).
    Payload(Response),
    /// A well-formed non-payload response (`Overloaded`, `Error`, ...):
    /// the shard is healthy but contributed no data.
    Typed(Response),
    /// Nothing usable arrived before the deadline.
    Missing,
}

fn handle_conn(
    shared: &Arc<Shared>,
    stream: TcpStream,
    shutdown_tx: &Arc<Mutex<Option<mpsc::Sender<()>>>>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.conn_read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        let payload = match read_frame(&mut reader, MAX_REQUEST_FRAME) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.halted() {
                    return;
                }
                continue;
            }
            Err(e) => {
                shared.proto_errors.inc();
                if e.kind() == io::ErrorKind::InvalidData {
                    let _ = write_frame(
                        &mut writer,
                        &Response::Error(e.to_string()).encode_or_error(),
                    );
                }
                return;
            }
        };
        let req = match Request::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                shared.proto_errors.inc();
                if write_frame(
                    &mut writer,
                    &Response::Error(e.to_string()).encode_or_error(),
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        if matches!(req, Request::Shutdown) {
            let _ = write_frame(&mut writer, &Response::ShutdownAck.encode_or_error());
            if let Some(tx) = lock_clean(shutdown_tx).take() {
                let _ = tx.send(());
            }
            return;
        }
        let resp = dispatch(shared, req);
        if write_frame(&mut writer, &resp.encode_or_error()).is_err() {
            return;
        }
    }
}

/// Routes one decoded request and produces the reply.
fn dispatch(shared: &Arc<Shared>, req: Request) -> Response {
    shared.requests.inc();
    match req {
        Request::Stats => stats_response(shared),
        Request::Metrics => Response::Metrics(metrics_text(shared)),
        Request::Info => info_response(shared),
        Request::Shutdown => unreachable!("handled in the connection loop"),
        Request::Window { .. } | Request::Nearest { .. } | Request::Join { .. } => {
            // Admission control: bound concurrent scatters.
            if shared.inflight.fetch_add(1, Ordering::SeqCst) >= shared.cfg.queue_bound {
                shared.inflight.fetch_sub(1, Ordering::SeqCst);
                shared.shed.inc();
                return Response::Overloaded;
            }
            let started = Instant::now();
            let resp = scatter_gather(shared, &req, started);
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            match &resp {
                Response::Entries(_) | Response::Neighbors(_) | Response::Pairs(_) => {
                    shared.completed.inc();
                    shared.latency.record(started.elapsed());
                }
                Response::Partial { .. } => {
                    shared.completed.inc();
                    shared.partials.inc();
                    shared.latency.record(started.elapsed());
                }
                Response::DeadlineExceeded => {
                    shared.deadlines.inc();
                }
                _ => {}
            }
            resp
        }
    }
}

/// The scatter targets for a data request: `(slot index, per-shard
/// request)` pairs.
fn targets_for(shared: &Shared, req: &Request) -> Vec<(usize, Request)> {
    match req {
        Request::Window { rect, .. } => shared
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.spec.x_lo <= rect.xu && s.spec.x_hi > rect.xl)
            .map(|(i, _)| (i, req.clone()))
            .collect(),
        Request::Nearest { .. } => (0..shared.slots.len()).map(|i| (i, req.clone())).collect(),
        Request::Join {
            tree_a,
            tree_b,
            refine,
            deadline_ms,
            ..
        } => shared
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                // Each shard keeps only the pairs whose reference point it
                // owns; any owner interval the client sent is superseded.
                (
                    i,
                    Request::Join {
                        tree_a: *tree_a,
                        tree_b: *tree_b,
                        refine: *refine,
                        deadline_ms: *deadline_ms,
                        owner: Some((s.spec.x_lo, s.spec.x_hi)),
                    },
                )
            })
            .collect(),
        _ => Vec::new(),
    }
}

fn request_deadline(shared: &Shared, req: &Request, arrival: Instant) -> Instant {
    let ms = match req {
        Request::Window { deadline_ms, .. }
        | Request::Nearest { deadline_ms, .. }
        | Request::Join { deadline_ms, .. } => *deadline_ms,
        _ => 0,
    };
    let budget = if ms > 0 {
        Duration::from_millis(u64::from(ms))
    } else {
        shared.cfg.default_deadline
    };
    arrival + budget
}

/// Whether this request kind may be hedged (reads only; a join is too
/// expensive to run twice on a hunch).
fn hedgeable(req: &Request) -> bool {
    matches!(req, Request::Window { .. } | Request::Nearest { .. })
}

/// Fans the request out and gathers under the deadline. Returns the
/// merged payload, a `Partial` when shards are missing, or a typed
/// error/`DeadlineExceeded` for degenerate outcomes.
fn scatter_gather(shared: &Arc<Shared>, req: &Request, arrival: Instant) -> Response {
    let targets = targets_for(shared, req);
    if targets.is_empty() {
        return Response::Error("request resolves to no shard".into());
    }
    let deadline = request_deadline(shared, req, arrival);
    let hedge = hedgeable(req);

    let (tx, rx) = mpsc::channel::<(usize, ShardAnswer)>();
    let n = targets.len();
    for (idx, shard_req) in targets {
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        // Detached on purpose: a thread stuck on a black-holed shard must
        // not wedge the gather — the channel simply never hears from it
        // and the deadline prevails.
        std::thread::Builder::new()
            .name(format!("psj-router-scatter-{}", shared.slots[idx].spec.id))
            .spawn(move || {
                let answer = query_shard(&shared, idx, &shard_req, deadline, hedge);
                let _ = tx.send((idx, answer));
            })
            .expect("spawn scatter thread");
    }
    drop(tx);

    let mut answers: Vec<(usize, ShardAnswer)> = Vec::with_capacity(n);
    let mut deadline_hit = false;
    while answers.len() < n {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            deadline_hit = true;
            break;
        }
        match rx.recv_timeout(remaining) {
            Ok(a) => answers.push(a),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                deadline_hit = true;
                break;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    if deadline_hit {
        shared.deadlines.inc();
    }

    merge(shared, req, answers)
}

/// Merges gathered answers into the client-facing response.
fn merge(shared: &Shared, req: &Request, answers: Vec<(usize, ShardAnswer)>) -> Response {
    let mut answered: Vec<usize> = Vec::new();
    let mut payloads: Vec<Response> = Vec::new();
    let mut typed: Vec<Response> = Vec::new();
    let mut typed_missing: Vec<u16> = Vec::new();
    for (idx, a) in answers {
        match a {
            ShardAnswer::Payload(r) => {
                answered.push(idx);
                payloads.push(r);
            }
            ShardAnswer::Typed(r) => {
                typed_missing.push(shared.slots[idx].spec.id);
                typed.push(r);
            }
            ShardAnswer::Missing => {}
        }
    }
    // Shards that produced no payload — transport-missing, typed, or
    // never heard from — are the partial set.
    let mut missing: Vec<u16> = shared
        .slots
        .iter()
        .enumerate()
        .filter(|(i, _)| !answered.contains(i))
        // Only shards that were actually targeted count as missing: a
        // window over slab 2 is not "missing" slabs 0 and 1.
        .filter(|(_, s)| match req {
            Request::Window { rect, .. } => s.spec.x_lo <= rect.xu && s.spec.x_hi > rect.xl,
            _ => true,
        })
        .map(|(_, s)| s.spec.id)
        .collect();
    missing.sort_unstable();
    missing.dedup();

    if payloads.is_empty() {
        // No data at all. If every targeted shard answered with the same
        // kind of typed refusal, pass the first through for single-node
        // parity (e.g. `Error("unknown tree")`); otherwise report the
        // outage as a deadline/partial problem.
        if missing.len() == typed_missing.len() && !typed.is_empty() {
            return typed.into_iter().next().expect("nonempty");
        }
        if missing.is_empty() {
            return Response::Error("no shard produced a response".into());
        }
        return Response::Partial {
            missing_shards: missing,
            inner: Box::new(empty_payload(req)),
        };
    }

    let inner = merge_payloads(req, payloads);
    if missing.is_empty() {
        inner
    } else {
        Response::Partial {
            missing_shards: missing,
            inner: Box::new(inner),
        }
    }
}

/// The empty payload of the right kind for a degraded answer with no
/// surviving data.
fn empty_payload(req: &Request) -> Response {
    match req {
        Request::Window { .. } => Response::Entries(Vec::new()),
        Request::Nearest { .. } => Response::Neighbors(Vec::new()),
        _ => Response::Pairs(Vec::new()),
    }
}

/// Merges same-kind payloads. Replication makes duplicates *expected*
/// for entries (an item in two slabs answers from both); joins are
/// disjoint by the owner filter but are deduplicated anyway so a
/// misconfigured shard cannot double-report.
fn merge_payloads(req: &Request, payloads: Vec<Response>) -> Response {
    match req {
        Request::Window { .. } => {
            let mut oids: Vec<u64> = Vec::new();
            for p in payloads {
                if let Response::Entries(mut e) = p {
                    oids.append(&mut e);
                }
            }
            oids.sort_unstable();
            oids.dedup();
            Response::Entries(oids)
        }
        Request::Nearest { k, .. } => {
            let mut nn: Vec<(f64, u64)> = Vec::new();
            for p in payloads {
                if let Response::Neighbors(mut e) = p {
                    nn.append(&mut e);
                }
            }
            // Replicas of one object report identical (distance, oid)
            // tuples; sort by distance then oid and drop exact repeats.
            nn.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            nn.dedup_by(|a, b| a.0.to_bits() == b.0.to_bits() && a.1 == b.1);
            nn.truncate(*k as usize);
            Response::Neighbors(nn)
        }
        _ => {
            let mut pairs: Vec<(u64, u64)> = Vec::new();
            for p in payloads {
                if let Response::Pairs(mut e) = p {
                    pairs.append(&mut e);
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            Response::Pairs(pairs)
        }
    }
}

/// Sends one request to one shard under the health machine, retry
/// budget, and deadline. Returns the shard's answer classification.
fn query_shard(
    shared: &Arc<Shared>,
    idx: usize,
    req: &Request,
    deadline: Instant,
    hedge: bool,
) -> ShardAnswer {
    let slot = &shared.slots[idx];
    let decision = lock_clean(&slot.state).route(Instant::now());
    let attempts = match decision {
        RouteDecision::Skip => return ShardAnswer::Missing,
        RouteDecision::Probe => {
            slot.probes.inc();
            slot.health_gauge.set(Health::Probing.as_gauge());
            1
        }
        RouteDecision::Route => shared.cfg.retry.max_retries + 1,
    };
    for attempt in 0..attempts {
        if attempt > 0 {
            let delay = shared.cfg.retry.delay(attempt - 1);
            if Instant::now() + delay >= deadline {
                break;
            }
            std::thread::sleep(delay);
            slot.retries.inc();
        }
        let result = if hedge && decision == RouteDecision::Route {
            attempt_hedged(shared, idx, req, deadline)
        } else {
            attempt_once(shared, idx, req, deadline)
        };
        match result {
            Ok(resp) => {
                let t = lock_clean(&slot.state).on_success();
                shared.record_transition(idx, t);
                return match resp {
                    Response::Entries(_) | Response::Neighbors(_) | Response::Pairs(_) => {
                        ShardAnswer::Payload(resp)
                    }
                    // The shard answered but contributed no data
                    // (overloaded, deadline, storage, bad tree, ...).
                    other => ShardAnswer::Typed(other),
                };
            }
            Err(_) => {
                slot.failures.inc();
                let t = lock_clean(&slot.state).on_failure(&shared.cfg.health, Instant::now());
                shared.record_transition(idx, t);
            }
        }
        if Instant::now() >= deadline {
            break;
        }
    }
    ShardAnswer::Missing
}

/// One exchange on a pooled (or fresh) connection, bounded by the
/// remaining deadline budget.
fn attempt_once(
    shared: &Arc<Shared>,
    idx: usize,
    req: &Request,
    deadline: Instant,
) -> io::Result<Response> {
    let slot = &shared.slots[idx];
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "deadline exhausted before the attempt",
        ));
    }
    let mut client = match lock_clean(&slot.pool).pop() {
        Some(c) => c,
        None => {
            Client::connect_timeout(&slot.spec.addr, shared.cfg.connect_timeout.min(remaining))?
        }
    };
    let timeout = shared.cfg.read_timeout.min(remaining);
    client.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
    let started = Instant::now();
    // A failed exchange drops the connection (its stream may hold a
    // half-read frame); only clean exchanges return to the pool.
    let resp = client.request(req)?;
    if matches!(resp, Response::Partial { .. }) {
        // Shards never answer Partial; a shard that does is broken.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "shard answered with a router-only Partial response",
        ));
    }
    slot.latency.record(started.elapsed());
    let mut pool = lock_clean(&slot.pool);
    if pool.len() < POOL_CAP {
        pool.push(client);
    }
    Ok(resp)
}

/// The hedge delay for a shard: its observed p99, clamped to something
/// sane (a cold or absurd histogram must not produce a 0 ns or 10 s
/// hedge).
fn hedge_delay(slot: &ShardSlot) -> Duration {
    let p99_ms = slot.latency.quantile_ms(0.99);
    Duration::from_micros((p99_ms * 1_000.0).clamp(1_000.0, 250_000.0) as u64)
}

/// An attempt with a hedge: if the primary exchange has not answered
/// within the shard's p99, a second connection races it; first answer
/// wins. Only engaged once enough latency samples exist.
fn attempt_hedged(
    shared: &Arc<Shared>,
    idx: usize,
    req: &Request,
    deadline: Instant,
) -> io::Result<Response> {
    let slot = &shared.slots[idx];
    if !shared.cfg.hedge || slot.latency.count() < shared.cfg.hedge_min_samples {
        return attempt_once(shared, idx, req, deadline);
    }
    let delay = hedge_delay(slot);
    let (tx, rx) = mpsc::channel::<io::Result<Response>>();
    let spawn_attempt = |tx: mpsc::Sender<io::Result<Response>>| {
        let shared = Arc::clone(shared);
        let req = req.clone();
        std::thread::Builder::new()
            .name("psj-router-hedge".into())
            .spawn(move || {
                let _ = tx.send(attempt_once(&shared, idx, &req, deadline));
            })
            .expect("spawn hedge thread");
    };
    spawn_attempt(tx.clone());
    match rx.recv_timeout(delay) {
        Ok(first) => first,
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "hedge primary vanished",
        )),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Primary is slow: open the hedge and take whichever answers
            // first, within what remains of the deadline.
            slot.hedges.inc();
            spawn_attempt(tx.clone());
            drop(tx);
            let mut last_err: Option<io::Error> = None;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(last_err.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::TimedOut, "hedged attempts timed out")
                    }));
                }
                match rx.recv_timeout(remaining) {
                    Ok(Ok(resp)) => return Ok(resp),
                    Ok(Err(e)) => last_err = Some(e),
                    Err(_) => {
                        return Err(last_err.unwrap_or_else(|| {
                            io::Error::new(io::ErrorKind::TimedOut, "hedged attempts timed out")
                        }))
                    }
                }
            }
        }
    }
}

/// Verifies a Down shard has come back: fresh connection, `Info`, and
/// the responder must identify as the shard the topology expects.
fn probe_shard(shared: &Shared, idx: usize) -> bool {
    let slot = &shared.slots[idx];
    let Ok(mut client) = Client::connect_timeout(&slot.spec.addr, shared.cfg.connect_timeout)
    else {
        return false;
    };
    if client
        .set_read_timeout(Some(shared.cfg.read_timeout))
        .is_err()
    {
        return false;
    }
    match client.info_tagged() {
        Ok((sid, trees)) => sid == slot.spec.id && !trees.is_empty(),
        Err(_) => false,
    }
}

/// Background prober: readmits Down shards without waiting for client
/// traffic to trip over them.
fn prober_loop(shared: &Arc<Shared>) {
    let tick = shared
        .cfg
        .health
        .probe_interval
        .min(Duration::from_millis(50));
    let tick = tick.max(Duration::from_millis(5));
    while !shared.halted() {
        std::thread::sleep(tick);
        for idx in 0..shared.slots.len() {
            let slot = &shared.slots[idx];
            let decision = {
                let mut st = lock_clean(&slot.state);
                if st.health() != Health::Down {
                    continue;
                }
                st.route(Instant::now())
            };
            if decision != RouteDecision::Probe {
                continue;
            }
            slot.probes.inc();
            slot.health_gauge.set(Health::Probing.as_gauge());
            let ok = probe_shard(shared, idx);
            let t = if ok {
                lock_clean(&slot.state).on_success()
            } else {
                lock_clean(&slot.state).on_failure(&shared.cfg.health, Instant::now())
            };
            shared.record_transition(idx, t);
        }
    }
}

/// Router stats in the server's stats shape, so `psj stats` and the
/// load generator work unchanged against a router.
fn stats_response(shared: &Shared) -> Response {
    Response::Stats(ServerStats {
        completed: shared.completed.get(),
        shed: shared.shed.get(),
        timeouts: shared.deadlines.get(),
        proto_errors: shared.proto_errors.get(),
        queue_depth: shared.inflight.load(Ordering::SeqCst) as u32,
        p50_ms: shared.latency.quantile_ms(0.50),
        p95_ms: shared.latency.quantile_ms(0.95),
        p99_ms: shared.latency.quantile_ms(0.99),
        ..ServerStats::default()
    })
}

fn metrics_text(shared: &Shared) -> String {
    // Health gauges are refreshed at scrape time so a state that changed
    // without a transition event still renders correctly.
    for slot in shared.slots.iter() {
        slot.health_gauge
            .set(lock_clean(&slot.state).health().as_gauge());
    }
    shared.registry.render_prometheus()
}

/// Merged cluster view: per tree index, the union MBR and summed sizes
/// across the shards that answered. Replicated items are counted once
/// per replica — the numbers describe the physical cluster, not the
/// logical dataset.
fn info_response(shared: &Arc<Shared>) -> Response {
    let deadline = Instant::now() + shared.cfg.default_deadline;
    let mut merged: Vec<TreeInfo> = Vec::new();
    let mut any = false;
    for idx in 0..shared.slots.len() {
        let Ok(resp) = attempt_once(shared, idx, &Request::Info, deadline) else {
            continue;
        };
        let Response::Info { trees, .. } = resp else {
            continue;
        };
        any = true;
        for (t, info) in trees.into_iter().enumerate() {
            match merged.get_mut(t) {
                Some(m) => {
                    m.mbr = m.mbr.union(&info.mbr);
                    m.len += info.len;
                    m.pages += info.pages;
                }
                None => merged.push(info),
            }
        }
    }
    if !any {
        return Response::Error("no shard reachable for info".into());
    }
    Response::Info {
        shard: ROUTER_SHARD,
        trees: merged,
    }
}
