//! Metrics collected by the executors — the quantities the paper's figures
//! plot.

use crate::partition::JoinEngine;
use psj_buffer::BufferStats;
use psj_store::timing::to_secs;
use psj_store::Nanos;
use serde::{Deserialize, Serialize};

/// Everything one parallel join run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinMetrics {
    /// Number of processors used.
    pub num_procs: usize,
    /// Number of disks used.
    pub num_disks: usize,
    /// Number of tasks created in phase 1 (the paper's `m`).
    pub tasks: usize,
    /// Wall-clock (virtual) time from start to the last computed pair — the
    /// paper's *response time*, determined by the processor finishing last.
    pub response_time: Nanos,
    /// Per-processor completion times (Figure 7's vertical bars).
    pub proc_finish: Vec<Nanos>,
    /// Per-processor busy time: completion time minus time spent parked
    /// with no work. Their sum is the paper's "total run time of all tasks".
    pub proc_busy: Vec<Nanos>,
    /// Total number of disk accesses (the y axis of Figures 5, 8, 10).
    pub disk_accesses: u64,
    /// Disk accesses that read directory pages.
    pub dir_page_reads: u64,
    /// Disk accesses that read data pages (incl. their geometry clusters).
    pub data_page_reads: u64,
    /// Aggregated buffer statistics.
    pub buffer: BufferStats,
    /// Candidate pairs produced (and refined) by the filter step.
    pub candidates: u64,
    /// Number of successful task reassignments.
    pub reassignments: u64,
    /// Number of times an idle processor found nothing to steal.
    pub steals_failed: u64,
}

impl JoinMetrics {
    /// Response time in seconds.
    pub fn response_secs(&self) -> f64 {
        to_secs(self.response_time)
    }

    /// Sum of the per-processor busy times — the paper's "total run time of
    /// all tasks" — in seconds.
    pub fn total_busy_secs(&self) -> f64 {
        to_secs(self.proc_busy.iter().sum())
    }

    /// Earliest per-processor completion, in seconds (Figure 7 lower tick).
    pub fn min_finish_secs(&self) -> f64 {
        to_secs(self.proc_finish.iter().copied().min().unwrap_or(0))
    }

    /// Mean per-processor completion, in seconds (Figure 7 middle tick).
    pub fn avg_finish_secs(&self) -> f64 {
        if self.proc_finish.is_empty() {
            0.0
        } else {
            to_secs(self.proc_finish.iter().sum::<Nanos>()) / self.proc_finish.len() as f64
        }
    }

    /// Latest per-processor completion, in seconds (equals the response
    /// time; Figure 7 upper tick).
    pub fn max_finish_secs(&self) -> f64 {
        to_secs(self.proc_finish.iter().copied().max().unwrap_or(0))
    }

    /// Speed-up relative to a baseline (usually the 1-processor run).
    pub fn speedup_vs(&self, baseline: &JoinMetrics) -> f64 {
        baseline.response_time as f64 / self.response_time.max(1) as f64
    }
}

/// How a morsel (unit of execution) reached the worker that ran it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOrigin {
    /// Popped from the worker's own queue (static assignment).
    Assigned,
    /// Taken from the shared queue (dynamic assignment).
    Injector,
    /// Reassigned from another worker's queue (the paper's dynamic task
    /// reassignment). The run's steal counter equals the number of traces
    /// with this origin — steal accounting is exact.
    Steal,
}

/// Per-morsel attribution recorded by the native executor on every run:
/// what one morsel cost the worker that executed it. These are the
/// quantities behind the paper's Figures 7–9 — per-processor page accesses,
/// local vs. remote buffer hits, and the task-time skew that reassignment
/// is meant to flatten — surfaced per morsel instead of per run. The
/// per-morsel [`TaskTrace::wall`] costs of a 1-thread run double as the
/// cost vector for the scheduled-speedup simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TaskTrace {
    /// Worker that executed the task.
    pub worker: usize,
    /// Morsel this segment executed: the native executor records exactly
    /// one trace per acquired morsel, keyed by its plane-sweep id.
    pub morsel: u32,
    /// Phase-1 (post-split) tasks contained in the morsel.
    pub tasks: u32,
    /// How the morsel was acquired: popped from the worker's own queue,
    /// taken from the shared queue, or reassigned from a victim.
    pub origin: TaskOrigin,
    /// Node pairs expanded while executing the task (descendants included).
    pub node_pairs: u64,
    /// Filter-step candidates produced (and, if enabled, refined).
    pub candidates: u64,
    /// Node/page requests issued: cache requests when buffered, node
    /// fetches otherwise.
    pub pages: u64,
    /// Cache hits on pages this worker itself faulted in.
    pub hits_local: u64,
    /// Hits absorbed by the worker's private L1 front (no shard lock, no
    /// stat atomics on the hot path; flushed exactly at segment boundaries).
    pub hits_l1: u64,
    /// Cache hits on pages another worker faulted in (the accesses the
    /// paper charges with the interconnect penalty).
    pub hits_remote: u64,
    /// Cache misses (pages fetched from the source).
    pub misses: u64,
    /// Page-fetch retries absorbed inside the cache.
    pub retries: u64,
    /// Wall-clock time from acquiring the task to finishing it.
    pub wall: std::time::Duration,
    /// Engine that executed the morsel ([`JoinEngine::RTree`] for native
    /// tree-traversal morsels, [`JoinEngine::Partition`] for grid cells).
    pub engine: JoinEngine,
    /// Grid-replicated item placements touched by this morsel's cells
    /// (always 0 for the R-tree engine, which never replicates).
    pub replicated: u64,
    /// Cross-cell duplicate pairs this morsel suppressed via the
    /// reference-point test (always 0 for the R-tree engine).
    pub deduped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use psj_store::SECS;

    fn metrics(finish: Vec<Nanos>) -> JoinMetrics {
        JoinMetrics {
            num_procs: finish.len(),
            num_disks: finish.len(),
            tasks: 0,
            response_time: finish.iter().copied().max().unwrap_or(0),
            proc_busy: finish.clone(),
            proc_finish: finish,
            disk_accesses: 0,
            dir_page_reads: 0,
            data_page_reads: 0,
            buffer: BufferStats::default(),
            candidates: 0,
            reassignments: 0,
            steals_failed: 0,
        }
    }

    #[test]
    fn finish_statistics() {
        let m = metrics(vec![2 * SECS, 4 * SECS, 6 * SECS]);
        assert_eq!(m.min_finish_secs(), 2.0);
        assert_eq!(m.avg_finish_secs(), 4.0);
        assert_eq!(m.max_finish_secs(), 6.0);
        assert_eq!(m.response_secs(), 6.0);
        assert_eq!(m.total_busy_secs(), 12.0);
    }

    #[test]
    fn speedup() {
        let base = metrics(vec![100 * SECS]);
        let par = metrics(vec![4 * SECS, 5 * SECS]);
        assert_eq!(par.speedup_vs(&base), 20.0);
    }

    #[test]
    fn empty_metrics_do_not_panic() {
        let m = metrics(vec![]);
        assert_eq!(m.avg_finish_secs(), 0.0);
        assert_eq!(m.max_finish_secs(), 0.0);
    }
}
