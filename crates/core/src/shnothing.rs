//! Shared-nothing distributed spatial join — the paper's §5 future work.
//!
//! "In our future work, we are particularly interested in a distributed
//! spatial join processing using a shared-nothing architecture. [...] In
//! contrast to the SVM-model, in a shared-nothing architecture the
//! assignment of the data to the different disks is of special interest."
//!
//! This executor models a cluster of `n` *sites*, each with its own
//! processor, private buffer, and private disk. Every page has a **home
//! site** determined by the placement policy; a site needing a foreign page
//! sends a request over the interconnect: the home site serves it from its
//! buffer or reads it from *its* disk, then ships the 4 KB page back
//! (request latency + transfer time). Received pages are cached in the
//! requester's buffer (replication — the paper notes that parallel spatial
//! joins need data replication or communication; here we model both).
//!
//! The placement policy is the experiment: round-robin (`page mod n`, the
//! paper's spatially-oblivious simulated disk array) versus contiguous
//! block partitioning (pages in depth-first order are spatially clustered,
//! so blocks ≈ spatial partitions — good locality for range-assigned tasks,
//! but hot-spot prone).

use crate::assign::{static_range, static_round_robin, Assignment};
use crate::cost::Platform;
use crate::metrics::JoinMetrics;
use crate::task::{create_tasks, expand_pair, Candidate, KernelScratch, TaskPair};
use psj_buffer::{BufferStats, LocalBuffers, PathBuffer};
use psj_desim::{EventQueue, ResourcePool};
use psj_rtree::PagedTree;
use psj_store::disk::DiskStats;
use psj_store::{Nanos, PageId, MICROS};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How pages are assigned to home sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// `page mod n` — spatially oblivious, perfectly balanced.
    RoundRobin,
    /// Contiguous blocks of the (depth-first, spatially clustered) page
    /// order — spatially correlated, hot-spot prone.
    Contiguous,
}

/// Interconnect model (ATM-era defaults; both fields are configurable).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Network {
    /// One-way message latency.
    pub latency: Nanos,
    /// Transfer time for one 4 KB page.
    pub page_transfer: Nanos,
}

impl Network {
    /// A mid-90s ATM switch: ~250 µs latency, ~12 MB/s effective → ~330 µs
    /// per 4 KB page.
    pub fn atm() -> Self {
        Network {
            latency: 250 * MICROS,
            page_transfer: 330 * MICROS,
        }
    }

    /// A modern datacenter network: 10 µs latency, ~1 GB/s → 4 µs per page.
    pub fn fast() -> Self {
        Network {
            latency: 10 * MICROS,
            page_transfer: 4 * MICROS,
        }
    }
}

/// Configuration of one shared-nothing run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedConfig {
    /// Number of sites (processor + buffer + disk each).
    pub num_sites: usize,
    /// Buffer pages per site.
    pub buffer_pages_per_site: usize,
    /// Page placement policy.
    pub placement: Placement,
    /// Task assignment (dynamic uses a coordinator queue at site 0; queue
    /// accesses from other sites pay a network round trip).
    pub assignment: Assignment,
    /// Interconnect model.
    pub network: Network,
    /// Disk and CPU cost model (per-site disks use the same disk model).
    pub platform: Platform,
    /// Phase 1 descends until at least `min_tasks_factor × n` tasks exist.
    pub min_tasks_factor: usize,
    /// Collect candidate pairs for verification.
    pub collect_candidates: bool,
}

impl ShardedConfig {
    /// Round-robin placement, dynamic assignment, ATM network.
    pub fn new(num_sites: usize, buffer_pages_per_site: usize) -> Self {
        ShardedConfig {
            num_sites,
            buffer_pages_per_site,
            placement: Placement::RoundRobin,
            assignment: Assignment::Dynamic,
            network: Network::atm(),
            platform: Platform::paper(num_sites),
            min_tasks_factor: 4,
            collect_candidates: false,
        }
    }
}

/// Metrics specific to the shared-nothing run, wrapping [`JoinMetrics`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedMetrics {
    /// The common join metrics.
    pub join: JoinMetrics,
    /// Page requests served over the network.
    pub remote_requests: u64,
    /// Remote requests that the home site answered from its buffer.
    pub remote_buffer_hits: u64,
    /// Total bytes shipped over the interconnect.
    pub network_bytes: u64,
}

/// Result of a shared-nothing run.
#[derive(Debug, Clone)]
pub struct ShardedResult {
    /// Metrics.
    pub metrics: ShardedMetrics,
    /// Candidates when requested.
    pub candidates: Option<Vec<(u64, u64)>>,
}

#[derive(Debug, Clone, Copy)]
enum Stage {
    NeedA,
    NeedB,
    Process,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Resume(usize),
}

struct Site {
    workload: VecDeque<TaskPair>,
    stack: Vec<TaskPair>,
    pending: Option<(TaskPair, Stage)>,
    /// A page to install into this site's buffer on resume.
    install: Option<PageId>,
    paths: [PathBuffer; 2],
    parked: bool,
    idle_total: Nanos,
    idle_before_last_work: Nanos,
    parked_since: Nanos,
    last_work_end: Nanos,
    /// Work version observed when the site parked; it is only woken when
    /// new work has appeared since (prevents wake/park live-lock).
    parked_version: u64,
}

enum PageOutcome {
    Acquired,
    Blocked(Nanos),
}

/// Runs one shared-nothing simulated join.
pub fn run_sharded_join(a: &PagedTree, b: &PagedTree, cfg: &ShardedConfig) -> ShardedResult {
    assert!(cfg.num_sites > 0);
    let n = cfg.num_sites;
    let b_offset = a.num_pages() as u32;
    let total_pages = a.num_pages() + b.num_pages();
    let block = total_pages.div_ceil(n);
    let home_of = |upid: PageId| -> usize {
        match cfg.placement {
            Placement::RoundRobin => upid.index() % n,
            Placement::Contiguous => (upid.index() / block).min(n - 1),
        }
    };
    let upid = |tree: u8, page: PageId| -> PageId {
        if tree == 0 {
            page
        } else {
            PageId(page.0 + b_offset)
        }
    };
    let level_of = |tree: u8, page: PageId| -> usize {
        (if tree == 0 {
            a.node(page)
        } else {
            b.node(page)
        })
        .level as usize
    };
    let service_time = |tree: u8, page: PageId| -> Nanos {
        if level_of(tree, page) == 0 {
            let bytes = if tree == 0 {
                a.clusters().bytes_of(page)
            } else {
                b.clusters().bytes_of(page)
            };
            cfg.platform.disk.data_page_read_time(bytes)
        } else {
            cfg.platform.disk.page_read_time()
        }
    };

    // --- Phase 1 on site 0 (sequential). ---------------------------------
    let tc = create_tasks(a, b, cfg.min_tasks_factor * n);
    let tasks_created = tc.tasks.len();

    let mut buffers = LocalBuffers::new(n, cfg.buffer_pages_per_site);
    let mut disks = ResourcePool::new(n); // one disk per site
    let mut disk_stats = DiskStats::new(n);
    let mut events: EventQueue<Ev> = EventQueue::new();
    let mut shared_queue: VecDeque<TaskPair> = VecDeque::new();
    let mut sites: Vec<Site> = (0..n)
        .map(|_| Site {
            workload: VecDeque::new(),
            stack: Vec::new(),
            pending: None,
            install: None,
            paths: [
                PathBuffer::new(a.height() as usize),
                PathBuffer::new(b.height() as usize),
            ],
            parked: false,
            idle_total: 0,
            idle_before_last_work: 0,
            parked_since: 0,
            last_work_end: 0,
            parked_version: 0,
        })
        .collect();

    let mut work_version: u64 = 1;
    let mut remote_requests = 0u64;
    let mut remote_buffer_hits = 0u64;
    let mut network_bytes = 0u64;
    let mut dir_reads = 0u64;
    let mut data_reads = 0u64;
    let mut candidates = 0u64;
    let mut collected: Vec<(u64, u64)> = Vec::new();

    // Phase-1 page charges on site 0 (sequential, disks idle).
    let mut now: Nanos = 0;
    for (tree, pages) in [(0u8, &tc.pages_a), (1u8, &tc.pages_b)] {
        for &p in pages {
            let u = upid(tree, p);
            if buffers.access(0, u) {
                now += cfg.platform.cost.mem_local_page;
            } else {
                let home = home_of(u);
                let service = service_time(tree, p);
                if level_of(tree, p) == 0 {
                    data_reads += 1;
                } else {
                    dir_reads += 1;
                }
                let done = disks.request(home, now, service);
                disk_stats.record(home, service);
                now = done;
                if home != 0 {
                    now += 2 * cfg.network.latency + cfg.network.page_transfer;
                    remote_requests += 1;
                    network_bytes += psj_store::PAGE_SIZE as u64;
                }
                buffers.load(0, u);
            }
        }
    }
    sites[0].last_work_end = now;
    let phase1_end = now;

    // --- Phase 2: assignment. ---------------------------------------------
    match cfg.assignment {
        Assignment::StaticRange => {
            for (p, w) in static_range(&tc.tasks, n).into_iter().enumerate() {
                sites[p].workload = w.into();
            }
        }
        Assignment::StaticRoundRobin => {
            for (p, w) in static_round_robin(&tc.tasks, n).into_iter().enumerate() {
                sites[p].workload = w.into();
            }
        }
        Assignment::Dynamic => {
            shared_queue = tc.tasks.iter().copied().collect();
        }
    }

    // --- Phase 3: the event loop. ------------------------------------------
    for p in 0..n {
        events.schedule(phase1_end, Ev::Resume(p));
    }
    let mut scratch = KernelScratch::default();
    let mut child_buf: Vec<TaskPair> = Vec::new();
    let mut cand_buf: Vec<Candidate> = Vec::new();

    while let Some((t, Ev::Resume(p))) = events.pop() {
        let mut now = t;
        if sites[p].parked {
            sites[p].parked = false;
            sites[p].idle_total += now.saturating_sub(sites[p].parked_since);
        }
        if let Some(u) = sites[p].install.take() {
            buffers.load(p, u);
        }
        'run: loop {
            if events.peek_time().is_some_and(|pt| pt < now) {
                events.schedule(now, Ev::Resume(p));
                break 'run;
            }
            if let Some((pair, stage)) = sites[p].pending.take() {
                let (tree, page, next) = match stage {
                    Stage::NeedA => (0u8, pair.a, Stage::NeedB),
                    Stage::NeedB => (1u8, pair.b, Stage::Process),
                    Stage::Process => {
                        // Both pages resident: run the kernel.
                        let na = a.node(pair.a);
                        let nb = b.node(pair.b);
                        child_buf.clear();
                        cand_buf.clear();
                        let work =
                            expand_pair(na, nb, &pair, &mut scratch, &mut child_buf, &mut cand_buf);
                        now += cfg.platform.cost.sweep_time(work.entries, work.pairs);
                        sites[p].stack.extend(child_buf.drain(..).rev());
                        for c in &cand_buf {
                            let ea = a.node(c.page_a).data_entries()[c.idx_a as usize];
                            let eb = b.node(c.page_b).data_entries()[c.idx_b as usize];
                            now += cfg.platform.cost.refinement_time(&ea.mbr, &eb.mbr);
                            candidates += 1;
                            if cfg.collect_candidates {
                                collected.push((ea.oid, eb.oid));
                            }
                        }
                        sites[p].idle_before_last_work = sites[p].idle_total;
                        sites[p].last_work_end = now;
                        continue 'run;
                    }
                };
                let level = match stage {
                    Stage::NeedA => pair.la as usize,
                    _ => pair.lb as usize,
                };
                sites[p].pending = Some((pair, next));
                match access_page(
                    p,
                    tree,
                    page,
                    level,
                    &mut now,
                    cfg,
                    &mut buffers,
                    &mut disks,
                    &mut disk_stats,
                    &mut sites,
                    &home_of,
                    &upid,
                    &service_time,
                    &mut remote_requests,
                    &mut remote_buffer_hits,
                    &mut network_bytes,
                    &mut dir_reads,
                    &mut data_reads,
                ) {
                    PageOutcome::Acquired => continue 'run,
                    PageOutcome::Blocked(at) => {
                        events.schedule(at, Ev::Resume(p));
                        break 'run;
                    }
                }
            }
            if let Some(pair) = sites[p].stack.pop() {
                sites[p].pending = Some((pair, Stage::NeedA));
                continue 'run;
            }
            if let Some(task) = sites[p].workload.pop_front() {
                sites[p].stack.push(task);
                continue 'run;
            }
            if cfg.assignment == Assignment::Dynamic && !shared_queue.is_empty() {
                // Coordinator queue at site 0: remote sites pay a round trip.
                now += cfg.platform.cost.task_queue_access;
                if p != 0 {
                    now += 2 * cfg.network.latency;
                }
                if let Some(task) = shared_queue.pop_front() {
                    sites[p].stack.push(task);
                    continue 'run;
                }
            }
            // Steal half of the most loaded site's unstarted work (root-level
            // reassignment over the network).
            if let Some(v) = most_loaded_site(&sites, p) {
                now += cfg.platform.cost.reassign_overhead + 2 * cfg.network.latency;
                let take = sites[v].workload.len().div_ceil(2);
                let mut stolen: Vec<TaskPair> = Vec::with_capacity(take);
                for _ in 0..take {
                    if let Some(t) = sites[v].workload.pop_back() {
                        stolen.push(t);
                    }
                }
                stolen.reverse();
                sites[p].workload.extend(stolen);
                work_version += 1;
                continue 'run;
            }
            sites[p].parked = true;
            sites[p].parked_since = now;
            sites[p].parked_version = work_version;
            break 'run;
        }
        // Wake parked sites only when work appeared since they parked —
        // waking unconditionally would live-lock a site that cannot steal.
        let any_work = !shared_queue.is_empty() || sites.iter().any(|s| s.workload.len() >= 2);
        if any_work {
            for (q, site) in sites.iter_mut().enumerate() {
                if site.parked && site.parked_version < work_version {
                    site.parked = false;
                    site.idle_total += t.saturating_sub(site.parked_since);
                    events.schedule(t, Ev::Resume(q));
                }
            }
        }
    }

    let proc_finish: Vec<Nanos> = sites.iter().map(|s| s.last_work_end).collect();
    let proc_busy: Vec<Nanos> = sites
        .iter()
        .map(|s| s.last_work_end.saturating_sub(s.idle_before_last_work))
        .collect();
    let response_time = proc_finish.iter().copied().max().unwrap_or(0);
    let buffer: BufferStats = buffers.total_stats();
    let join = JoinMetrics {
        num_procs: n,
        num_disks: n,
        tasks: tasks_created,
        response_time,
        proc_finish,
        proc_busy,
        disk_accesses: disk_stats.total_reads(),
        dir_page_reads: dir_reads,
        data_page_reads: data_reads,
        buffer,
        candidates,
        reassignments: 0,
        steals_failed: 0,
    };
    ShardedResult {
        metrics: ShardedMetrics {
            join,
            remote_requests,
            remote_buffer_hits,
            network_bytes,
        },
        candidates: if cfg.collect_candidates {
            Some(collected)
        } else {
            None
        },
    }
}

fn most_loaded_site(sites: &[Site], p: usize) -> Option<usize> {
    sites
        .iter()
        .enumerate()
        .filter(|&(v, s)| v != p && s.workload.len() >= 2)
        .max_by_key(|&(_, s)| s.workload.len())
        .map(|(v, _)| v)
}

/// One page access at site `p`: path buffer → own buffer → home site
/// (buffer or disk) over the network.
#[allow(clippy::too_many_arguments)]
fn access_page(
    p: usize,
    tree: u8,
    page: PageId,
    level: usize,
    now: &mut Nanos,
    cfg: &ShardedConfig,
    buffers: &mut LocalBuffers,
    disks: &mut ResourcePool,
    disk_stats: &mut DiskStats,
    sites: &mut [Site],
    home_of: &dyn Fn(PageId) -> usize,
    upid: &dyn Fn(u8, PageId) -> PageId,
    service_time: &dyn Fn(u8, PageId) -> Nanos,
    remote_requests: &mut u64,
    remote_buffer_hits: &mut u64,
    network_bytes: &mut u64,
    dir_reads: &mut u64,
    data_reads: &mut u64,
) -> PageOutcome {
    if sites[p].paths[tree as usize].access(level, page) {
        buffers.record_path_hit(p);
        return PageOutcome::Acquired;
    }
    let u = upid(tree, page);
    if buffers.access(p, u) {
        *now += cfg.platform.cost.mem_local_page;
        return PageOutcome::Acquired;
    }
    let home = home_of(u);
    if home == p {
        // Own disk.
        let service = service_time(tree, page);
        if level == 0 {
            *data_reads += 1;
        } else {
            *dir_reads += 1;
        }
        let done = disks.request(p, *now, service);
        disk_stats.record(p, service);
        sites[p].install = Some(u);
        return PageOutcome::Blocked(done);
    }
    // Remote request: latency to home; served from home's buffer if
    // resident there, else from home's disk; then shipped back.
    *remote_requests += 1;
    *network_bytes += psj_store::PAGE_SIZE as u64;
    let arrive_home = *now + cfg.network.latency;
    let served_at = if buffers.contains(home, u) {
        *remote_buffer_hits += 1;
        arrive_home + cfg.platform.cost.mem_local_page
    } else {
        let service = service_time(tree, page);
        if level == 0 {
            *data_reads += 1;
        } else {
            *dir_reads += 1;
        }
        let done = disks.request(home, arrive_home, service);
        disk_stats.record(home, service);
        // The home site caches what it read on behalf of others.
        buffers.load(home, u);
        done
    };
    let back = served_at + cfg.network.latency + cfg.network.page_transfer;
    sites[p].install = Some(u);
    PageOutcome::Blocked(back)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::join_candidates;
    use psj_geom::Rect;
    use psj_rtree::RTree;
    use std::collections::BTreeSet;

    fn tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 30) as f64 + offset;
            let y = (i / 30) as f64 + offset;
            t.insert(Rect::new(x, y, x + 1.1, y + 1.1), i as u64);
        }
        PagedTree::freeze(&t, |_| None)
    }

    fn as_set(v: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
        v.iter().copied().collect()
    }

    #[test]
    fn sharded_join_matches_sequential() {
        let a = tree(700, 0.0);
        let b = tree(700, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        for placement in [Placement::RoundRobin, Placement::Contiguous] {
            for assignment in [
                Assignment::Dynamic,
                Assignment::StaticRange,
                Assignment::StaticRoundRobin,
            ] {
                let cfg = ShardedConfig {
                    placement,
                    assignment,
                    collect_candidates: true,
                    ..ShardedConfig::new(4, 16)
                };
                let res = run_sharded_join(&a, &b, &cfg);
                assert_eq!(
                    as_set(res.candidates.as_ref().unwrap()),
                    want,
                    "{placement:?}/{assignment:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_is_deterministic() {
        let a = tree(500, 0.0);
        let b = tree(500, 0.3);
        let cfg = ShardedConfig::new(6, 16);
        let m1 = run_sharded_join(&a, &b, &cfg).metrics;
        let m2 = run_sharded_join(&a, &b, &cfg).metrics;
        assert_eq!(m1.join.response_time, m2.join.response_time);
        assert_eq!(m1.network_bytes, m2.network_bytes);
    }

    #[test]
    fn more_sites_scale_down_response() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let m1 = run_sharded_join(&a, &b, &ShardedConfig::new(1, 64)).metrics;
        let m8 = run_sharded_join(&a, &b, &ShardedConfig::new(8, 64)).metrics;
        assert!(
            m8.join.response_time < m1.join.response_time,
            "8 sites {} !< 1 site {}",
            m8.join.response_time,
            m1.join.response_time
        );
    }

    #[test]
    fn remote_traffic_exists_with_multiple_sites() {
        let a = tree(700, 0.0);
        let b = tree(700, 0.4);
        let m = run_sharded_join(&a, &b, &ShardedConfig::new(4, 16)).metrics;
        assert!(m.remote_requests > 0);
        assert!(m.network_bytes >= m.remote_requests * 4096);
        // Single site: everything is local.
        let m1 = run_sharded_join(&a, &b, &ShardedConfig::new(1, 64)).metrics;
        assert_eq!(m1.remote_requests, 0);
        assert_eq!(m1.network_bytes, 0);
    }

    #[test]
    fn fast_network_beats_atm() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let atm = ShardedConfig {
            network: Network::atm(),
            ..ShardedConfig::new(8, 32)
        };
        let fast = ShardedConfig {
            network: Network::fast(),
            ..ShardedConfig::new(8, 32)
        };
        let m_atm = run_sharded_join(&a, &b, &atm).metrics;
        let m_fast = run_sharded_join(&a, &b, &fast).metrics;
        assert!(m_fast.join.response_time <= m_atm.join.response_time);
    }
}
