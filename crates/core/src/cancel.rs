//! Cooperative cancellation for long-running joins and queries.
//!
//! The serving layer (`psj-serve`) executes many concurrent requests, each
//! with its own deadline; a request that blows its budget must stop
//! *promptly* without poisoning shared state. Rust threads cannot be killed,
//! so cancellation is cooperative: the executors check a [`CancelToken`] at
//! every loop iteration (one node pair in the join, one node in a query
//! descent) and unwind cleanly when it fires.
//!
//! A token fires when either its deadline passes or [`CancelToken::cancel`]
//! is called explicitly (e.g. the client disconnected). Tokens are cheap to
//! clone and share; the flag is a single relaxed atomic load on the fast
//! path, and the deadline check is one monotonic clock read.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Error returned by cancellable executors when their token fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("operation cancelled (deadline expired or explicitly cancelled)")
    }
}

impl std::error::Error for Cancelled {}

/// A shared cancellation signal with an optional deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only fires when [`cancel`](CancelToken::cancel)ed.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that fires at `deadline` (or earlier if cancelled).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// The token's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Fires the token: every clone observes cancellation from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired (explicitly or by deadline).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// `Err(Cancelled)` once the token has fired; for use with `?` inside
    /// executor loops.
    #[inline]
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_is_seen_by_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.check(), Err(Cancelled));
    }

    #[test]
    fn past_deadline_fires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "explicit cancel overrides the deadline");
    }
}
