//! Tasks and the task-execution kernel (paper §3.1).
//!
//! A *task* is a pair of subtrees — one from each R\*-tree — whose root MBRs
//! intersect. Task creation enumerates the intersecting pairs of root
//! entries in local plane-sweep order; if there are too few compared to the
//! number of processors, the next lower level is used (§3.1: "If this
//! condition is not fulfilled, the next lower level of the R\*-trees will be
//! considered").
//!
//! The *kernel* ([`expand_pair`]) performs one step of the synchronized
//! depth-first traversal of [BKS 93]: given a pair of nodes and the
//! restriction window inherited from their parent entries, it computes the
//! intersecting entry pairs with the restricted plane sweep and either
//! yields child pairs (directory level) or candidate pairs (leaf level).
//! Both executors (simulated and native) drive this kernel.

use psj_geom::sweep::{sweep_pairs_soa, SweepScratch};
use psj_geom::Rect;
use psj_rtree::{Node, PagedTree};
use psj_store::PageId;
use serde::{Deserialize, Serialize};

/// A pair of subtrees to be joined. `la`/`lb` are the levels of the nodes
/// `a`/`b` (0 = leaf); they differ only while trees of unequal height are
/// being aligned. `window` is the intersection of the parent entries' MBRs —
/// the search-space restriction of [BKS 93].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskPair {
    /// Page of the node from the first tree.
    pub a: PageId,
    /// Level of node `a`.
    pub la: u8,
    /// Page of the node from the second tree.
    pub b: PageId,
    /// Level of node `b`.
    pub lb: u8,
    /// Search-space restriction window.
    pub window: Rect,
}

impl TaskPair {
    /// The pair's level for assignment/reassignment purposes: the higher of
    /// the two node levels.
    pub fn level(&self) -> u8 {
        self.la.max(self.lb)
    }

    /// Identity key for task attribution: the node pages and levels,
    /// ignoring the (floating-point) restriction window. Two pairs over the
    /// same nodes at the same levels are the same unit of work even if
    /// their windows differ.
    pub fn key(&self) -> (u32, u32, u8, u8) {
        (self.a.0, self.b.0, self.la, self.lb)
    }
}

/// A candidate produced at the leaf level: indices of the data entries
/// within their respective leaf pages, plus those pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// Leaf page in the first tree.
    pub page_a: PageId,
    /// Entry index within `page_a`.
    pub idx_a: u32,
    /// Leaf page in the second tree.
    pub page_b: PageId,
    /// Entry index within `page_b`.
    pub idx_b: u32,
}

/// CPU-accounting summary of one kernel step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepWork {
    /// Entries scanned (after window restriction).
    pub entries: usize,
    /// Intersecting pairs produced.
    pub pairs: usize,
}

/// Reusable scratch buffers for the kernel, so executors allocate once.
/// The kernel reads MBRs from each node's frozen SoA view, so no per-call
/// rectangle copies remain — only the sweep's filtered/gathered buffers and
/// the pair output.
#[derive(Debug, Default)]
pub struct KernelScratch {
    sweep: SweepScratch,
    pairs: Vec<(u32, u32)>,
}

/// Expands one node pair.
///
/// * Directory levels: child pairs are appended to `children` in local
///   plane-sweep order (callers that execute depth-first push them in
///   reverse onto their stack).
/// * Leaf level: candidate entry pairs are appended to `candidates`.
/// * Unequal levels: only the deeper-reaching side is expanded, keeping the
///   shallower node fixed, until levels align.
pub fn expand_pair(
    na: &Node,
    nb: &Node,
    pair: &TaskPair,
    scratch: &mut KernelScratch,
    children: &mut Vec<TaskPair>,
    candidates: &mut Vec<Candidate>,
) -> SweepWork {
    debug_assert_eq!(
        na.level, pair.la as u32,
        "node/page level mismatch (tree A)"
    );
    debug_assert_eq!(
        nb.level, pair.lb as u32,
        "node/page level mismatch (tree B)"
    );

    if pair.la != pair.lb {
        return expand_unequal(na, nb, pair, children);
    }

    scratch.pairs.clear();
    sweep_pairs_soa(
        na.soa_mbrs(),
        nb.soa_mbrs(),
        &pair.window,
        &mut scratch.sweep,
        &mut scratch.pairs,
    );
    let work = SweepWork {
        entries: scratch.sweep.filt_r.len() + scratch.sweep.filt_s.len(),
        pairs: scratch.pairs.len(),
    };

    if pair.la == 0 {
        candidates.reserve(scratch.pairs.len());
        for &(i, j) in &scratch.pairs {
            candidates.push(Candidate {
                page_a: pair.a,
                idx_a: i,
                page_b: pair.b,
                idx_b: j,
            });
        }
    } else {
        let ea = na.dir_entries();
        let eb = nb.dir_entries();
        children.reserve(scratch.pairs.len());
        for &(i, j) in &scratch.pairs {
            let (ra, rb) = (&ea[i as usize], &eb[j as usize]);
            let window = ra
                .mbr
                .intersection(&rb.mbr)
                .expect("sweep produced a non-intersecting pair");
            children.push(TaskPair {
                a: PageId(ra.child),
                la: pair.la - 1,
                b: PageId(rb.child),
                lb: pair.lb - 1,
                window,
            });
        }
    }
    work
}

/// Aligns trees of unequal height: descend only in the deeper side.
fn expand_unequal(
    na: &Node,
    nb: &Node,
    pair: &TaskPair,
    children: &mut Vec<TaskPair>,
) -> SweepWork {
    let mut entries = 0usize;
    let mut pairs = 0usize;
    if pair.la > pair.lb {
        let other = nb.mbr();
        for e in na.dir_entries() {
            entries += 1;
            if e.mbr.intersects(&pair.window) && e.mbr.intersects(&other) {
                let window = e
                    .mbr
                    .intersection(&other)
                    .expect("checked intersection")
                    .intersection(&pair.window)
                    .unwrap_or(pair.window);
                children.push(TaskPair {
                    a: PageId(e.child),
                    la: pair.la - 1,
                    b: pair.b,
                    lb: pair.lb,
                    window,
                });
                pairs += 1;
            }
        }
    } else {
        let other = na.mbr();
        for e in nb.dir_entries() {
            entries += 1;
            if e.mbr.intersects(&pair.window) && e.mbr.intersects(&other) {
                let window = e
                    .mbr
                    .intersection(&other)
                    .expect("checked intersection")
                    .intersection(&pair.window)
                    .unwrap_or(pair.window);
                children.push(TaskPair {
                    a: pair.a,
                    la: pair.la,
                    b: PageId(e.child),
                    lb: pair.lb - 1,
                    window,
                });
                pairs += 1;
            }
        }
    }
    SweepWork { entries, pairs }
}

/// Result of task creation: the tasks in local plane-sweep order, plus the
/// pages that had to be read to create them (charged to the sequential
/// phase 1 by the simulator).
#[derive(Debug, Clone)]
pub struct TaskCreation {
    /// Tasks in local plane-sweep order.
    pub tasks: Vec<TaskPair>,
    /// Pages of tree A read during creation (roots and, if descended,
    /// further directory levels).
    pub pages_a: Vec<PageId>,
    /// Pages of tree B read during creation.
    pub pages_b: Vec<PageId>,
}

impl TaskCreation {
    /// The identity keys (see [`TaskPair::key`]) of the created tasks.
    /// Executors use this set for per-task attribution: it lets a worker
    /// recognize a phase-1 task surfacing from its deque among that task's
    /// descendants.
    pub fn key_set(&self) -> std::collections::HashSet<(u32, u32, u8, u8)> {
        self.tasks.iter().map(TaskPair::key).collect()
    }
}

/// Phase 1: creates the task set for joining `a` and `b`.
///
/// Starts from the pairs of intersecting root entries (in plane-sweep
/// order); while there are fewer than `min_tasks` tasks and descending is
/// possible, every task is expanded one level.
pub fn create_tasks(a: &PagedTree, b: &PagedTree, min_tasks: usize) -> TaskCreation {
    let root_pair = TaskPair {
        a: a.root(),
        la: (a.height() - 1) as u8,
        b: b.root(),
        lb: (b.height() - 1) as u8,
        window: match a.mbr().intersection(&b.mbr()) {
            Some(w) => w,
            None => {
                // Disjoint relations: empty join, no tasks.
                return TaskCreation {
                    tasks: Vec::new(),
                    pages_a: vec![a.root()],
                    pages_b: vec![b.root()],
                };
            }
        },
    };

    let mut scratch = KernelScratch::default();
    let mut tasks = vec![root_pair];
    let mut pages_a = Vec::new();
    let mut pages_b = Vec::new();
    let mut candidates = Vec::new();

    // The root pair itself is not a task: always expand it once. Then keep
    // descending while below the task threshold.
    let mut first = true;
    while first || (tasks.len() < min_tasks && tasks.iter().any(|t| t.level() > 0)) {
        first = false;
        let mut next = Vec::with_capacity(tasks.len() * 4);
        for t in &tasks {
            if t.level() == 0 {
                // Cannot descend below the leaves; keep as a task.
                next.push(*t);
                continue;
            }
            pages_a.push(t.a);
            pages_b.push(t.b);
            let na = a.node(t.a);
            let nb = b.node(t.b);
            let before = candidates.len();
            expand_pair(na, nb, t, &mut scratch, &mut next, &mut candidates);
            debug_assert_eq!(candidates.len(), before, "expansion above leaf level");
        }
        tasks = next;
    }
    pages_a.sort_unstable();
    pages_a.dedup();
    pages_b.sort_unstable();
    pages_b.dedup();
    TaskCreation {
        tasks,
        pages_a,
        pages_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psj_rtree::RTree;

    fn grid_tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 30) as f64 + offset;
            let y = (i / 30) as f64 + offset;
            t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
        }
        PagedTree::freeze(&t, |_| None)
    }

    #[test]
    fn create_tasks_from_roots() {
        let a = grid_tree(600, 0.0);
        let b = grid_tree(600, 0.4);
        let tc = create_tasks(&a, &b, 1);
        assert!(!tc.tasks.is_empty());
        // All tasks one level below the roots when both trees have height ≥ 2.
        for t in &tc.tasks {
            assert_eq!(t.la as u32, a.height() - 2);
            assert_eq!(t.lb as u32, b.height() - 2);
        }
        assert_eq!(tc.pages_a, vec![a.root()]);
        assert_eq!(tc.pages_b, vec![b.root()]);
    }

    #[test]
    fn descends_when_too_few_tasks() {
        // Height-3 trees so there is a level to descend into.
        let a = grid_tree(4000, 0.0);
        let b = grid_tree(4000, 0.4);
        assert!(a.height() >= 3, "height {}", a.height());
        let shallow = create_tasks(&a, &b, 1);
        let deep = create_tasks(&a, &b, shallow.tasks.len() + 1);
        assert!(deep.tasks.len() > shallow.tasks.len());
        assert!(deep
            .tasks
            .iter()
            .all(|t| t.level() < shallow.tasks[0].level()));
        assert!(deep.pages_a.len() > 1, "descending reads level-1 pages");
    }

    #[test]
    fn disjoint_trees_produce_no_tasks() {
        let a = grid_tree(100, 0.0);
        let b = grid_tree(100, 1000.0);
        let tc = create_tasks(&a, &b, 8);
        assert!(tc.tasks.is_empty());
    }

    #[test]
    fn single_leaf_trees() {
        let a = grid_tree(5, 0.0);
        let b = grid_tree(5, 0.2);
        // Height-1 trees: the only "task" is the root (leaf) pair itself.
        let tc = create_tasks(&a, &b, 4);
        assert_eq!(tc.tasks.len(), 1);
        assert_eq!(tc.tasks[0].level(), 0);
    }

    #[test]
    fn expand_pair_levels_align_for_unequal_heights() {
        let a = grid_tree(900, 0.0); // taller
        let b = grid_tree(20, 0.3); // single leaf
        assert!(a.height() > b.height());
        let tc = create_tasks(&a, &b, 1);
        for t in &tc.tasks {
            // The shallow side stays at level 0 while A descends.
            assert_eq!(t.lb, 0);
        }
        // Expanding down to equal levels eventually yields candidates.
        let mut scratch = KernelScratch::default();
        let mut stack = tc.tasks.clone();
        let mut candidates = Vec::new();
        let mut steps = 0;
        while let Some(p) = stack.pop() {
            steps += 1;
            assert!(steps < 100_000, "runaway expansion");
            let na = a.node(p.a);
            let nb = b.node(p.b);
            expand_pair(na, nb, &p, &mut scratch, &mut stack, &mut candidates);
        }
        assert!(!candidates.is_empty());
    }

    #[test]
    fn kernel_candidates_match_brute_force() {
        let a = grid_tree(300, 0.0);
        let b = grid_tree(300, 0.45);
        let tc = create_tasks(&a, &b, 1);
        let mut scratch = KernelScratch::default();
        let mut stack = tc.tasks.clone();
        let mut candidates = Vec::new();
        while let Some(p) = stack.pop() {
            let na = a.node(p.a);
            let nb = b.node(p.b);
            expand_pair(na, nb, &p, &mut scratch, &mut stack, &mut candidates);
        }
        // Resolve to oid pairs.
        let mut got: Vec<(u64, u64)> = candidates
            .iter()
            .map(|c| {
                (
                    a.node(c.page_a).data_entries()[c.idx_a as usize].oid,
                    b.node(c.page_b).data_entries()[c.idx_b as usize].oid,
                )
            })
            .collect();
        got.sort_unstable();
        got.dedup();
        let all_a = a.window_query(&a.mbr());
        let all_b = b.window_query(&b.mbr());
        let mut want: Vec<(u64, u64)> = Vec::new();
        for ea in &all_a {
            for eb in &all_b {
                if ea.mbr.intersects(&eb.mbr) {
                    want.push((ea.oid, eb.oid));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn tasks_are_in_plane_sweep_order() {
        let a = grid_tree(600, 0.0);
        let b = grid_tree(600, 0.4);
        let tc = create_tasks(&a, &b, 1);
        let stops: Vec<f64> = tc.tasks.iter().map(|t| t.window.xl).collect();
        // The restriction windows' xl values are monotone along the task
        // order modulo equal stops; allow tiny non-monotonicity only within
        // a stop (identical xl).
        assert!(
            stops.windows(2).filter(|w| w[0] > w[1] + 1e-9).count() <= stops.len() / 10,
            "task order strays far from sweep order: {stops:?}"
        );
    }
}
