//! Partition-based in-memory spatial join — the second join engine.
//!
//! The R-tree join ([`crate::native`]) is index-first by necessity: the
//! paper's 1996 machines could not hold both relations in memory, so the
//! synchronized tree traversal doubles as the I/O schedule. When both
//! inputs *do* fit in memory, "Parallel In-Memory Evaluation of Spatial
//! Joins" (Tsitsigkos et al.) shows a flat uniform-grid partition with a
//! per-cell plane sweep beats the index join — no tree descent, no node
//! decoding, just one replication pass and dense sweeps. This module is
//! that engine, built from the pieces the repo already has:
//!
//! * the grid planner ([`grid`]) sizes a uniform grid over the join
//!   universe from input MBR statistics (the same quantities
//!   [`crate::cost::TreeProfile`] samples) and replicates each item into
//!   every cell its MBR overlaps (CSR cell index, runs pre-sorted by `xl`);
//! * each occupied cell runs the PR 5 SoA filter/sweep kernel
//!   ([`psj_geom::sweep_pairs_soa`]) over its two item runs;
//! * cross-cell duplicates are suppressed with the **reference-point
//!   test**: a pair is reported only by the cell that contains the
//!   bottom-left corner of its MBR intersection (see
//!   [`grid::GridPlan::owner_cell`]), so the deduplicated output needs no
//!   hash table and no post-pass;
//! * cells are packed into morsels and scheduled on the PR 6 machinery —
//!   same queues, same [`StealPolicy`][crate::morsel::StealPolicy] victim
//!   selection, same deterministic morsel-id-order merge — so the output
//!   sequence is identical at every thread count and steal interleaving,
//!   and sorted output equals the sequential R-tree oracle exactly.
//!
//! Inputs are [`PartitionInput`]: a frozen [`PagedTree`] (its leaf entries
//! are streamed out, geometry refs intact so refinement still works) or a
//! raw [`RectItem`] slice — an *unindexed* relation can join against an
//! indexed one, which the R-tree engine cannot do at all.
//!
//! [`JoinEngine`] selects between the engines; [`run_join`] /
//! [`try_run_join`] dispatch on it, with [`JoinEngine::Auto`] choosing by
//! estimated candidate count and cache budget (see [`select_engine`]).

pub mod grid;

mod exec;

pub use exec::{
    plan_partition, run_partition_join, try_run_partition_join, CellMorsel, PartitionPlan,
};

use crate::cost::CandidateEstimator;
use crate::native::{try_run_native_join, NativeConfig, NativeError, NativeResult, RunControl};
use psj_geom::Rect;
use psj_rtree::PagedTree;
use serde::{Deserialize, Serialize};

/// Which executor answers a join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinEngine {
    /// The paper's synchronized R-tree traversal ([`crate::native`]) —
    /// required out-of-core (it is the only engine that honors
    /// [`NativeConfig::buffer`], fault plans, and page caches).
    #[default]
    RTree,
    /// Uniform-grid partition + per-cell plane sweep (this module) —
    /// in-memory only, typically fastest when both inputs fit.
    Partition,
    /// Pick per run: [`select_engine`] chooses by estimated candidate
    /// count and cache budget.
    Auto,
}

impl JoinEngine {
    /// Short name used in CLI flags and experiment output.
    pub fn short(&self) -> &'static str {
        match self {
            JoinEngine::RTree => "rtree",
            JoinEngine::Partition => "partition",
            JoinEngine::Auto => "auto",
        }
    }

    /// Parses a CLI spelling (`rtree`, `partition`/`grid`, `auto`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rtree" => Some(JoinEngine::RTree),
            "partition" | "grid" => Some(JoinEngine::Partition),
            "auto" => Some(JoinEngine::Auto),
            _ => None,
        }
    }
}

/// One rectangle of a raw (unindexed) join input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RectItem {
    /// The item's MBR.
    pub mbr: Rect,
    /// Object id reported in result pairs.
    pub oid: u64,
}

/// One side of a partition join: an indexed relation (its leaf entries are
/// streamed out in page order, geometry refs intact) or a raw rectangle
/// stream (no stored geometry, so refinement keeps its candidates
/// conservatively — a candidate can only be refuted by exact geometry).
#[derive(Debug, Clone, Copy)]
pub enum PartitionInput<'t> {
    /// A frozen R\*-tree.
    Tree(&'t PagedTree),
    /// An unindexed rectangle stream.
    Rects(&'t [RectItem]),
}

impl PartitionInput<'_> {
    /// Number of items on this side.
    pub fn len(&self) -> usize {
        match self {
            PartitionInput::Tree(t) => t.len() as usize,
            PartitionInput::Rects(r) => r.len(),
        }
    }

    /// Whether this side is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Below this combined item count [`select_engine`] keeps the R-tree
/// engine: partition planning (stats pass + replication + per-cell sorts)
/// costs more than the whole tree join on small inputs.
pub const AUTO_MIN_ITEMS: usize = 4096;

/// Below this estimated candidate count [`select_engine`] keeps the R-tree
/// engine: a sparse join is exactly where the index's pruning wins and the
/// grid's replication overhead buys nothing.
pub const AUTO_MIN_CANDIDATES: f64 = 1024.0;

/// Resolves [`JoinEngine::Auto`] for a tree × tree join.
///
/// The partition engine runs everything in memory, so any configuration
/// that *must* go through the page cache keeps the R-tree engine: a
/// [`NativeConfig::buffer`] whose budget is smaller than the combined page
/// count (the run is genuinely out-of-core) or an active fault plan
/// (faults act on cache fills, which the partition engine never performs).
/// Otherwise the choice follows the cost signal: joins with few items
/// ([`AUTO_MIN_ITEMS`]) or few estimated candidates
/// ([`AUTO_MIN_CANDIDATES`], via [`CandidateEstimator`] on the root pair)
/// stay on the index, dense in-memory joins go to the grid.
pub fn select_engine(
    a: &PagedTree,
    b: &PagedTree,
    cfg: &NativeConfig,
    ctl: &RunControl<'_>,
) -> JoinEngine {
    if ctl.fault.as_ref().is_some_and(|p| !p.is_noop()) {
        return JoinEngine::RTree;
    }
    if let Some(buf) = &cfg.buffer {
        let total_pages = a.pages().len() + b.pages().len();
        if buf.capacity_pages < total_pages {
            return JoinEngine::RTree;
        }
    }
    let items = (a.len() + b.len()) as usize;
    if items < AUTO_MIN_ITEMS {
        return JoinEngine::RTree;
    }
    let (ma, mb) = (a.mbr(), b.mbr());
    if !ma.intersects(&mb) {
        return JoinEngine::RTree;
    }
    let window = Rect {
        xl: ma.xl.max(mb.xl),
        yl: ma.yl.max(mb.yl),
        xu: ma.xu.min(mb.xu),
        yu: ma.yu.min(mb.yu),
    };
    let est = CandidateEstimator::new(a, b);
    let (na, nb) = (a.node(a.root()), b.node(b.root()));
    let cands = est.estimate(
        na.len(),
        na.level as u8,
        &ma,
        nb.len(),
        nb.level as u8,
        &mb,
        &window,
    );
    if cands < AUTO_MIN_CANDIDATES {
        JoinEngine::RTree
    } else {
        JoinEngine::Partition
    }
}

/// Runs a tree × tree join through the engine [`NativeConfig::engine`]
/// names, resolving [`JoinEngine::Auto`] with [`select_engine`]. This is
/// the entry point the CLI and the serving layer use; the engine-specific
/// functions ([`crate::native::run_native_join`], [`run_partition_join`])
/// remain available for callers that have already decided.
///
/// # Panics
///
/// Panics on a storage error, exactly like
/// [`crate::native::run_native_join`]; fallible deployments use
/// [`try_run_join`].
pub fn run_join(a: &PagedTree, b: &PagedTree, cfg: &NativeConfig) -> NativeResult {
    match try_run_join(a, b, cfg, &RunControl::default()) {
        Ok(res) => res,
        Err(e) => unreachable!("in-memory join cannot fail: {e}"),
    }
}

/// Fallible engine-dispatching join with full runtime controls.
pub fn try_run_join(
    a: &PagedTree,
    b: &PagedTree,
    cfg: &NativeConfig,
    ctl: &RunControl<'_>,
) -> Result<NativeResult, NativeError> {
    let engine = match cfg.engine {
        JoinEngine::Auto => select_engine(a, b, cfg, ctl),
        e => e,
    };
    match engine {
        JoinEngine::Partition => {
            try_run_partition_join(PartitionInput::Tree(a), PartitionInput::Tree(b), cfg, ctl)
        }
        _ => try_run_native_join(a, b, cfg, ctl),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_round_trips_through_parse() {
        for e in [JoinEngine::RTree, JoinEngine::Partition, JoinEngine::Auto] {
            assert_eq!(JoinEngine::parse(e.short()), Some(e));
        }
        assert_eq!(JoinEngine::parse("grid"), Some(JoinEngine::Partition));
        assert_eq!(JoinEngine::parse("bogus"), None);
        assert_eq!(JoinEngine::default(), JoinEngine::RTree);
    }
}
