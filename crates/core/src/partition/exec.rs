//! Partition-join executor: cells → morsels → the PR 6 scheduler.
//!
//! Planning materializes both inputs as flat item arrays, sizes the grid
//! ([`super::grid::plan_grid`]), replicates items into cells
//! ([`super::grid::CellIndex`]), rates every *occupied* cell (items on both
//! sides — a pair's owner cell always has both, so single-sided cells can
//! be skipped outright) with the same Minkowski model the morsel planner
//! uses, and packs cells into [`CellMorsel`]s next-fit in row-major cell
//! order. Execution then mirrors [`crate::native`] exactly: per-worker
//! [`MorselQueue`]s plus a shared injector, the configured
//! [`StealPolicy`] picking reassignment victims via live remaining-work
//! stats, one [`TaskTrace`] per acquired morsel (tagged
//! [`JoinEngine::Partition`], carrying per-morsel replication/dedup
//! attribution), and a deterministic morsel-id-order merge — the output
//! sequence never depends on thread count or steal interleaving.
//!
//! Per cell, the kernel is the PR 5 SoA sweep: both item runs are already
//! `(xl, index)`-sorted by the planner, the universe rectangle is the
//! restriction window (every placed item intersects it, so the filter
//! passes everything and the sweep dominates), and each emitted pair is
//! kept only if this cell owns it per the reference-point test —
//! suppressed pairs are counted as `deduped`, kept ones as `candidates`
//! and (optionally) refined against exact geometry.
//!
//! The engine runs entirely in memory: no page cache, no fault surface.
//! [`RunControl::cancel`] and [`RunControl::trace`] are honored;
//! [`RunControl::fault`] and [`RunControl::retry`] act on cache fills,
//! which this engine never performs, and are therefore inert.

use super::grid::{plan_grid, CellIndex, GridPlan, ItemStats};
use super::{JoinEngine, PartitionInput};
use crate::assign::{static_range, static_round_robin, Assignment};
use crate::deque::MorselQueue;
use crate::metrics::{TaskOrigin, TaskTrace};
use crate::morsel::{StealPolicy, AUTO_BUDGET_MAX, AUTO_BUDGET_MIN, MORSELS_PER_WORKER};
use crate::native::{NativeConfig, NativeError, NativeResult, RunControl};
use psj_desim::StealOrder;
use psj_geom::{sweep_pairs_soa_runs, Rect, SoaRun, SweepPair, SweepScratch};
use psj_obs::trace::{worker_tid, TID_MAIN};
use psj_obs::ThreadTracer;
use psj_rtree::{GeomRef, PagedTree};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One partition morsel: a run of occupied cells (row-major cell order)
/// whose estimated candidates add up to roughly one budget.
#[derive(Debug, Clone)]
pub struct CellMorsel {
    /// Position in cell order; doubles as the merge key.
    pub id: u32,
    /// Occupied cells, in row-major order. Never empty.
    pub cells: Vec<u32>,
    /// Estimated filter-step candidates (≥ 1).
    pub est: u64,
}

/// Everything the partition planner decides before workers start.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// The grid.
    pub grid: GridPlan,
    /// Cell index of side A.
    pub a: CellIndex,
    /// Cell index of side B.
    pub b: CellIndex,
    /// The morsels, ids `0..n` in cell order.
    pub morsels: Vec<CellMorsel>,
    /// The budget actually used (resolved auto budget).
    pub budget: u64,
    /// Total estimated candidates over all occupied cells.
    pub total_est: u64,
    /// Cells with items on both sides — the executable work units.
    pub occupied: usize,
    /// Placement-aligned coordinates of side A: position `p` holds the MBR
    /// of `a.items[p]`, so a cell's run is a contiguous [`SoaRun`].
    pub coords_a: RunCoords,
    /// Placement-aligned coordinates of side B.
    pub coords_b: RunCoords,
}

/// Coordinates of every placement, aligned with a [`CellIndex`]'s `items`
/// array. Built once at plan time so each cell's sweep reads its run as
/// contiguous coordinate slices — no per-cell gather, no per-cell
/// allocation, and no window-filter pass (every placed item intersects its
/// cell by construction).
#[derive(Debug, Clone, Default)]
pub struct RunCoords {
    xl: Vec<f64>,
    xh: Vec<f64>,
    yl: Vec<f64>,
    yh: Vec<f64>,
}

impl RunCoords {
    fn build(idx: &CellIndex, mbrs: &[Rect]) -> Self {
        let n = idx.items.len();
        let mut c = RunCoords {
            xl: Vec::with_capacity(n),
            xh: Vec::with_capacity(n),
            yl: Vec::with_capacity(n),
            yh: Vec::with_capacity(n),
        };
        for &i in &idx.items {
            let r = &mbrs[i as usize];
            c.xl.push(r.xl);
            c.xh.push(r.xu);
            c.yl.push(r.yl);
            c.yh.push(r.yu);
        }
        c
    }

    /// The SoA view of placements `lo..hi`.
    pub fn run(&self, lo: usize, hi: usize) -> SoaRun<'_> {
        SoaRun {
            xl: &self.xl[lo..hi],
            xh: &self.xh[lo..hi],
            yl: &self.yl[lo..hi],
            yh: &self.yh[lo..hi],
        }
    }

    /// Lower-left corner of placement `p` — the reference-point test reads
    /// it from here (contiguous and still cache-hot from the sweep) rather
    /// than chasing the placement index into the side's MBR array.
    #[inline]
    fn lower_left(&self, p: usize) -> (f64, f64) {
        (self.xl[p], self.yl[p])
    }
}

/// One side of the join, materialized: flat MBR/oid arrays plus (for tree
/// inputs) the geometry refs refinement resolves through the tree's
/// cluster store.
struct Side<'t> {
    mbrs: Vec<Rect>,
    oids: Vec<u64>,
    geoms: Vec<GeomRef>,
    tree: Option<&'t PagedTree>,
}

impl<'t> Side<'t> {
    fn materialize(input: PartitionInput<'t>) -> Self {
        match input {
            PartitionInput::Tree(t) => {
                let n = t.len() as usize;
                let mut mbrs = Vec::with_capacity(n);
                let mut oids = Vec::with_capacity(n);
                let mut geoms = Vec::with_capacity(n);
                // Stream the leaves through the borrowing node accessor —
                // the same read surface cache-backed executors use — so the
                // materialization order is pinned to page order either way.
                let mut access = t;
                for p in 0..t.pages().len() {
                    let node =
                        psj_rtree::NodeAccess::read(&mut access, psj_store::PageId(p as u32))
                            .expect("in-memory node access is infallible");
                    if node.level != 0 {
                        continue;
                    }
                    for e in node.data_entries() {
                        mbrs.push(e.mbr);
                        oids.push(e.oid);
                        geoms.push(e.geom);
                    }
                }
                Side {
                    mbrs,
                    oids,
                    geoms,
                    tree: Some(t),
                }
            }
            PartitionInput::Rects(items) => Side {
                mbrs: items.iter().map(|i| i.mbr).collect(),
                oids: items.iter().map(|i| i.oid).collect(),
                geoms: Vec::new(),
                tree: None,
            },
        }
    }

    /// Exact geometry of item `i`, when this side has any to offer.
    #[inline]
    fn geometry(&self, i: usize) -> Option<&psj_geom::Polyline> {
        let tree = self.tree?;
        let g = self.geoms[i];
        tree.clusters().geometry(g.page, g.slot)
    }
}

/// Plans the partition join: grid, replication, cell rating, packing.
/// Exposed for tests and benches that want to inspect the plan the
/// executor runs (the executor calls exactly this).
pub fn plan_partition(
    a: PartitionInput<'_>,
    b: PartitionInput<'_>,
    cfg: &NativeConfig,
) -> PartitionPlan {
    let side_a = Side::materialize(a);
    let side_b = Side::materialize(b);
    plan_sides(&side_a, &side_b, cfg)
}

/// Worker count the grid planner assumes, regardless of the run's actual
/// thread count — see the comment at the `plan_grid` call site: a grid
/// that varied with `num_threads` would change the output *sequence*
/// (never the set) across thread counts, breaking byte-identity with the
/// single-threaded run. 8 keeps ≥ 128 cells available on dense inputs, so
/// any realistic thread count still has morsels to steal.
const PLAN_GRAIN: usize = 8;

fn plan_sides(a: &Side<'_>, b: &Side<'_>, cfg: &NativeConfig) -> PartitionPlan {
    let sa = ItemStats::scan(&a.mbrs);
    let sb = ItemStats::scan(&b.mbrs);
    let universe = match (sa.bbox, sb.bbox) {
        (Some(ra), Some(rb)) if ra.intersects(&rb) => Rect {
            xl: ra.xl.max(rb.xl),
            yl: ra.yl.max(rb.yl),
            xu: ra.xu.min(rb.xu),
            yu: ra.yu.min(rb.yu),
        },
        // Disjoint or empty inputs: no pair can exist. A degenerate
        // single-cell grid over a point keeps every downstream invariant.
        _ => {
            return PartitionPlan {
                grid: GridPlan::new(Rect::new(0.0, 0.0, 0.0, 0.0), 1, 1),
                a: CellIndex::default(),
                b: CellIndex::default(),
                morsels: Vec::new(),
                budget: 0,
                total_est: 0,
                occupied: 0,
                coords_a: RunCoords::default(),
                coords_b: RunCoords::default(),
            };
        }
    };
    // The grid is planned at a *fixed* parallelism grain, not
    // `cfg.num_threads`: cell boundaries determine the order pairs are
    // emitted in (cells concatenate in row-major order at merge), so a
    // thread-count-dependent grid would make the output sequence vary with
    // the thread count. Morsel *packing* below may depend on threads freely
    // — the merge concatenates per-morsel outputs in id order, which equals
    // cell order no matter where the packing boundaries fall. This is the
    // same argument that makes the native engine byte-identical across
    // thread counts.
    let grid = plan_grid(universe, &sa, &sb, PLAN_GRAIN);
    let idx_a = CellIndex::build(&grid, &a.mbrs);
    let idx_b = CellIndex::build(&grid, &b.mbrs);
    let coords_a = RunCoords::build(&idx_a, &a.mbrs);
    let coords_b = RunCoords::build(&idx_b, &b.mbrs);

    // Rate occupied cells with the morsel planner's Minkowski model: two
    // uniformly placed entries in a cell intersect with probability
    // `min(1, (wa+wb)/cell_w) × min(1, (ha+hb)/cell_h)`.
    let cell_w = grid.universe.width() / f64::from(grid.nx);
    let cell_h = grid.universe.height() / f64::from(grid.ny);
    let p_axis = |ext_a: f64, ext_b: f64, span: f64| {
        if span <= 0.0 {
            1.0
        } else {
            ((ext_a + ext_b) / span).min(1.0)
        }
    };
    let px = p_axis(sa.avg_w, sb.avg_w, cell_w);
    let py = p_axis(sa.avg_h, sb.avg_h, cell_h);
    let mut rated: Vec<(u32, f64)> = Vec::new();
    let mut total = 0.0f64;
    for c in 0..grid.cells() {
        let na = idx_a.cell(c).len();
        let nb = idx_b.cell(c).len();
        if na == 0 || nb == 0 {
            continue;
        }
        let est = (na as f64 * nb as f64 * px * py).max(1.0);
        total += est;
        rated.push((c as u32, est));
    }
    let occupied = rated.len();
    let budget = if cfg.morsel_candidates > 0 {
        cfg.morsel_candidates
    } else {
        let per = total / (cfg.num_threads.max(1) as u64 * MORSELS_PER_WORKER) as f64;
        (per.round() as u64).clamp(AUTO_BUDGET_MIN, AUTO_BUDGET_MAX)
    };

    // Next-fit pack in cell order, same discipline as `morselize`: a morsel
    // exceeds the budget only when it holds exactly one cell.
    let mut morsels: Vec<CellMorsel> = Vec::new();
    let mut cur_cells: Vec<u32> = Vec::new();
    let mut cur_est = 0.0f64;
    let flush = |cells: &mut Vec<u32>, est: &mut f64, morsels: &mut Vec<CellMorsel>| {
        if !cells.is_empty() {
            morsels.push(CellMorsel {
                id: morsels.len() as u32,
                cells: std::mem::take(cells),
                est: (est.round() as u64).max(1),
            });
            *est = 0.0;
        }
    };
    for (c, e) in rated {
        if !cur_cells.is_empty() && cur_est + e > budget as f64 {
            flush(&mut cur_cells, &mut cur_est, &mut morsels);
        }
        cur_cells.push(c);
        cur_est += e;
    }
    flush(&mut cur_cells, &mut cur_est, &mut morsels);

    PartitionPlan {
        grid,
        a: idx_a,
        b: idx_b,
        morsels,
        budget,
        total_est: total.round() as u64,
        occupied,
        coords_a,
        coords_b,
    }
}

/// Live remaining-work stats one worker's queue publishes for
/// busiest-victim selection (same protocol as the native executor).
#[derive(Default)]
struct WorkerLoad {
    est: AtomicU64,
    morsels: AtomicU64,
}

/// One worker's run output: completed morsels' result pairs plus
/// attribution traces.
type WorkerOutput = (Vec<(u32, Vec<(u64, u64)>)>, Vec<TaskTrace>);

/// Runs the partition join.
///
/// # Panics
///
/// Never fails on storage (the engine is in-memory); the panic-free
/// fallible variant exists for cancellation — see
/// [`try_run_partition_join`].
pub fn run_partition_join(
    a: PartitionInput<'_>,
    b: PartitionInput<'_>,
    cfg: &NativeConfig,
) -> NativeResult {
    match try_run_partition_join(a, b, cfg, &RunControl::default()) {
        Ok(res) => res,
        Err(e) => unreachable!("in-memory partition join cannot fail: {e}"),
    }
}

/// Runs the partition join with runtime controls. Cancellation is honored
/// at cell granularity; tracing emits `plan_partition`/`join` driver spans
/// plus per-morsel `task` spans and `steal` instants, exactly like the
/// native executor. Fault plans and retry policies are inert here (they
/// act on page-cache fills; this engine has no cache) — callers that need
/// fault coverage keep [`JoinEngine::RTree`], which is also what
/// [`super::select_engine`] does.
pub fn try_run_partition_join(
    a: PartitionInput<'_>,
    b: PartitionInput<'_>,
    cfg: &NativeConfig,
    ctl: &RunControl<'_>,
) -> Result<NativeResult, NativeError> {
    assert!(cfg.num_threads > 0, "need at least one thread");
    // The clock starts before planning: the grid, the replication pass and
    // the per-side sorts are real costs of answering the join, and the
    // engine comparison in `psj bench-join` is honest only if they count.
    let start = Instant::now();
    let cancel = ctl.cancel;
    let trace = ctl.trace.as_ref();
    let join_start_ns = trace.map(|t| {
        t.set_thread_name(TID_MAIN, "join driver");
        for id in 0..cfg.num_threads {
            t.set_thread_name(worker_tid(id), format!("worker {id}"));
        }
        t.now_ns()
    });

    let plan_start_ns = trace.map(|t| t.now_ns());
    let side_a = Side::materialize(a);
    let side_b = Side::materialize(b);
    if let Some(token) = cancel {
        token.check().map_err(|_| NativeError::Cancelled)?;
    }
    let plan = plan_sides(&side_a, &side_b, cfg);
    let num_morsels = plan.morsels.len();
    if let (Some(t), Some(start)) = (trace, plan_start_ns) {
        t.span(
            TID_MAIN,
            "plan_partition",
            "join",
            start,
            &[
                ("cells", plan.grid.cells() as u64),
                ("nx", u64::from(plan.grid.nx)),
                ("ny", u64::from(plan.grid.ny)),
                ("occupied", plan.occupied as u64),
                ("morsels", num_morsels as u64),
                ("budget", plan.budget),
                ("total_est", plan.total_est),
            ],
        );
    }
    if let Some(token) = cancel {
        token.check().map_err(|_| NativeError::Cancelled)?;
    }

    let injector: MorselQueue<CellMorsel> = MorselQueue::new();
    let queues: Vec<MorselQueue<CellMorsel>> =
        (0..cfg.num_threads).map(|_| MorselQueue::new()).collect();
    let loads: Vec<WorkerLoad> = (0..cfg.num_threads)
        .map(|_| WorkerLoad::default())
        .collect();
    let morsels = plan.morsels.clone();
    match cfg.assignment {
        Assignment::Dynamic => {
            for m in morsels {
                injector.push_back(m);
            }
        }
        Assignment::StaticRange | Assignment::StaticRoundRobin => {
            let dealt = if cfg.assignment == Assignment::StaticRange {
                static_range(&morsels, cfg.num_threads)
            } else {
                static_round_robin(&morsels, cfg.num_threads)
            };
            for (w, load) in dealt.into_iter().enumerate() {
                for m in load {
                    loads[w].est.fetch_add(m.est, Ordering::Relaxed);
                    loads[w].morsels.fetch_add(1, Ordering::Relaxed);
                    queues[w].push_back(m);
                }
            }
        }
    }

    let candidates = AtomicU64::new(0);
    let replicated = AtomicU64::new(0);
    let deduped = AtomicU64::new(0);
    let steals = AtomicU64::new(0);

    let mut results: Vec<WorkerOutput> = Vec::with_capacity(cfg.num_threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.num_threads);
        for id in 0..cfg.num_threads {
            let injector = &injector;
            let queues = &queues;
            let loads = &loads;
            let plan = &plan;
            let side_a = &side_a;
            let side_b = &side_b;
            let candidates = &candidates;
            let replicated = &replicated;
            let deduped = &deduped;
            let steals = &steals;
            let tracer = ctl.trace.as_ref().map(|t| t.tracer(worker_tid(id)));
            handles.push(scope.spawn(move || {
                run_worker(
                    id, cfg, plan, side_a, side_b, queues, injector, loads, candidates, replicated,
                    deduped, steals, cancel, tracer,
                )
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });
    let elapsed = start.elapsed();
    if let (Some(t), Some(start_ns)) = (trace, join_start_ns) {
        t.span(
            TID_MAIN,
            "join",
            "join",
            start_ns,
            &[
                ("engine", 1),
                ("cells", plan.occupied as u64),
                ("morsels", num_morsels as u64),
                ("threads", cfg.num_threads as u64),
                ("steals", steals.load(Ordering::Relaxed)),
            ],
        );
    }

    if let Some(token) = cancel {
        token.check().map_err(|_| NativeError::Cancelled)?;
    }

    // Deterministic merge, identical to the native executor: every morsel's
    // output fills its id slot exactly once.
    let mut task_traces = Vec::with_capacity(num_morsels);
    let mut slots: Vec<Option<Vec<(u64, u64)>>> = Vec::new();
    slots.resize_with(num_morsels, || None);
    for (outputs, mut t) in results {
        for (mid, out) in outputs {
            let slot = &mut slots[mid as usize];
            assert!(slot.is_none(), "morsel {mid} executed twice");
            *slot = Some(out);
        }
        task_traces.append(&mut t);
    }
    let mut pairs = Vec::with_capacity(
        slots
            .iter()
            .map(|s| s.as_ref().map_or(0, Vec::len))
            .sum::<usize>(),
    );
    for (mid, slot) in slots.iter_mut().enumerate() {
        match slot.take() {
            Some(mut v) => pairs.append(&mut v),
            None => panic!("morsel {mid} lost"),
        }
    }
    Ok(NativeResult {
        pairs,
        candidates: candidates.load(Ordering::Relaxed),
        node_pairs: 0,
        elapsed,
        tasks: plan.occupied,
        morsels: num_morsels,
        steals: steals.load(Ordering::Relaxed),
        buffer: None,
        buffer_per_worker: Vec::new(),
        task_traces,
        engine: JoinEngine::Partition,
        replicated: replicated.load(Ordering::Relaxed),
        deduped: deduped.load(Ordering::Relaxed),
    })
}

/// Acquires the next morsel for worker `id`: own queue, shared queue, then
/// one steal per the configured policy — the native executor's protocol
/// verbatim, over [`CellMorsel`]s.
#[allow(clippy::too_many_arguments)]
fn acquire_morsel(
    id: usize,
    cfg: &NativeConfig,
    queues: &[MorselQueue<CellMorsel>],
    injector: &MorselQueue<CellMorsel>,
    loads: &[WorkerLoad],
    steals: &AtomicU64,
    shim: &StealOrder,
    attempts: &mut u64,
    tracer: Option<&mut ThreadTracer>,
) -> Option<(CellMorsel, TaskOrigin)> {
    if let Some(m) = queues[id].pop_front() {
        loads[id].est.fetch_sub(m.est, Ordering::Relaxed);
        loads[id].morsels.fetch_sub(1, Ordering::Relaxed);
        return Some((m, TaskOrigin::Assigned));
    }
    if let Some(m) = injector.pop_front() {
        return Some((m, TaskOrigin::Injector));
    }
    if !cfg.work_stealing || queues.len() < 2 {
        return None;
    }
    let n = queues.len();
    let try_steal = |v: usize| -> Option<CellMorsel> {
        let m = queues[v].steal_back()?;
        loads[v].est.fetch_sub(m.est, Ordering::Relaxed);
        loads[v].morsels.fetch_sub(1, Ordering::Relaxed);
        Some(m)
    };
    let stolen = match cfg.steal {
        StealPolicy::Busiest => {
            let mut victims: Vec<(u64, u64, usize)> = (0..n)
                .filter(|&w| w != id)
                .map(|w| {
                    (
                        loads[w].est.load(Ordering::Relaxed),
                        loads[w].morsels.load(Ordering::Relaxed),
                        w,
                    )
                })
                .collect();
            victims.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(y.1.cmp(&x.1)).then(x.2.cmp(&y.2)));
            victims
                .into_iter()
                .find_map(|(_, _, w)| try_steal(w).map(|m| (m, w)))
        }
        StealPolicy::RoundRobin => (1..n).find_map(|k| {
            let w = (id + k) % n;
            try_steal(w).map(|m| (m, w))
        }),
        StealPolicy::Seeded => {
            *attempts += 1;
            let start = shim.first_victim(id, *attempts, n);
            (0..n).find_map(|k| {
                let w = (start + k) % n;
                if w == id {
                    return None;
                }
                try_steal(w).map(|m| (m, w))
            })
        }
    };
    stolen.map(|(m, v)| {
        steals.fetch_add(1, Ordering::Relaxed);
        if let Some(tr) = tracer {
            tr.instant(
                "steal",
                "join",
                &[("victim", v as u64), ("morsel", m.id as u64)],
            );
        }
        (m, TaskOrigin::Steal)
    })
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    id: usize,
    cfg: &NativeConfig,
    plan: &PartitionPlan,
    side_a: &Side<'_>,
    side_b: &Side<'_>,
    queues: &[MorselQueue<CellMorsel>],
    injector: &MorselQueue<CellMorsel>,
    loads: &[WorkerLoad],
    candidates: &AtomicU64,
    replicated: &AtomicU64,
    deduped: &AtomicU64,
    steals: &AtomicU64,
    cancel: Option<&crate::cancel::CancelToken>,
    mut tracer: Option<ThreadTracer>,
) -> WorkerOutput {
    let mut scratch = SweepScratch::default();
    let mut sweep_out: Vec<SweepPair> = Vec::new();
    let mut outputs: Vec<(u32, Vec<(u64, u64)>)> = Vec::new();
    let mut traces: Vec<TaskTrace> = Vec::new();
    let mut local_candidates = 0u64;
    let mut local_replicated = 0u64;
    let mut local_deduped = 0u64;
    let shim = StealOrder::new(cfg.steal_seed);
    let mut attempts = 0u64;
    let grid = &plan.grid;

    'outer: loop {
        if cancel.is_some_and(|t| t.is_cancelled()) {
            break 'outer;
        }
        let Some((morsel, origin)) = acquire_morsel(
            id,
            cfg,
            queues,
            injector,
            loads,
            steals,
            &shim,
            &mut attempts,
            tracer.as_mut(),
        ) else {
            break 'outer;
        };

        let seg_start = Instant::now();
        let seg_start_ns = tracer.as_ref().map_or(0, ThreadTracer::now_ns);
        let (base_cands, base_rep, base_dedup) =
            (local_candidates, local_replicated, local_deduped);
        let mid = morsel.id;
        let num_cells = morsel.cells.len() as u32;
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut dirty = false;
        for &cell in &morsel.cells {
            if cancel.is_some_and(|t| t.is_cancelled()) {
                dirty = true;
                break;
            }
            let c = cell as usize;
            let (lo_a, hi_a) = (plan.a.offsets[c] as usize, plan.a.offsets[c + 1] as usize);
            let (lo_b, hi_b) = (plan.b.offsets[c] as usize, plan.b.offsets[c + 1] as usize);
            let run_a = &plan.a.items[lo_a..hi_a];
            let run_b = &plan.b.items[lo_b..hi_b];
            local_replicated += u64::from(plan.a.replicas[c]) + u64::from(plan.b.replicas[c]);
            // The runs are (xl, index)-sorted and contiguous in the plan's
            // placement-aligned coordinate arrays, so the sweep reads them
            // directly — no per-cell gather, no window filter (every
            // placed item intersects its cell by construction).
            sweep_out.clear();
            sweep_pairs_soa_runs(
                &plan.coords_a.run(lo_a, hi_a),
                &plan.coords_b.run(lo_b, hi_b),
                &mut scratch,
                &mut sweep_out,
            );
            for &(pa, pb) in &sweep_out {
                // Reference-point test: only the owner cell reports a pair.
                // The corners come from the placement-aligned coordinate
                // runs the sweep just scanned, so rejected duplicates never
                // touch the (cold) per-side MBR arrays.
                let (axl, ayl) = plan.coords_a.lower_left(lo_a + pa as usize);
                let (bxl, byl) = plan.coords_b.lower_left(lo_b + pb as usize);
                if grid.cell_id(grid.cell_x(axl.max(bxl)), grid.cell_y(ayl.max(byl))) != cell {
                    local_deduped += 1;
                    continue;
                }
                let ia = run_a[pa as usize] as usize;
                let ib = run_b[pb as usize] as usize;
                local_candidates += 1;
                if cfg.refine {
                    let hit = match (side_a.geometry(ia), side_b.geometry(ib)) {
                        (Some(ga), Some(gb)) => ga.intersects(gb),
                        // A candidate can only be refuted by exact geometry
                        // on both sides — raw-rect inputs always pass.
                        _ => true,
                    };
                    if !hit {
                        continue;
                    }
                }
                out.push((side_a.oids[ia], side_b.oids[ib]));
            }
        }
        let tt = TaskTrace {
            worker: id,
            morsel: mid,
            tasks: num_cells,
            origin,
            node_pairs: 0,
            candidates: local_candidates - base_cands,
            pages: 0,
            hits_local: 0,
            hits_l1: 0,
            hits_remote: 0,
            misses: 0,
            retries: 0,
            wall: seg_start.elapsed(),
            engine: JoinEngine::Partition,
            replicated: local_replicated - base_rep,
            deduped: local_deduped - base_dedup,
        };
        if let Some(tr) = tracer.as_mut() {
            tr.span(
                "task",
                "join",
                seg_start_ns,
                &[
                    ("worker", id as u64),
                    ("morsel", mid as u64),
                    ("cells", u64::from(num_cells)),
                    ("origin", origin as u64),
                    ("candidates", tt.candidates),
                    ("replicated", tt.replicated),
                    ("deduped", tt.deduped),
                ],
            );
        }
        traces.push(tt);
        if dirty {
            break 'outer;
        }
        outputs.push((mid, out));
    }

    candidates.fetch_add(local_candidates, Ordering::Relaxed);
    replicated.fetch_add(local_replicated, Ordering::Relaxed);
    deduped.fetch_add(local_deduped, Ordering::Relaxed);
    (outputs, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{join_candidates, join_refined};
    use psj_geom::{Point, Polyline};
    use psj_rtree::RTree;

    fn tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        let mut geoms = Vec::new();
        for i in 0..n {
            let x = (i % 30) as f64 + offset;
            let y = (i / 30) as f64 + offset;
            t.insert(Rect::new(x, y, x + 1.1, y + 1.1), i as u64);
            geoms.push(Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 1.1, y + 1.1),
            ]));
        }
        PagedTree::freeze(&t, move |oid| Some(geoms[oid as usize].clone()))
    }

    fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn filter_step_matches_sequential_oracle() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let want = sorted(join_candidates(&a, &b).candidates);
        for threads in [1, 2, 4, 8] {
            let mut cfg = NativeConfig::new(threads);
            cfg.refine = false;
            let res = run_partition_join(PartitionInput::Tree(&a), PartitionInput::Tree(&b), &cfg);
            assert_eq!(sorted(res.pairs.clone()), want, "{threads} threads");
            assert_eq!(res.candidates as usize, res.pairs.len());
            assert_eq!(res.engine, JoinEngine::Partition);
            assert_eq!(res.node_pairs, 0);
            assert!(res.buffer.is_none());
        }
    }

    #[test]
    fn refined_matches_sequential_refined() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = sorted(join_refined(&a, &b));
        let res = run_partition_join(
            PartitionInput::Tree(&a),
            PartitionInput::Tree(&b),
            &NativeConfig::new(4),
        );
        assert_eq!(sorted(res.pairs.clone()), want);
        assert!(res.pairs.len() <= res.candidates as usize);
    }

    #[test]
    fn output_sequence_is_deterministic_across_schedules() {
        let a = tree(700, 0.0);
        let b = tree(700, 0.4);
        let mut cfg = NativeConfig::new(1);
        cfg.refine = false;
        let want =
            run_partition_join(PartitionInput::Tree(&a), PartitionInput::Tree(&b), &cfg).pairs;
        for threads in [2, 4, 8] {
            for steal in [
                StealPolicy::Busiest,
                StealPolicy::RoundRobin,
                StealPolicy::Seeded,
            ] {
                let mut cfg = NativeConfig::new(threads);
                cfg.refine = false;
                cfg.assignment = Assignment::StaticRange;
                cfg.steal = steal;
                cfg.steal_seed = 23;
                let res =
                    run_partition_join(PartitionInput::Tree(&a), PartitionInput::Tree(&b), &cfg);
                assert_eq!(
                    res.pairs, want,
                    "merge must be deterministic: {threads} threads {steal:?}"
                );
            }
        }
    }

    #[test]
    fn raw_rect_stream_joins_against_tree() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        // Side B as an unindexed stream with the same MBRs/oids.
        let items: Vec<super::super::RectItem> = b
            .window_query(&b.mbr())
            .into_iter()
            .map(|e| super::super::RectItem {
                mbr: e.mbr,
                oid: e.oid,
            })
            .collect();
        let mut cfg = NativeConfig::new(4);
        cfg.refine = false;
        let want = sorted(join_candidates(&a, &b).candidates);
        let res = run_partition_join(
            PartitionInput::Tree(&a),
            PartitionInput::Rects(&items),
            &cfg,
        );
        assert_eq!(sorted(res.pairs.clone()), want);
        // With refinement on, the streamed side has no geometry: its
        // candidates pass conservatively, so output falls between the
        // refined and unrefined counts.
        let mut cfg = NativeConfig::new(4);
        cfg.refine = true;
        let res = run_partition_join(
            PartitionInput::Tree(&a),
            PartitionInput::Rects(&items),
            &cfg,
        );
        assert_eq!(
            sorted(res.pairs.clone()),
            want,
            "one-sided geometry cannot refute any candidate"
        );
    }

    #[test]
    fn disjoint_inputs_yield_empty_result() {
        let a = tree(100, 0.0);
        let b = tree(100, 10_000.0);
        let res = run_partition_join(
            PartitionInput::Tree(&a),
            PartitionInput::Tree(&b),
            &NativeConfig::new(4),
        );
        assert!(res.pairs.is_empty());
        assert_eq!(res.tasks, 0);
        assert_eq!(res.morsels, 0);
        assert_eq!(res.replicated, 0);
        assert_eq!(res.deduped, 0);
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let a = tree(100, 0.0);
        let items: Vec<super::super::RectItem> = Vec::new();
        let res = run_partition_join(
            PartitionInput::Tree(&a),
            PartitionInput::Rects(&items),
            &NativeConfig::new(2),
        );
        assert!(res.pairs.is_empty());
        assert_eq!(res.morsels, 0);
    }

    #[test]
    fn traces_reconcile_with_aggregates() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let mut cfg = NativeConfig::new(4);
        cfg.refine = false;
        let res = run_partition_join(PartitionInput::Tree(&a), PartitionInput::Tree(&b), &cfg);
        assert_eq!(res.task_traces.len(), res.morsels);
        assert!(res.morsels > 1, "workload must produce several morsels");
        for t in &res.task_traces {
            assert_eq!(t.engine, JoinEngine::Partition);
            assert_eq!(t.node_pairs, 0);
            assert_eq!(t.pages, 0);
        }
        let cands: u64 = res.task_traces.iter().map(|t| t.candidates).sum();
        assert_eq!(cands, res.candidates, "candidates attribute fully");
        let rep: u64 = res.task_traces.iter().map(|t| t.replicated).sum();
        assert_eq!(rep, res.replicated, "replication attributes fully");
        let ded: u64 = res.task_traces.iter().map(|t| t.deduped).sum();
        assert_eq!(ded, res.deduped, "dedup attributes fully");
        assert!(
            res.replicated > 0,
            "overlapping grid data must replicate across cells"
        );
        assert!(
            res.deduped > 0,
            "replicated pairs must be suppressed somewhere"
        );
        assert_eq!(
            res.steals,
            res.task_traces
                .iter()
                .filter(|t| t.origin == TaskOrigin::Steal)
                .count() as u64
        );
        let cell_sum: u64 = res.task_traces.iter().map(|t| u64::from(t.tasks)).sum();
        assert_eq!(
            cell_sum as usize, res.tasks,
            "morsels cover every occupied cell"
        );
    }

    #[test]
    fn cancelled_token_aborts_join() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let ctl = RunControl::default().with_cancel(&token);
        let err = try_run_partition_join(
            PartitionInput::Tree(&a),
            PartitionInput::Tree(&b),
            &NativeConfig::new(4),
            &ctl,
        );
        assert!(matches!(err, Err(NativeError::Cancelled)));
    }

    #[test]
    fn candidates_equal_rtree_engine_candidates() {
        let a = tree(700, 0.0);
        let b = tree(700, 0.4);
        let mut cfg = NativeConfig::new(4);
        cfg.refine = false;
        let rtree = crate::native::run_native_join(&a, &b, &cfg);
        let part = run_partition_join(PartitionInput::Tree(&a), PartitionInput::Tree(&b), &cfg);
        assert_eq!(
            part.candidates, rtree.candidates,
            "both engines must agree on the filter-step candidate count"
        );
    }

    #[test]
    fn plan_is_what_the_executor_runs() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let mut cfg = NativeConfig::new(4);
        cfg.refine = false;
        let plan = plan_partition(PartitionInput::Tree(&a), PartitionInput::Tree(&b), &cfg);
        let res = run_partition_join(PartitionInput::Tree(&a), PartitionInput::Tree(&b), &cfg);
        assert_eq!(plan.morsels.len(), res.morsels);
        assert_eq!(plan.occupied, res.tasks);
        assert!(plan.budget >= AUTO_BUDGET_MIN && plan.budget <= AUTO_BUDGET_MAX);
        let cells_in_morsels: usize = plan.morsels.iter().map(|m| m.cells.len()).sum();
        assert_eq!(cells_in_morsels, plan.occupied);
        for (i, m) in plan.morsels.iter().enumerate() {
            assert_eq!(m.id as usize, i);
            assert!(!m.cells.is_empty());
            assert!(m.est >= 1);
            assert!(
                m.est <= plan.budget || m.cells.len() == 1,
                "over-budget morsel must be a singleton"
            );
        }
    }
}
