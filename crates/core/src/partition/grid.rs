//! Grid planning for the partition join engine.
//!
//! The planner sizes a uniform grid over the **universe** — the
//! intersection of the two inputs' bounding boxes (any result pair's MBR
//! intersection lies inside both boxes, so nothing outside the universe can
//! contribute) — from the same input statistics the morsel planner's cost
//! model uses ([`crate::cost`]): item counts size the grid for work and
//! parallelism, average entry extents bound how finely it may be cut before
//! replication explodes. Every item is then *replicated* into each cell its
//! MBR overlaps (CSR layout, one index per side, each cell's run pre-sorted
//! by `xl` for the plane sweep), and cross-cell duplicate results are
//! suppressed at execution time with the **reference-point test**: a pair is
//! reported only by the cell containing the bottom-left corner of its MBR
//! intersection, which lies in exactly one cell.
//!
//! Cell membership is decided by [`GridPlan::cell_x`]/[`GridPlan::cell_y`]
//! everywhere — item placement and the reference-point test share the same
//! clamped float→cell mapping, so a pair's owning cell is always among the
//! cells both items were placed in (the mapping is monotone and
//! `a.xl ≤ ref.x ≤ a.xu` brackets the reference point inside both items'
//! cell ranges). Floating-point cell *boundaries* never enter any decision.

use psj_geom::Rect;

/// Target combined items per cell: small enough that a per-cell sweep stays
/// in cache, large enough that per-cell overhead amortizes.
pub const TARGET_CELL_ITEMS: usize = 256;
/// Minimum cells per worker, so the scheduler has slack to balance.
pub const CELLS_PER_WORKER: usize = 16;
/// Hard ceiling on grid size, bounding planner memory on huge inputs.
pub const MAX_CELLS: usize = 1 << 14;

/// A uniform grid over the join universe.
#[derive(Debug, Clone, Copy)]
pub struct GridPlan {
    /// Intersection of the two inputs' bounding boxes.
    pub universe: Rect,
    /// Grid columns.
    pub nx: u32,
    /// Grid rows.
    pub ny: u32,
    /// Precomputed `nx / width` (0 when the universe is degenerate), so
    /// the cell mapping multiplies instead of dividing — it runs per MBR
    /// corner at placement and per result pair in the reference-point
    /// test, where a dependent divide per call is measurable.
    sx: f64,
    /// Precomputed `ny / height`, same role as `sx`.
    sy: f64,
}

impl GridPlan {
    /// Builds a grid, precomputing the coordinate→cell scale factors.
    pub fn new(universe: Rect, nx: u32, ny: u32) -> Self {
        let scale = |n: u32, span: f64| {
            if span <= 0.0 || n <= 1 {
                0.0
            } else {
                f64::from(n) / span
            }
        };
        GridPlan {
            universe,
            nx,
            ny,
            sx: scale(nx, universe.width()),
            sy: scale(ny, universe.height()),
        }
    }

    /// Total cell count.
    pub fn cells(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Column of coordinate `x`, clamped into the grid. Monotone in `x`
    /// (`sx > 0` and subtraction, multiplication, floor and clamp all
    /// preserve order; a degenerate axis maps everything to column 0).
    #[inline]
    pub fn cell_x(&self, x: f64) -> u32 {
        let t = (x - self.universe.xl) * self.sx;
        (t.floor() as i64).clamp(0, i64::from(self.nx) - 1) as u32
    }

    /// Row of coordinate `y`, clamped into the grid. Monotone in `y`.
    #[inline]
    pub fn cell_y(&self, y: f64) -> u32 {
        let t = (y - self.universe.yl) * self.sy;
        (t.floor() as i64).clamp(0, i64::from(self.ny) - 1) as u32
    }

    /// Row-major id of cell `(cx, cy)`.
    #[inline]
    pub fn cell_id(&self, cx: u32, cy: u32) -> u32 {
        cy * self.nx + cx
    }

    /// Cells an MBR overlaps: `(cx0, cx1, cy0, cy1)`, all inclusive.
    #[inline]
    pub fn cell_range(&self, r: &Rect) -> (u32, u32, u32, u32) {
        (
            self.cell_x(r.xl),
            self.cell_x(r.xu),
            self.cell_y(r.yl),
            self.cell_y(r.yu),
        )
    }

    /// The cell that owns a result pair: the one containing the bottom-left
    /// corner of the two MBRs' intersection (the reference point). Exactly
    /// one cell owns each pair, and both items are guaranteed to have been
    /// replicated into it.
    #[inline]
    pub fn owner_cell(&self, a: &Rect, b: &Rect) -> u32 {
        self.cell_id(self.cell_x(a.xl.max(b.xl)), self.cell_y(a.yl.max(b.yl)))
    }
}

/// One pass of summary statistics over an item stream, mirroring what
/// [`crate::cost::TreeProfile`] samples from a frozen tree — here exact,
/// since planning already walks every item.
#[derive(Debug, Clone, Copy, Default)]
pub struct ItemStats {
    /// Item count.
    pub n: usize,
    /// Bounding box of all items (`None` when empty).
    pub bbox: Option<Rect>,
    /// Mean MBR width.
    pub avg_w: f64,
    /// Mean MBR height.
    pub avg_h: f64,
}

impl ItemStats {
    /// Scans `mbrs`.
    pub fn scan(mbrs: &[Rect]) -> Self {
        let mut bbox: Option<Rect> = None;
        let (mut sw, mut sh) = (0.0f64, 0.0f64);
        for r in mbrs {
            sw += r.width();
            sh += r.height();
            bbox = Some(match bbox {
                None => *r,
                Some(acc) => Rect {
                    xl: acc.xl.min(r.xl),
                    yl: acc.yl.min(r.yl),
                    xu: acc.xu.max(r.xu),
                    yu: acc.yu.max(r.yu),
                },
            });
        }
        let n = mbrs.len();
        ItemStats {
            n,
            bbox,
            avg_w: if n == 0 { 0.0 } else { sw / n as f64 },
            avg_h: if n == 0 { 0.0 } else { sh / n as f64 },
        }
    }
}

/// Sizes the grid for the given universe and input statistics.
///
/// Cell count targets [`TARGET_CELL_ITEMS`] combined items per cell and at
/// least [`CELLS_PER_WORKER`] cells per worker, clamped to [`MAX_CELLS`];
/// columns and rows are apportioned by the universe's aspect ratio. Each
/// axis is then capped so a cell is no narrower than the mean entry extent
/// on that axis — cutting finer than the data multiplies replication
/// without shrinking per-cell work.
pub fn plan_grid(universe: Rect, a: &ItemStats, b: &ItemStats, workers: usize) -> GridPlan {
    let n_total = a.n + b.n;
    let cells_work = n_total.div_ceil(TARGET_CELL_ITEMS);
    let cells_par = workers.max(1) * CELLS_PER_WORKER;
    let cells = cells_work.max(cells_par).clamp(1, MAX_CELLS);

    let w = universe.width().max(0.0);
    let h = universe.height().max(0.0);
    let cap = |span: f64, avg_a: f64, avg_b: f64| -> u32 {
        if span <= 0.0 {
            return 1;
        }
        let avg = (avg_a.max(avg_b)).max(f64::MIN_POSITIVE);
        ((span / avg).floor().max(1.0)).min(MAX_CELLS as f64) as u32
    };
    let cap_x = cap(w, a.avg_w, b.avg_w);
    let cap_y = cap(h, a.avg_h, b.avg_h);

    let aspect = if h > 0.0 && w > 0.0 { w / h } else { 1.0 };
    let nx = ((cells as f64 * aspect).sqrt().round().max(1.0) as u32).min(cap_x);
    let ny = ((cells as f64 / f64::from(nx.max(1))).round().max(1.0) as u32).min(cap_y);
    GridPlan::new(universe, nx, ny)
}

/// `f64` → `u64` map that preserves [`f64::total_cmp`] order: flip the
/// sign bit on non-negatives, flip every bit on negatives. Radix-sorting
/// the mapped keys sorts exactly like `sort_by(total_cmp)`.
#[inline]
fn f64_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Stable LSD radix sort of `(key, payload)` pairs by key: six 11-bit
/// counting passes cover all 64 bits. Small inputs fall back to the
/// comparison sort — with distinct payloads the tuple order equals the
/// stable by-key order, so both paths produce identical sequences.
fn radix_sort_by_key(kv: &mut Vec<(u64, u32)>) {
    const BITS: usize = 11;
    const BUCKETS: usize = 1 << BITS;
    const PASSES: usize = 64usize.div_ceil(BITS);
    let n = kv.len();
    if n < 2 * BUCKETS {
        kv.sort_unstable();
        return;
    }
    let mut tmp: Vec<(u64, u32)> = vec![(0, 0); n];
    let mut counts = [0u32; BUCKETS];
    for pass in 0..PASSES {
        let shift = pass * BITS;
        counts.fill(0);
        for &(k, _) in kv.iter() {
            counts[(k >> shift) as usize & (BUCKETS - 1)] += 1;
        }
        let mut acc = 0u32;
        for c in counts.iter_mut() {
            let t = *c;
            *c = acc;
            acc += t;
        }
        for &(k, v) in kv.iter() {
            let d = (k >> shift) as usize & (BUCKETS - 1);
            tmp[counts[d] as usize] = (k, v);
            counts[d] += 1;
        }
        std::mem::swap(kv, &mut tmp);
    }
    // An even pass count leaves the result in `kv` after the final swap.
    const { assert!(PASSES.is_multiple_of(2)) };
}

/// Per-side cell index in CSR layout: `items[offsets[c]..offsets[c + 1]]`
/// are the global indices of the items replicated into cell `c`, sorted by
/// `(xl, index)` so each cell's run is directly sweepable.
#[derive(Debug, Clone, Default)]
pub struct CellIndex {
    /// CSR offsets, length `cells + 1`.
    pub offsets: Vec<u32>,
    /// Global item indices, grouped by cell.
    pub items: Vec<u32>,
    /// Per-cell replica placements: entries of the cell whose *home* cell
    /// (bottom-left corner of their MBR) is a different cell. Summing over
    /// the cells of a morsel gives that morsel's replication attribution;
    /// summing over all executed cells gives the run aggregate — the same
    /// numbers by construction.
    pub replicas: Vec<u32>,
    /// Items that intersect the universe (each counted once, not per cell).
    pub placed: usize,
}

impl CellIndex {
    /// Builds the index: drops items disjoint from the universe (they
    /// cannot contribute a pair) and replicates the rest into every
    /// overlapped cell, leaving each cell's run sorted by `(xl, index)`.
    ///
    /// The runs come out sorted without any per-cell sort: the items are
    /// sorted **once** by `(xl, index)` and the CSR is filled in that
    /// order, so every cell inherits the global order. One `n log n` sort
    /// of contiguous keys replaces `placements log(run)` comparisons
    /// through cache-missing `mbrs[items[i]]` indirections — on the bench
    /// workload (~3× replication) this is most of the planning cost.
    pub fn build(grid: &GridPlan, mbrs: &[Rect]) -> Self {
        let cells = grid.cells();
        // One sequential pass computes each placed item's cell range and
        // per-cell counts; the compact records are then sorted by
        // `(xl, index)` once and the CSR filled from them, so every cell
        // run inherits the global order with no per-cell sort and no
        // further `mbrs` access. One `n log n` sort of contiguous records
        // replaces `placements log(run)` comparisons through cache-missing
        // `mbrs[items[i]]` indirections — on the bench workload (~3×
        // replication) those sorts were most of the planning cost.
        struct Placed {
            xl: f64,
            i: u32,
            cx0: u32,
            cx1: u32,
            cy0: u32,
            cy1: u32,
        }
        let mut counts = vec![0u32; cells];
        let mut replicas = vec![0u32; cells];
        let mut order: Vec<Placed> = Vec::with_capacity(mbrs.len());
        for (i, r) in mbrs.iter().enumerate() {
            if !r.intersects(&grid.universe) {
                continue;
            }
            let (cx0, cx1, cy0, cy1) = grid.cell_range(r);
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    let c = grid.cell_id(cx, cy) as usize;
                    counts[c] += 1;
                    if (cx, cy) != (cx0, cy0) {
                        replicas[c] += 1;
                    }
                }
            }
            order.push(Placed {
                xl: r.xl,
                i: i as u32,
                cx0,
                cx1,
                cy0,
                cy1,
            });
        }
        // Sort compact (key, record) pairs, not the 32-byte records: the
        // key is `xl`'s order-preserving bit pattern (`total_cmp` order),
        // so an LSD radix pass replaces `n log n` float comparisons with
        // six counting passes. Equal keys keep insertion order either way
        // (radix is stable; the comparison fallback ties on the record
        // position), which is exactly the `(xl, index)` order the sweep
        // and the deterministic merge rely on.
        let mut kv: Vec<(u64, u32)> = order
            .iter()
            .enumerate()
            .map(|(p, rec)| (f64_key(rec.xl), p as u32))
            .collect();
        radix_sort_by_key(&mut kv);
        let placed = order.len();

        let mut offsets = Vec::with_capacity(cells + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut items = vec![0u32; acc as usize];
        let mut fill: Vec<u32> = offsets[..cells].to_vec();
        for &(_, p) in &kv {
            let p = &order[p as usize];
            for cy in p.cy0..=p.cy1 {
                for cx in p.cx0..=p.cx1 {
                    let c = grid.cell_id(cx, cy) as usize;
                    items[fill[c] as usize] = p.i;
                    fill[c] += 1;
                }
            }
        }
        CellIndex {
            offsets,
            items,
            replicas,
            placed,
        }
    }

    /// The sorted item run of cell `c`.
    #[inline]
    pub fn cell(&self, c: usize) -> &[u32] {
        &self.items[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(xl: f64, yl: f64, xu: f64, yu: f64) -> Rect {
        Rect::new(xl, yl, xu, yu)
    }

    #[test]
    fn radix_order_equals_total_cmp_order() {
        // Keys crossing every tricky region: negatives, ±0.0, subnormals,
        // infinities, plus ties (distinct payloads decide, as insertion
        // order would under a stable sort).
        let xs = [
            -1e300,
            -1.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.5,
            1.5,
            1e300,
            f64::NEG_INFINITY,
            f64::INFINITY,
            42.0,
            -42.0,
        ];
        for x in xs {
            for y in xs {
                assert_eq!(
                    f64_key(x).cmp(&f64_key(y)),
                    x.total_cmp(&y),
                    "key order diverges for {x} vs {y}"
                );
            }
        }
        // Radix path (forced over the small-input fallback) must equal the
        // comparison sort on a deterministic pseudo-random sequence.
        let mut kv: Vec<(u64, u32)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..5000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Bias towards collisions so stability is actually exercised.
            kv.push((f64_key((state >> 50) as f64), i));
        }
        let mut want = kv.clone();
        want.sort_unstable();
        radix_sort_by_key(&mut kv);
        assert_eq!(kv, want);
    }

    fn grid_over(mbrs: &[Rect], workers: usize) -> GridPlan {
        let s = ItemStats::scan(mbrs);
        plan_grid(s.bbox.unwrap(), &s, &s, workers)
    }

    #[test]
    fn stats_scan_is_exact() {
        let mbrs = vec![r(0.0, 0.0, 2.0, 4.0), r(1.0, 1.0, 3.0, 2.0)];
        let s = ItemStats::scan(&mbrs);
        assert_eq!(s.n, 2);
        assert_eq!(s.bbox, Some(r(0.0, 0.0, 3.0, 4.0)));
        assert_eq!(s.avg_w, 2.0);
        assert_eq!(s.avg_h, 2.5);
        assert!(ItemStats::scan(&[]).bbox.is_none());
    }

    #[test]
    fn cell_mapping_is_clamped_and_monotone() {
        let g = GridPlan::new(r(0.0, 0.0, 10.0, 10.0), 4, 4);
        assert_eq!(g.cell_x(-5.0), 0);
        assert_eq!(g.cell_x(0.0), 0);
        assert_eq!(g.cell_x(9.99), 3);
        assert_eq!(g.cell_x(10.0), 3, "upper boundary clamps into the grid");
        assert_eq!(g.cell_x(50.0), 3);
        let mut prev = 0;
        for i in 0..100 {
            let c = g.cell_x(i as f64 * 0.1);
            assert!(c >= prev, "cell_x must be monotone");
            prev = c;
        }
    }

    #[test]
    fn degenerate_universe_collapses_to_one_cell() {
        let g = plan_grid(
            r(5.0, 0.0, 5.0, 10.0),
            &ItemStats {
                n: 100,
                bbox: None,
                avg_w: 0.0,
                avg_h: 1.0,
            },
            &ItemStats::default(),
            4,
        );
        assert_eq!(g.nx, 1, "zero-width universe keeps one column");
        assert!(g.ny >= 1);
        assert_eq!(g.cell_x(5.0), 0);
    }

    #[test]
    fn entry_extent_caps_grid_resolution() {
        // Items as wide as the universe: any cut would replicate every item
        // into every column.
        let mbrs: Vec<Rect> = (0..1000)
            .map(|i| r(0.0, i as f64, 100.0, i as f64 + 1.0))
            .collect();
        let g = grid_over(&mbrs, 4);
        assert_eq!(g.nx, 1, "full-width items forbid column cuts");
        assert!(g.ny > 1, "rows may still cut");
    }

    #[test]
    fn owner_cell_is_within_both_items_ranges() {
        let mbrs: Vec<Rect> = (0..500)
            .map(|i| {
                let x = (i % 25) as f64 * 0.83;
                let y = (i / 25) as f64 * 1.07;
                r(x, y, x + 1.9, y + 1.4)
            })
            .collect();
        let g = grid_over(&mbrs, 4);
        assert!(g.cells() > 1);
        for (i, a) in mbrs.iter().enumerate() {
            for b in &mbrs[i..] {
                if !a.intersects(b) {
                    continue;
                }
                let owner = g.owner_cell(a, b);
                let (ax0, ax1, ay0, ay1) = g.cell_range(a);
                let (bx0, bx1, by0, by1) = g.cell_range(b);
                let (ox, oy) = (owner % g.nx, owner / g.nx);
                assert!(
                    (ax0..=ax1).contains(&ox) && (ay0..=ay1).contains(&oy),
                    "owner outside a's range"
                );
                assert!(
                    (bx0..=bx1).contains(&ox) && (by0..=by1).contains(&oy),
                    "owner outside b's range"
                );
            }
        }
    }

    #[test]
    fn csr_covers_every_overlapped_cell_and_sorts_runs() {
        let mbrs: Vec<Rect> = (0..300)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                r(x, y, x + 2.5, y + 2.5)
            })
            .collect();
        let g = grid_over(&mbrs, 2);
        let idx = CellIndex::build(&g, &mbrs);
        assert_eq!(idx.placed, mbrs.len());
        assert_eq!(idx.offsets.len(), g.cells() + 1);
        // Every (item, overlapped cell) placement is present exactly once.
        let mut want = 0usize;
        for r in &mbrs {
            let (cx0, cx1, cy0, cy1) = g.cell_range(r);
            want += ((cx1 - cx0 + 1) * (cy1 - cy0 + 1)) as usize;
        }
        assert_eq!(idx.items.len(), want);
        let total_replicas: u64 = idx.replicas.iter().map(|&x| u64::from(x)).sum();
        assert_eq!(
            total_replicas as usize,
            want - idx.placed,
            "replicas = placements beyond each item's home cell"
        );
        for c in 0..g.cells() {
            let run = idx.cell(c);
            for w in run.windows(2) {
                let (ra, rb) = (mbrs[w[0] as usize], mbrs[w[1] as usize]);
                assert!(
                    ra.xl < rb.xl || (ra.xl == rb.xl && w[0] < w[1]),
                    "cell runs sorted by (xl, index)"
                );
            }
        }
    }

    #[test]
    fn items_outside_universe_are_dropped() {
        let g = GridPlan::new(r(0.0, 0.0, 10.0, 10.0), 2, 2);
        let mbrs = vec![r(20.0, 20.0, 21.0, 21.0), r(1.0, 1.0, 2.0, 2.0)];
        let idx = CellIndex::build(&g, &mbrs);
        assert_eq!(idx.placed, 1);
        assert_eq!(idx.items, vec![1]);
    }
}
