//! Native multithreaded executor: the same three-phase parallel join run on
//! real OS threads, scheduled morsel-at-a-time.
//!
//! While [`crate::sim`] reproduces the paper's *evaluation* (virtual time,
//! KSR1 cost model), this executor is what a downstream user calls to
//! actually join two indexed relations fast. Execution is **morsel-driven**
//! (see [`crate::morsel`]): phase 1's tasks are regrouped into morsels of
//! roughly equal *estimated candidate count*, dealt to the workers per the
//! configured [`Assignment`], and executed whole — each worker keeps a
//! morsel's task descendants on a private stack, so the shared queues only
//! ever drain and no per-node-pair locking remains on the hot path. An
//! idle worker performs the paper's dynamic task reassignment: it takes
//! exactly one morsel from the victim chosen by [`StealPolicy`] (by
//! default the measured-busiest worker, using the live `(remaining
//! candidates, remaining morsels)` stats every queue publishes).
//!
//! Each morsel's result pairs go to a morsel-local output buffer; the
//! driver concatenates the buffers in morsel-id order, which makes the
//! output **byte-identical to the sequential oracle** ([`crate::seq`]) at
//! every thread count and under every steal interleaving (morsels hold
//! contiguous runs of tasks in plane-sweep order, and the in-morsel
//! traversal is the same depth-first sweep order the oracle uses).
//!
//! # Out-of-core execution
//!
//! By default workers read tree nodes straight from the frozen in-memory
//! trees. Setting [`NativeConfig::buffer`] instead routes every node access
//! through a bounded [`SharedPageCache`]: a miss decodes the node from its
//! serialized 4 KB page, a hit reuses the cached decode, and the cache
//! never holds more than the configured page budget. This reproduces the
//! paper's local/global buffer dimension on real threads:
//!
//! * [`BufferOrg::Local`] — each worker gets a private cache with
//!   `capacity / num_threads` pages. Workers never see each other's pages,
//!   so a page hot on two workers is decoded twice (the paper's
//!   shared-nothing organization).
//! * [`BufferOrg::Global`] — one lock-sharded cache with the full budget is
//!   shared by all workers. A page any worker loaded serves everyone;
//!   hits on another worker's page are counted as *remote* hits, the
//!   accesses the paper charges with the ~10× interconnect penalty.
//!
//! [`NativeResult::buffer`] reports the aggregate [`BufferStats`];
//! [`NativeResult::buffer_per_worker`] breaks them down by worker.
//!
//! # Faults and storage errors
//!
//! [`try_run_native_join`] is the fallible entry point: page fetches may be
//! disturbed by an injected [`FaultPlan`] (see [`RunControl::fault`]) or, in
//! a real deployment, fail outright. Transient failures are retried inside
//! the cache per [`RunControl::retry`] and show up only as
//! [`BufferStats::retries`]; unrecoverable failures (checksum corruption,
//! quarantined pages) abort the join with [`NativeError::Storage`] — a
//! parallel join never silently drops a subtree, so a storage error yields
//! a typed error rather than a wrong answer.

use crate::assign::{static_range, static_round_robin, Assignment};
use crate::cancel::{CancelToken, Cancelled};
use crate::cost::CandidateEstimator;
use crate::deque::MorselQueue;
use crate::metrics::{TaskOrigin, TaskTrace};
use crate::morsel::{morselize, Morsel, MorselOptions, StealPolicy};
use crate::sim::BufferOrg;
use crate::task::{create_tasks, expand_pair, Candidate, KernelScratch, TaskPair};
use psj_buffer::{
    BufferStats, FaultSource, L1Front, L1Read, OptCoupling, PageGuard, PageSource, Policy,
    SharedPageCache,
};
use psj_desim::StealOrder;
use psj_obs::trace::{worker_tid, TID_MAIN};
use psj_obs::{ThreadTracer, TraceSink};
use psj_rtree::{Node, PagedTree};
use psj_store::{lock_clean, FaultPlan, PageError, PageId, RetryPolicy};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Buffered (out-of-core) execution settings for the native join.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Buffer organization: private per-worker caches or one shared cache.
    pub org: BufferOrg,
    /// Total page budget across all workers. Under [`BufferOrg::Local`]
    /// each worker gets `capacity_pages / num_threads` (at least 1).
    pub capacity_pages: usize,
    /// Lock shards of the global cache (ignored for the local
    /// organization, whose per-worker caches are uncontended).
    pub shards: usize,
    /// Page replacement policy.
    pub policy: Policy,
}

impl BufferConfig {
    /// A global (shared) cache with the given page budget, LRU replacement,
    /// and 8 lock shards.
    pub fn global(capacity_pages: usize) -> Self {
        BufferConfig {
            org: BufferOrg::Global,
            capacity_pages,
            shards: 8,
            policy: Policy::Lru,
        }
    }

    /// Private per-worker caches splitting the given total page budget,
    /// LRU replacement.
    pub fn local(capacity_pages: usize) -> Self {
        BufferConfig {
            org: BufferOrg::Local,
            capacity_pages,
            shards: 1,
            policy: Policy::Lru,
        }
    }
}

/// Configuration of a native parallel join.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NativeConfig {
    /// Number of worker threads.
    pub num_threads: usize,
    /// Task assignment strategy (dynamic = shared injector; static
    /// strategies pre-partition, with stealing providing the reassignment).
    pub assignment: Assignment,
    /// Whether idle workers steal from busy ones.
    pub work_stealing: bool,
    /// Phase 1 descends until at least `min_tasks_factor × num_threads`
    /// tasks exist.
    pub min_tasks_factor: usize,
    /// `true`: run the exact-geometry refinement step on every candidate
    /// (objects without stored geometry pass through). `false`: return the
    /// filter-step candidates.
    pub refine: bool,
    /// `Some`: run out-of-core, reading nodes through a bounded page cache
    /// with this configuration. `None`: read the frozen trees directly.
    pub buffer: Option<BufferConfig>,
    /// Target estimated filter-step candidates per morsel (phase 1½).
    /// `0` = auto: the run's total estimate split into roughly
    /// [`crate::morsel::MORSELS_PER_WORKER`] morsels per worker. Larger
    /// morsels amortize scheduling overhead; smaller ones balance better.
    pub morsel_candidates: u64,
    /// Victim selection when an idle worker reassigns a morsel.
    pub steal: StealPolicy,
    /// Seed of the [`StealPolicy::Seeded`] victim-order shim (ignored by
    /// the other policies).
    pub steal_seed: u64,
    /// Which join executor answers: the paper's R-tree traversal, the
    /// in-memory grid partition, or a per-run automatic choice. Only the
    /// engine-dispatching entry points ([`crate::partition::run_join`] /
    /// [`crate::partition::try_run_join`]) consult this; calling
    /// [`run_native_join`] directly always runs the R-tree engine.
    pub engine: crate::partition::JoinEngine,
}

impl NativeConfig {
    /// Dynamic assignment with stealing, unbuffered — the recommended
    /// configuration when both trees fit in memory.
    pub fn new(num_threads: usize) -> Self {
        NativeConfig {
            num_threads,
            assignment: Assignment::Dynamic,
            work_stealing: true,
            min_tasks_factor: 8,
            refine: true,
            buffer: None,
            morsel_candidates: 0,
            steal: StealPolicy::Busiest,
            steal_seed: 0,
            engine: crate::partition::JoinEngine::RTree,
        }
    }

    /// The same, with node accesses routed through `buffer`.
    pub fn buffered(num_threads: usize, buffer: BufferConfig) -> Self {
        let mut cfg = NativeConfig::new(num_threads);
        cfg.buffer = Some(buffer);
        cfg
    }
}

/// Runtime controls of a single join run that don't belong in the
/// (serializable) [`NativeConfig`]: cancellation, fault injection, and the
/// storage retry policy.
#[derive(Default, Clone)]
pub struct RunControl<'c> {
    /// Cooperative cancellation token, checked once per node pair.
    pub cancel: Option<&'c CancelToken>,
    /// Deterministic fault plan applied to every page fetch. Requires a
    /// buffered run; [`try_run_native_join`] forces an implicit global
    /// buffer when `fault` is set on an unbuffered config.
    pub fault: Option<Arc<FaultPlan>>,
    /// Retry policy for failed page fetches (applied inside the cache).
    pub retry: RetryPolicy,
    /// Trace sink for structured tracing. When set, the run emits
    /// `create_tasks`/`join` spans on the driver row, one `task` span per
    /// task segment on each worker row, `steal` instants, and (via the
    /// caches this run builds) `page_read`/`page_retry`/`page_quarantine`
    /// events. When `None`, tracing costs one `Option` check per task
    /// boundary — per-task attribution itself is always collected.
    pub trace: Option<Arc<TraceSink>>,
}

impl<'c> RunControl<'c> {
    /// Adds a cancellation token.
    pub fn with_cancel(mut self, token: &'c CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Adds a fault plan.
    pub fn with_fault(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the storage retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a trace sink.
    pub fn with_trace(mut self, trace: Arc<TraceSink>) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// An unrecoverable storage failure that aborted a join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinError {
    /// The first page error any worker hit (after retries).
    pub error: PageError,
    /// Tasks abandoned because their node fetch failed (workers that were
    /// mid-task when the abort flag went up also count theirs).
    pub failed_tasks: u64,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "join aborted by storage error ({} failed tasks): {}",
            self.failed_tasks, self.error
        )
    }
}

impl std::error::Error for JoinError {}

/// Why a fallible native join did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum NativeError {
    /// The cancel token fired (deadline or explicit cancellation).
    Cancelled,
    /// A page could not be read even after retries.
    Storage(JoinError),
    /// A morsel panicked mid-execution. The panic was contained to that
    /// morsel: its worker caught the unwind, kept its thread, and went on
    /// to finish the rest of the plan — but the panicked morsel's output
    /// is missing, so no (silently incomplete) result is returned.
    WorkerPanic {
        /// The first panic's payload, stringified.
        message: String,
        /// Morsels whose output was produced and merged normally.
        completed_morsels: usize,
        /// Total morsels planned for the run.
        morsels: usize,
    },
}

impl std::fmt::Display for NativeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NativeError::Cancelled => write!(f, "join cancelled"),
            NativeError::Storage(e) => write!(f, "{e}"),
            NativeError::WorkerPanic {
                message,
                completed_morsels,
                morsels,
            } => write!(
                f,
                "join morsel panicked ({completed_morsels}/{morsels} morsels completed): {message}"
            ),
        }
    }
}

impl std::error::Error for NativeError {}

/// Result of a native parallel join.
#[derive(Debug, Clone)]
pub struct NativeResult {
    /// Joined `(oid_a, oid_b)` pairs: exact results when `refine` was set,
    /// filter-step candidates otherwise. Worker-local morsel outputs are
    /// merged in morsel-id order, so the sequence is *deterministic* and
    /// byte-identical to the sequential oracle at every thread count.
    pub pairs: Vec<(u64, u64)>,
    /// Number of filter-step candidates (before refinement).
    pub candidates: u64,
    /// Node pairs visited across all threads (morsel execution only;
    /// expansions performed while splitting oversized tasks in phase 1½
    /// are not included).
    pub node_pairs: u64,
    /// Wall-clock duration of the parallel phase.
    pub elapsed: std::time::Duration,
    /// Number of tasks created in phase 1 (before morsel splitting).
    pub tasks: usize,
    /// Number of morsels planned in phase 1½. A completed run records
    /// exactly one [`TaskTrace`] per morsel.
    pub morsels: usize,
    /// Morsels acquired by reassignment — exactly one morsel per steal, so
    /// this equals the number of traces with [`TaskOrigin::Steal`].
    pub steals: u64,
    /// Aggregate page-cache statistics (`None` when unbuffered).
    pub buffer: Option<BufferStats>,
    /// Per-worker page-cache statistics (empty when unbuffered).
    pub buffer_per_worker: Vec<BufferStats>,
    /// Per-morsel attribution: one entry per acquired morsel, recorded on
    /// every run. Order is unspecified (group by [`TaskTrace::morsel`]).
    pub task_traces: Vec<TaskTrace>,
    /// Engine that produced this result. Every [`TaskTrace`] in
    /// `task_traces` carries the same tag.
    pub engine: crate::partition::JoinEngine,
    /// Grid-replicated item placements (partition engine only; the sum of
    /// the traces' [`TaskTrace::replicated`] — 0 for the R-tree engine).
    pub replicated: u64,
    /// Cross-cell duplicate pairs suppressed by the reference-point test
    /// (partition engine only; sums the traces' [`TaskTrace::deduped`]).
    pub deduped: u64,
}

/// High bit of a [`PageId`] distinguishes tree B's pages from tree A's in
/// the shared cache's key space.
const TREE_B_TAG: u32 = 1 << 31;

/// A [`PageSource`] over both join inputs: fetching decodes the node from
/// its serialized page in the owning tree's [`psj_store::PageStore`].
struct JoinSource<'t> {
    a: &'t PagedTree,
    b: &'t PagedTree,
}

impl PageSource for JoinSource<'_> {
    type Item = Node;

    fn fetch_page(&self, page: PageId) -> Result<Node, PageError> {
        Ok(if page.0 & TREE_B_TAG != 0 {
            Node::decode(self.b.pages().read(PageId(page.0 & !TREE_B_TAG)))
        } else {
            Node::decode(self.a.pages().read(page))
        })
    }

    fn page_count(&self) -> usize {
        self.a.pages().len() + self.b.pages().len()
    }
}

/// The page source a buffered run fills its cache from: the plain decode
/// path, or the same wrapped in an injected fault plan.
enum Source<'t> {
    Plain(JoinSource<'t>),
    Faulted(FaultSource<JoinSource<'t>>),
}

impl PageSource for Source<'_> {
    type Item = Node;

    fn fetch_page(&self, page: PageId) -> Result<Node, PageError> {
        match self {
            Source::Plain(s) => s.fetch_page(page),
            Source::Faulted(s) => s.fetch_page(page),
        }
    }

    fn page_count(&self) -> usize {
        match self {
            Source::Plain(s) => s.page_count(),
            Source::Faulted(s) => s.page_count(),
        }
    }
}

/// A node obtained by direct reference into a frozen tree, as a cached
/// decode owned by the page cache, or as a borrowing pin-guarded read out
/// of the cache's mirror (no Arc clone, no shard mutex).
enum NodeRef<'t> {
    Borrowed(&'t Node),
    Cached(Arc<Node>),
    Guarded(PageGuard<'t, Node>),
}

impl std::ops::Deref for NodeRef<'_> {
    type Target = Node;

    #[inline]
    fn deref(&self) -> &Node {
        match self {
            NodeRef::Borrowed(n) => n,
            NodeRef::Cached(n) => n,
            NodeRef::Guarded(g) => g,
        }
    }
}

impl<'t> NodeRef<'t> {
    /// Collapses an L1 lookup outcome: front/pessimistic reads are owned
    /// `Arc`s, guard reads keep the borrow (the pin drops with the ref).
    #[inline]
    fn from_l1(read: L1Read<'t, Node>) -> Self {
        match read {
            L1Read::Front(n) | L1Read::Shared(n, _) => NodeRef::Cached(n),
            L1Read::Guard(g) => NodeRef::Guarded(g),
        }
    }
}

/// One worker's view of the node storage: direct tree access, or a cache
/// (shared or private) in front of the serialized pages, with a private
/// direct-mapped L1 front absorbing this worker's repeat hits before they
/// reach the shard locks (tagged page ids keep both trees in one front).
struct NodeFetcher<'t> {
    a: &'t PagedTree,
    b: &'t PagedTree,
    source: Source<'t>,
    /// `(cache, stats index)` — the stats index is the worker id for the
    /// shared cache and 0 for a private one.
    cache: Option<(&'t SharedPageCache<Node>, usize)>,
    /// Present exactly when `cache` is. Exclusive to this worker's thread.
    l1: Option<L1Front<Node>>,
    /// Per-tree coupling tokens: consecutive guarded reads of the same
    /// tree chain parent→child seqlock validation across levels of the
    /// depth-first descent. A broken chain resets per tree; the other
    /// tree's descent is unaffected.
    couple_a: OptCoupling,
    couple_b: OptCoupling,
}

/// Slots in each worker's L1 front. Covers a join's working set of hot
/// directory pages; data pages churn through and rarely repeat.
const L1_SLOTS: usize = 64;

impl<'t> NodeFetcher<'t> {
    #[inline]
    fn node_a(&mut self, page: PageId) -> Result<NodeRef<'t>, PageError> {
        match self.cache {
            None => Ok(NodeRef::Borrowed(self.a.node(page))),
            Some((cache, w)) => match &mut self.l1 {
                Some(l1) => l1
                    .try_get_coupled(cache, w, page, &mut self.couple_a, &self.source)
                    .map(NodeRef::from_l1),
                None => match cache.guard_get_coupled(w, page, &mut self.couple_a) {
                    Some(g) => Ok(NodeRef::Guarded(g)),
                    None => cache
                        .try_get(w, page, &self.source)
                        .map(|(n, _)| NodeRef::Cached(n)),
                },
            },
        }
    }

    #[inline]
    fn node_b(&mut self, page: PageId) -> Result<NodeRef<'t>, PageError> {
        let tagged = PageId(page.0 | TREE_B_TAG);
        match self.cache {
            None => Ok(NodeRef::Borrowed(self.b.node(page))),
            Some((cache, w)) => match &mut self.l1 {
                Some(l1) => l1
                    .try_get_coupled(cache, w, tagged, &mut self.couple_b, &self.source)
                    .map(NodeRef::from_l1),
                None => match cache.guard_get_coupled(w, tagged, &mut self.couple_b) {
                    Some(g) => Ok(NodeRef::Guarded(g)),
                    None => cache
                        .try_get(w, tagged, &self.source)
                        .map(|(n, _)| NodeRef::Cached(n)),
                },
            },
        }
    }

    /// This worker's buffer counters with the L1 front flushed first, so
    /// every front hit up to this call is included — segment deltas taken
    /// from consecutive calls reconcile exactly with the run aggregates.
    fn synced_stats(&mut self) -> BufferStats {
        match self.cache {
            Some((c, w)) => {
                if let Some(l1) = &mut self.l1 {
                    l1.flush(c, w);
                }
                c.stats(w)
            }
            None => BufferStats::default(),
        }
    }
}

/// The caches a buffered run uses, by organization and ownership.
enum CacheSet<'c> {
    None,
    Global(SharedPageCache<Node>),
    Local(Vec<SharedPageCache<Node>>),
    /// Caller-owned shared cache that stays warm across joins.
    External(&'c SharedPageCache<Node>),
}

impl<'c> CacheSet<'c> {
    fn build(cfg: &NativeConfig, retry: RetryPolicy, trace: Option<&Arc<TraceSink>>) -> Self {
        let traced = |cache: SharedPageCache<Node>| match trace {
            Some(t) => cache.with_trace(Arc::clone(t)),
            None => cache,
        };
        match &cfg.buffer {
            None => CacheSet::None,
            Some(b) => match b.org {
                BufferOrg::Global => CacheSet::Global(traced(
                    SharedPageCache::new(
                        cfg.num_threads,
                        b.capacity_pages,
                        b.shards.max(1),
                        b.policy,
                    )
                    .with_retry(retry),
                )),
                BufferOrg::Local => {
                    let per_worker = (b.capacity_pages / cfg.num_threads).max(1);
                    CacheSet::Local(
                        (0..cfg.num_threads)
                            .map(|_| {
                                traced(
                                    SharedPageCache::new(1, per_worker, 1, b.policy)
                                        .with_retry(retry),
                                )
                            })
                            .collect(),
                    )
                }
            },
        }
    }

    /// The cache worker `id` uses plus its stats index within that cache.
    fn for_worker(&self, id: usize) -> Option<(&SharedPageCache<Node>, usize)> {
        match self {
            CacheSet::None => None,
            CacheSet::Global(c) => Some((c, id)),
            CacheSet::Local(v) => Some((&v[id], 0)),
            CacheSet::External(c) => Some((c, id)),
        }
    }

    /// Per-worker stats, indexed by worker id.
    fn per_worker_stats(&self, num_threads: usize) -> Vec<BufferStats> {
        match self {
            CacheSet::None => Vec::new(),
            CacheSet::Global(c) => c.per_worker_stats(),
            CacheSet::Local(v) => (0..num_threads).map(|i| v[i].stats(0)).collect(),
            CacheSet::External(c) => c.per_worker_stats().into_iter().take(num_threads).collect(),
        }
    }
}

/// One worker's run output: completed morsels' result pairs (keyed by
/// morsel id for the deterministic merge) and attribution segments.
type WorkerOutput = (Vec<(u32, Vec<(u64, u64)>)>, Vec<TaskTrace>);

/// Live load stats one worker's queue publishes for busiest-victim
/// selection — the paper's `(hl, ns)`: remaining estimated candidates and
/// remaining morsels. Decremented by whoever removes a morsel (owner or
/// thief), so reads are at worst momentarily stale, never wrong in sum.
#[derive(Default)]
struct WorkerLoad {
    est: AtomicU64,
    morsels: AtomicU64,
}

/// Cross-worker failure state: the first unrecoverable page error raises
/// `abort`; every worker bails out at its next loop iteration. Contained
/// morsel panics are recorded here too, but deliberately do NOT raise
/// `abort` — the point of catching them is that the rest of the plan still
/// runs.
#[derive(Default)]
struct FailState {
    abort: AtomicBool,
    failed_tasks: AtomicU64,
    first_error: Mutex<Option<PageError>>,
    panics: AtomicU64,
    first_panic: Mutex<Option<String>>,
}

impl FailState {
    fn record(&self, error: PageError) {
        self.failed_tasks.fetch_add(1, Ordering::Relaxed);
        let mut slot = lock_clean(&self.first_error);
        if slot.is_none() {
            *slot = Some(error);
        }
        drop(slot);
        self.abort.store(true, Ordering::SeqCst);
    }

    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut slot = lock_clean(&self.first_panic);
        if slot.is_none() {
            *slot = Some(msg);
        }
    }
}

/// Runs the join on real threads.
///
/// # Panics
///
/// Panics on a storage error — impossible here, because without a fault
/// plan the in-memory page decode cannot fail. Fallible deployments use
/// [`try_run_native_join`].
pub fn run_native_join(a: &PagedTree, b: &PagedTree, cfg: &NativeConfig) -> NativeResult {
    let retry = RetryPolicy::default();
    match run_with_caches(
        a,
        b,
        cfg,
        CacheSet::build(cfg, retry, None),
        &RunControl::default(),
    ) {
        Ok(res) => res,
        Err(e) => unreachable!("in-memory join cannot fail: {e}"),
    }
}

/// Runs the join on real threads with cooperative cancellation.
///
/// Every worker checks `cancel` once per node pair; when the token fires
/// (deadline expiry or explicit [`CancelToken::cancel`]) all workers unwind
/// within one task's worth of work and the call returns `Err(Cancelled)`,
/// discarding partial results. This is the entry point a serving layer uses
/// to enforce per-request deadlines on join queries.
pub fn run_native_join_cancellable(
    a: &PagedTree,
    b: &PagedTree,
    cfg: &NativeConfig,
    cancel: &CancelToken,
) -> Result<NativeResult, Cancelled> {
    let ctl = RunControl::default().with_cancel(cancel);
    match run_with_caches(a, b, cfg, CacheSet::build(cfg, ctl.retry, None), &ctl) {
        Ok(res) => Ok(res),
        Err(NativeError::Cancelled) => Err(Cancelled),
        Err(e) => unreachable!("in-memory join cannot fail: {e}"),
    }
}

/// Runs the join under full runtime control: cancellation, fault
/// injection, and a storage retry policy.
///
/// Faults act on cache fills, so a fault plan on an *unbuffered* config
/// forces an implicit global buffer sized to both trees (the result then
/// carries [`NativeResult::buffer`] stats even though `cfg.buffer` was
/// `None`). Transient faults are absorbed by retries and reported in
/// [`BufferStats::retries`]; an unrecoverable page failure aborts all
/// workers and returns [`NativeError::Storage`].
pub fn try_run_native_join(
    a: &PagedTree,
    b: &PagedTree,
    cfg: &NativeConfig,
    ctl: &RunControl<'_>,
) -> Result<NativeResult, NativeError> {
    let needs_buffer = cfg.buffer.is_none() && ctl.fault.as_ref().is_some_and(|p| !p.is_noop());
    if needs_buffer {
        let mut forced = cfg.clone();
        forced.buffer = Some(BufferConfig::global(
            (a.pages().len() + b.pages().len()).max(1),
        ));
        let caches = CacheSet::build(&forced, ctl.retry, ctl.trace.as_ref());
        return run_with_caches(a, b, &forced, caches, ctl);
    }
    run_with_caches(
        a,
        b,
        cfg,
        CacheSet::build(cfg, ctl.retry, ctl.trace.as_ref()),
        ctl,
    )
}

/// Runs the join with a caller-owned shared cache (global organization).
///
/// Unlike [`run_native_join`], the cache outlives the call: a second join
/// over the same trees starts warm, so a cache sized to the working set
/// reports zero misses the second time. [`NativeResult::buffer`] reports
/// only the activity of *this* run (the delta against the cache's counters
/// at entry). Any `cfg.buffer` setting is ignored in favor of `cache`.
///
/// # Panics
///
/// Panics if `cache` tracks stats for fewer workers than `cfg.num_threads`,
/// or on a storage error (a caller-owned cache may hold quarantined pages;
/// use [`try_run_native_join_with_cache`] to handle those).
pub fn run_native_join_with_cache(
    a: &PagedTree,
    b: &PagedTree,
    cfg: &NativeConfig,
    cache: &SharedPageCache<Node>,
) -> NativeResult {
    match try_run_native_join_with_cache(a, b, cfg, cache, &RunControl::default()) {
        Ok(res) => res,
        Err(e) => panic!("join with external cache failed: {e}"),
    }
}

/// Fallible variant of [`run_native_join_with_cache`] with runtime
/// controls. Note the retry policy of the *cache* (not `ctl.retry`)
/// governs fetch retries, since the cache is caller-owned.
pub fn try_run_native_join_with_cache(
    a: &PagedTree,
    b: &PagedTree,
    cfg: &NativeConfig,
    cache: &SharedPageCache<Node>,
    ctl: &RunControl<'_>,
) -> Result<NativeResult, NativeError> {
    assert!(
        cache.num_workers() >= cfg.num_threads,
        "cache tracks {} workers, config wants {}",
        cache.num_workers(),
        cfg.num_threads
    );
    run_with_caches(a, b, cfg, CacheSet::External(cache), ctl)
}

fn run_with_caches(
    a: &PagedTree,
    b: &PagedTree,
    cfg: &NativeConfig,
    caches: CacheSet<'_>,
    ctl: &RunControl<'_>,
) -> Result<NativeResult, NativeError> {
    assert!(cfg.num_threads > 0, "need at least one thread");
    assert!(
        a.pages().len() < TREE_B_TAG as usize && b.pages().len() < TREE_B_TAG as usize,
        "page id tag bit collision"
    );
    let cancel = ctl.cancel;
    let trace = ctl.trace.as_ref();
    let join_start_ns = trace.map(|t| {
        t.set_thread_name(TID_MAIN, "join driver");
        for id in 0..cfg.num_threads {
            t.set_thread_name(worker_tid(id), format!("worker {id}"));
            t.set_thread_name(
                psj_obs::trace::cache_tid(id),
                format!("cache (worker {id})"),
            );
        }
        t.now_ns()
    });
    let tasks_start_ns = trace.map(|t| t.now_ns());
    let tc = create_tasks(a, b, cfg.min_tasks_factor * cfg.num_threads);
    let tasks = tc.tasks.len();
    if let (Some(t), Some(start)) = (trace, tasks_start_ns) {
        t.span(
            TID_MAIN,
            "create_tasks",
            "join",
            start,
            &[
                ("tasks", tasks as u64),
                ("pages_a", tc.pages_a.len() as u64),
                ("pages_b", tc.pages_b.len() as u64),
            ],
        );
    }
    if let Some(token) = cancel {
        token.check().map_err(|_| NativeError::Cancelled)?;
    }

    // Phase 1½: regroup the task list into morsels sized by estimated
    // candidate counts (split oversized tasks, pack undersized neighbors).
    let morsel_start_ns = trace.map(|t| t.now_ns());
    let estimator = CandidateEstimator::new(a, b);
    let mut opts = MorselOptions::new(cfg.num_threads);
    opts.budget = cfg.morsel_candidates;
    let plan = morselize(a, b, &tc.tasks, &estimator, &opts);
    let num_morsels = plan.morsels.len();
    if let (Some(t), Some(start)) = (trace, morsel_start_ns) {
        t.span(
            TID_MAIN,
            "morselize",
            "join",
            start,
            &[
                ("morsels", num_morsels as u64),
                ("budget", plan.budget),
                ("total_est", plan.total_est),
                ("split_expansions", plan.split_expansions),
            ],
        );
    }

    let injector: MorselQueue<Morsel> = MorselQueue::new();
    let queues: Vec<MorselQueue<Morsel>> =
        (0..cfg.num_threads).map(|_| MorselQueue::new()).collect();
    let loads: Vec<WorkerLoad> = (0..cfg.num_threads)
        .map(|_| WorkerLoad::default())
        .collect();
    match cfg.assignment {
        Assignment::Dynamic => {
            for m in plan.morsels {
                injector.push_back(m);
            }
        }
        Assignment::StaticRange | Assignment::StaticRoundRobin => {
            let dealt = if cfg.assignment == Assignment::StaticRange {
                static_range(&plan.morsels, cfg.num_threads)
            } else {
                static_round_robin(&plan.morsels, cfg.num_threads)
            };
            for (w, load) in dealt.into_iter().enumerate() {
                for m in load {
                    loads[w].est.fetch_add(m.est, Ordering::Relaxed);
                    loads[w].morsels.fetch_add(1, Ordering::Relaxed);
                    queues[w].push_back(m);
                }
            }
        }
    }

    // Snapshot so a pre-warmed external cache reports only this run's
    // activity (freshly built caches snapshot all-zero counters).
    let baseline = caches.per_worker_stats(cfg.num_threads);
    let candidates = AtomicU64::new(0);
    let node_pairs = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let fail = FailState::default();
    let start = Instant::now();

    let mut results: Vec<WorkerOutput> = Vec::with_capacity(cfg.num_threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.num_threads);
        for id in 0..cfg.num_threads {
            let injector = &injector;
            let queues = &queues;
            let loads = &loads;
            let caches = &caches;
            let candidates = &candidates;
            let node_pairs = &node_pairs;
            let steals = &steals;
            let fail = &fail;
            let fault = ctl.fault.clone();
            let tracer = ctl.trace.as_ref().map(|t| t.tracer(worker_tid(id)));
            handles.push(scope.spawn(move || {
                let join_source = JoinSource { a, b };
                let cache = caches.for_worker(id);
                let mut fetcher = NodeFetcher {
                    a,
                    b,
                    source: match fault {
                        Some(plan) => Source::Faulted(FaultSource::new(join_source, plan)),
                        None => Source::Plain(join_source),
                    },
                    cache,
                    l1: cache.map(|_| L1Front::new(L1_SLOTS)),
                    couple_a: OptCoupling::root(),
                    couple_b: OptCoupling::root(),
                };
                run_worker(
                    id,
                    a,
                    b,
                    cfg,
                    &mut fetcher,
                    queues,
                    injector,
                    loads,
                    candidates,
                    node_pairs,
                    steals,
                    cancel,
                    fail,
                    tracer,
                )
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });
    let elapsed = start.elapsed();
    if let (Some(t), Some(start_ns)) = (trace, join_start_ns) {
        t.span(
            TID_MAIN,
            "join",
            "join",
            start_ns,
            &[
                ("tasks", tasks as u64),
                ("morsels", num_morsels as u64),
                ("threads", cfg.num_threads as u64),
                ("steals", steals.load(Ordering::Relaxed)),
            ],
        );
    }

    let buffer_per_worker: Vec<BufferStats> = caches
        .per_worker_stats(cfg.num_threads)
        .iter()
        .zip(&baseline)
        .map(|(now, then)| now.since(then))
        .collect();
    let buffer = if matches!(caches, CacheSet::None) {
        None
    } else {
        Some(
            buffer_per_worker
                .iter()
                .fold(BufferStats::default(), |acc, s| acc.merged(s)),
        )
    };

    if fail.abort.load(Ordering::SeqCst) {
        let error = lock_clean(&fail.first_error)
            .take()
            .expect("abort flag implies a recorded error");
        return Err(NativeError::Storage(JoinError {
            error,
            failed_tasks: fail.failed_tasks.load(Ordering::Relaxed),
        }));
    }

    if let Some(token) = cancel {
        // A token that fired mid-run means workers unwound early and the
        // result set may be partial; report cancellation instead.
        token.check().map_err(|_| NativeError::Cancelled)?;
    }

    // Deterministic merge: every completed morsel's output lands in its
    // id slot exactly once; concatenating slots in id order reproduces the
    // sequential oracle's byte order. A lost or duplicated morsel is an
    // executor bug, not a data error — fail loudly, unless a contained
    // panic explains the hole, in which case the run reports it as a
    // typed error (a partial merge would be a silently wrong answer).
    let mut task_traces = Vec::with_capacity(num_morsels);
    let mut slots: Vec<Option<Vec<(u64, u64)>>> = Vec::new();
    slots.resize_with(num_morsels, || None);
    for (outputs, mut t) in results {
        for (mid, out) in outputs {
            let slot = &mut slots[mid as usize];
            assert!(slot.is_none(), "morsel {mid} executed twice");
            *slot = Some(out);
        }
        task_traces.append(&mut t);
    }
    if fail.panics.load(Ordering::Relaxed) > 0 {
        let message = lock_clean(&fail.first_panic)
            .take()
            .unwrap_or_else(|| "panic recorded without a message".to_string());
        return Err(NativeError::WorkerPanic {
            message,
            completed_morsels: slots.iter().filter(|s| s.is_some()).count(),
            morsels: num_morsels,
        });
    }
    let mut pairs = Vec::with_capacity(
        slots
            .iter()
            .map(|s| s.as_ref().map_or(0, Vec::len))
            .sum::<usize>(),
    );
    for (mid, slot) in slots.iter_mut().enumerate() {
        match slot.take() {
            Some(mut v) => pairs.append(&mut v),
            None => panic!("morsel {mid} lost"),
        }
    }
    Ok(NativeResult {
        pairs,
        candidates: candidates.load(Ordering::Relaxed),
        node_pairs: node_pairs.load(Ordering::Relaxed),
        elapsed,
        tasks,
        morsels: num_morsels,
        steals: steals.load(Ordering::Relaxed),
        buffer,
        buffer_per_worker,
        task_traces,
        engine: crate::partition::JoinEngine::RTree,
        replicated: 0,
        deduped: 0,
    })
}

/// One open morsel segment: the attribution baseline captured when the
/// morsel was acquired (see [`TaskTrace`]).
struct Segment {
    origin: TaskOrigin,
    morsel: u32,
    tasks: u32,
    start: Instant,
    start_ns: u64,
    base_stats: BufferStats,
    base_pairs: u64,
    base_cands: u64,
}

/// Closes `seg`: computes the deltas since its baseline, records a
/// [`TaskTrace`], and (when tracing) emits the `task` span.
#[allow(clippy::too_many_arguments)]
fn close_segment(
    seg: Segment,
    id: usize,
    buffered: bool,
    now_stats: BufferStats,
    pairs: u64,
    cands: u64,
    traces: &mut Vec<TaskTrace>,
    tracer: Option<&mut ThreadTracer>,
) {
    let delta = now_stats.since(&seg.base_stats);
    let node_pairs = pairs - seg.base_pairs;
    let candidates = cands - seg.base_cands;
    let pages = if buffered {
        delta.requests()
    } else {
        // Unbuffered fetches bypass the cache counters: each processed
        // node pair reads its two nodes, each candidate its two leaves.
        2 * node_pairs + 2 * candidates
    };
    let tt = TaskTrace {
        worker: id,
        morsel: seg.morsel,
        tasks: seg.tasks,
        origin: seg.origin,
        node_pairs,
        candidates,
        pages,
        hits_local: delta.hits_local,
        hits_l1: delta.hits_l1,
        hits_remote: delta.hits_remote,
        misses: delta.misses,
        retries: delta.retries,
        wall: seg.start.elapsed(),
        engine: crate::partition::JoinEngine::RTree,
        replicated: 0,
        deduped: 0,
    };
    if let Some(tr) = tracer {
        tr.span(
            "task",
            "join",
            seg.start_ns,
            &[
                ("worker", id as u64),
                ("morsel", seg.morsel as u64),
                ("tasks", seg.tasks as u64),
                ("origin", seg.origin as u64),
                ("node_pairs", tt.node_pairs),
                ("candidates", tt.candidates),
                ("pages", tt.pages),
                ("hits_local", tt.hits_local),
                ("hits_remote", tt.hits_remote),
                ("retries", tt.retries),
            ],
        );
    }
    traces.push(tt);
}

/// Acquires the next morsel for worker `id`: own queue front (plane-sweep
/// order), then the shared queue, then — with stealing on — exactly one
/// morsel from the victim picked by the configured [`StealPolicy`]. Load
/// stats are decremented by whoever removes a morsel, so the busiest
/// snapshot is at worst momentarily stale. Returns `None` when every queue
/// was observed empty — queues only drain after setup, so that worker is
/// done for good.
#[allow(clippy::too_many_arguments)]
fn acquire_morsel(
    id: usize,
    cfg: &NativeConfig,
    queues: &[MorselQueue<Morsel>],
    injector: &MorselQueue<Morsel>,
    loads: &[WorkerLoad],
    steals: &AtomicU64,
    shim: &StealOrder,
    attempts: &mut u64,
    tracer: Option<&mut ThreadTracer>,
) -> Option<(Morsel, TaskOrigin)> {
    if let Some(m) = queues[id].pop_front() {
        loads[id].est.fetch_sub(m.est, Ordering::Relaxed);
        loads[id].morsels.fetch_sub(1, Ordering::Relaxed);
        return Some((m, TaskOrigin::Assigned));
    }
    if let Some(m) = injector.pop_front() {
        return Some((m, TaskOrigin::Injector));
    }
    if !cfg.work_stealing || queues.len() < 2 {
        return None;
    }
    let n = queues.len();
    let try_steal = |v: usize| -> Option<Morsel> {
        let m = queues[v].steal_back()?;
        loads[v].est.fetch_sub(m.est, Ordering::Relaxed);
        loads[v].morsels.fetch_sub(1, Ordering::Relaxed);
        Some(m)
    };
    let stolen = match cfg.steal {
        StealPolicy::Busiest => {
            // Snapshot the live (remaining est, remaining morsels) stats and
            // probe victims busiest-first; ties break toward the lower id.
            let mut victims: Vec<(u64, u64, usize)> = (0..n)
                .filter(|&w| w != id)
                .map(|w| {
                    (
                        loads[w].est.load(Ordering::Relaxed),
                        loads[w].morsels.load(Ordering::Relaxed),
                        w,
                    )
                })
                .collect();
            victims.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(y.1.cmp(&x.1)).then(x.2.cmp(&y.2)));
            victims
                .into_iter()
                .find_map(|(_, _, w)| try_steal(w).map(|m| (m, w)))
        }
        StealPolicy::RoundRobin => (1..n).find_map(|k| {
            let w = (id + k) % n;
            try_steal(w).map(|m| (m, w))
        }),
        StealPolicy::Seeded => {
            *attempts += 1;
            let start = shim.first_victim(id, *attempts, n);
            (0..n).find_map(|k| {
                let w = (start + k) % n;
                if w == id {
                    return None;
                }
                try_steal(w).map(|m| (m, w))
            })
        }
    };
    stolen.map(|(m, v)| {
        steals.fetch_add(1, Ordering::Relaxed);
        if let Some(tr) = tracer {
            tr.instant(
                "steal",
                "join",
                &[("victim", v as u64), ("morsel", m.id as u64)],
            );
        }
        (m, TaskOrigin::Steal)
    })
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    id: usize,
    a: &PagedTree,
    b: &PagedTree,
    cfg: &NativeConfig,
    fetcher: &mut NodeFetcher<'_>,
    queues: &[MorselQueue<Morsel>],
    injector: &MorselQueue<Morsel>,
    loads: &[WorkerLoad],
    candidates: &AtomicU64,
    node_pairs: &AtomicU64,
    steals: &AtomicU64,
    cancel: Option<&CancelToken>,
    fail: &FailState,
    mut tracer: Option<ThreadTracer>,
) -> WorkerOutput {
    let mut scratch = KernelScratch::default();
    let mut children: Vec<TaskPair> = Vec::new();
    let mut cands: Vec<Candidate> = Vec::new();
    // Morsel-private DFS stack: task descendants never re-enter the shared
    // queues, so no locking happens between morsel boundaries.
    let mut stack: Vec<TaskPair> = Vec::new();
    let mut outputs: Vec<(u32, Vec<(u64, u64)>)> = Vec::new();
    let mut local_candidates = 0u64;
    let mut local_pairs = 0u64;

    // Per-morsel attribution state. `synced_stats` flushes this worker's L1
    // front and reads its own counters: both exclusive to it, so deltas
    // between boundaries are exact.
    let buffered = fetcher.cache.is_some();
    let mut traces: Vec<TaskTrace> = Vec::new();
    let shim = StealOrder::new(cfg.steal_seed);
    let mut attempts = 0u64;

    'outer: loop {
        // Cooperative cancellation / failure abort: each worker bails out on
        // its own; the caller discards partial results once every worker has
        // unwound.
        if cancel.is_some_and(|t| t.is_cancelled()) || fail.abort.load(Ordering::Relaxed) {
            break 'outer;
        }
        let Some((morsel, origin)) = acquire_morsel(
            id,
            cfg,
            queues,
            injector,
            loads,
            steals,
            &shim,
            &mut attempts,
            tracer.as_mut(),
        ) else {
            // Every queue observed empty. Queues only drain after setup
            // (descendants stay on the private stack), so nothing can
            // appear later: retire without a termination barrier.
            break 'outer;
        };

        let seg = Segment {
            origin,
            morsel: morsel.id,
            tasks: morsel.tasks.len() as u32,
            start: Instant::now(),
            start_ns: tracer.as_ref().map_or(0, ThreadTracer::now_ns),
            base_stats: fetcher.synced_stats(),
            base_pairs: local_pairs,
            base_cands: local_candidates,
        };
        let mid = morsel.id;
        stack.clear();
        stack.extend(morsel.tasks.into_iter().rev());
        // Execute the morsel's tasks in plane-sweep order, each depth-first
        // with children pushed in reverse — the sequential oracle's exact
        // traversal, so `out` is byte-identical to the oracle's slice for
        // this morsel. `dirty` marks an abort mid-morsel: the segment still
        // closes (attribution stays exact) but the partial output is
        // discarded and the worker unwinds.
        //
        // The whole morsel runs under `catch_unwind`: a panic (a kernel
        // bug, an injected fault) is contained to the morsel that hit it —
        // the worker records it, keeps its thread, and moves on to the
        // next morsel. The shared structures stay usable across the unwind
        // because every lock on the worker's path recovers from poisoning
        // (`lock_clean`) and in-flight cache fills are cleaned up by a
        // drop guard.
        let run_morsel = std::panic::AssertUnwindSafe(|| {
            let mut out: Vec<(u64, u64)> = Vec::new();
            let mut dirty = false;
            'morsel: while let Some(pair) = stack.pop() {
                if cancel.is_some_and(|t| t.is_cancelled()) || fail.abort.load(Ordering::Relaxed) {
                    dirty = true;
                    break 'morsel;
                }
                local_pairs += 1;
                let fetched = fetcher
                    .node_a(pair.a)
                    .and_then(|na| fetcher.node_b(pair.b).map(|nb| (na, nb)));
                let (na, nb) = match fetched {
                    Ok(v) => v,
                    Err(e) => {
                        fail.record(e);
                        dirty = true;
                        break 'morsel;
                    }
                };
                children.clear();
                cands.clear();
                expand_pair(&na, &nb, &pair, &mut scratch, &mut children, &mut cands);
                drop((na, nb));
                for c in children.drain(..).rev() {
                    stack.push(c);
                }
                for c in &cands {
                    local_candidates += 1;
                    let fetched = fetcher
                        .node_a(c.page_a)
                        .and_then(|na| fetcher.node_b(c.page_b).map(|nb| (na, nb)));
                    let (na, nb) = match fetched {
                        Ok(v) => v,
                        Err(e) => {
                            fail.record(e);
                            dirty = true;
                            break 'morsel;
                        }
                    };
                    let ea = na.data_entries()[c.idx_a as usize];
                    let eb = nb.data_entries()[c.idx_b as usize];
                    if cfg.refine {
                        // Refinement geometry lives in the cluster store,
                        // outside the page budget: the paper reads clusters
                        // once per data page and does not buffer them (§4.2).
                        let ga = a.clusters().geometry(ea.geom.page, ea.geom.slot);
                        let gb = b.clusters().geometry(eb.geom.page, eb.geom.slot);
                        let hit = match (ga, gb) {
                            (Some(ga), Some(gb)) => ga.intersects(gb),
                            _ => true,
                        };
                        if hit {
                            out.push((ea.oid, eb.oid));
                        }
                    } else {
                        out.push((ea.oid, eb.oid));
                    }
                }
            }
            (out, dirty)
        });
        let outcome = match std::panic::catch_unwind(run_morsel) {
            Ok(v) => Some(v),
            Err(payload) => {
                fail.record_panic(payload.as_ref());
                // Descendants of the panicked morsel must not leak into
                // the next morsel's traversal.
                stack.clear();
                None
            }
        };
        // The segment closes even for a panicked morsel, so per-worker
        // attribution still accounts for the work it attempted.
        close_segment(
            seg,
            id,
            buffered,
            fetcher.synced_stats(),
            local_pairs,
            local_candidates,
            &mut traces,
            tracer.as_mut(),
        );
        match outcome {
            Some((_, true)) => break 'outer,
            Some((out, false)) => outputs.push((mid, out)),
            // Panicked: the morsel's output is lost (the driver reports a
            // typed error), but this worker keeps draining the queues.
            None => {}
        }
    }

    candidates.fetch_add(local_candidates, Ordering::Relaxed);
    node_pairs.fetch_add(local_pairs, Ordering::Relaxed);
    (outputs, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{join_candidates, join_refined};
    use psj_geom::{Point, Polyline, Rect};
    use psj_rtree::RTree;
    use std::collections::BTreeSet;

    fn tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        let mut geoms = Vec::new();
        for i in 0..n {
            let x = (i % 30) as f64 + offset;
            let y = (i / 30) as f64 + offset;
            t.insert(Rect::new(x, y, x + 1.1, y + 1.1), i as u64);
            geoms.push(Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 1.1, y + 1.1),
            ]));
        }
        PagedTree::freeze(&t, move |oid| Some(geoms[oid as usize].clone()))
    }

    fn as_set(v: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
        v.iter().copied().collect()
    }

    #[test]
    fn filter_step_matches_sequential() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        for threads in [1, 2, 4, 8] {
            let mut cfg = NativeConfig::new(threads);
            cfg.refine = false;
            let res = run_native_join(&a, &b, &cfg);
            assert_eq!(as_set(&res.pairs), want, "{threads} threads");
            assert_eq!(res.candidates as usize, res.pairs.len());
            assert!(res.buffer.is_none());
        }
    }

    #[test]
    fn refined_matches_sequential_refined() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_refined(&a, &b));
        let res = run_native_join(&a, &b, &NativeConfig::new(4));
        assert_eq!(as_set(&res.pairs), want);
        assert!(res.pairs.len() <= res.candidates as usize);
    }

    #[test]
    fn static_assignments_with_stealing_are_correct() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        for assignment in [Assignment::StaticRange, Assignment::StaticRoundRobin] {
            let cfg = NativeConfig {
                num_threads: 4,
                assignment,
                min_tasks_factor: 4,
                refine: false,
                ..NativeConfig::new(4)
            };
            let res = run_native_join(&a, &b, &cfg);
            assert_eq!(as_set(&res.pairs), want, "{assignment:?}");
        }
    }

    #[test]
    fn static_without_stealing_is_correct() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        let cfg = NativeConfig {
            num_threads: 3,
            assignment: Assignment::StaticRange,
            work_stealing: false,
            min_tasks_factor: 2,
            refine: false,
            ..NativeConfig::new(3)
        };
        let res = run_native_join(&a, &b, &cfg);
        assert_eq!(as_set(&res.pairs), want);
    }

    #[test]
    fn empty_join_terminates() {
        let a = tree(50, 0.0);
        let b = tree(50, 10_000.0);
        let res = run_native_join(&a, &b, &NativeConfig::new(4));
        assert!(res.pairs.is_empty());
        assert_eq!(res.tasks, 0);
    }

    #[test]
    fn buffered_global_matches_unbuffered() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        let total_pages = a.pages().len() + b.pages().len();
        // From comfortable to badly thrashing.
        for capacity in [total_pages * 2, total_pages / 2, 4] {
            let mut cfg = NativeConfig::buffered(4, BufferConfig::global(capacity));
            cfg.refine = false;
            let res = run_native_join(&a, &b, &cfg);
            assert_eq!(as_set(&res.pairs), want, "capacity {capacity}");
            let stats = res.buffer.expect("buffered run reports stats");
            assert!(stats.requests() > 0);
            assert!(stats.misses > 0);
            assert_eq!(res.buffer_per_worker.len(), 4);
        }
    }

    #[test]
    fn buffered_local_matches_unbuffered() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_refined(&a, &b));
        let cfg = NativeConfig::buffered(4, BufferConfig::local(32));
        let res = run_native_join(&a, &b, &cfg);
        assert_eq!(as_set(&res.pairs), want);
        let stats = res.buffer.expect("buffered run reports stats");
        assert_eq!(
            stats.hits_remote, 0,
            "local organization has no remote hits"
        );
        assert!(stats.misses > 0);
    }

    #[test]
    fn warm_external_cache_has_zero_misses_on_second_join() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let total_pages = a.pages().len() + b.pages().len();
        let cache: SharedPageCache<Node> = SharedPageCache::new(4, total_pages * 2, 8, Policy::Lru);
        let mut cfg = NativeConfig::new(4);
        cfg.refine = false;
        let cold = run_native_join_with_cache(&a, &b, &cfg, &cache);
        let warm = run_native_join_with_cache(&a, &b, &cfg, &cache);
        assert_eq!(as_set(&cold.pairs), as_set(&warm.pairs));
        assert!(cold.buffer.unwrap().misses > 0, "first run faults pages in");
        let warm_stats = warm.buffer.unwrap();
        assert_eq!(
            warm_stats.misses, 0,
            "warm cache serves everything: {warm_stats:?}"
        );
        assert!(warm_stats.requests() > 0);
    }

    #[test]
    fn cancelled_token_aborts_join() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let token = CancelToken::new();
        token.cancel();
        let res = run_native_join_cancellable(&a, &b, &NativeConfig::new(4), &token);
        assert_eq!(res.err(), Some(Cancelled));
    }

    #[test]
    fn expired_deadline_aborts_join() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let token = CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let res = run_native_join_cancellable(&a, &b, &NativeConfig::new(4), &token);
        assert_eq!(res.err(), Some(Cancelled));
    }

    #[test]
    fn live_token_join_matches_uncancelled() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_refined(&a, &b));
        let token = CancelToken::with_deadline(
            std::time::Instant::now() + std::time::Duration::from_secs(600),
        );
        let res = run_native_join_cancellable(&a, &b, &NativeConfig::new(4), &token)
            .expect("far deadline never fires");
        assert_eq!(as_set(&res.pairs), want);
    }

    #[test]
    fn global_buffer_sees_remote_hits() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let total_pages = a.pages().len() + b.pages().len();
        let mut cfg = NativeConfig::buffered(4, BufferConfig::global(total_pages * 2));
        cfg.refine = false;
        // Static assignment without stealing: every worker must execute its
        // own tasks, so cross-worker page sharing cannot be raced away by a
        // single fast worker draining the whole injector.
        cfg.assignment = Assignment::StaticRoundRobin;
        cfg.work_stealing = false;
        let res = run_native_join(&a, &b, &cfg);
        let stats = res.buffer.unwrap();
        // With a cache big enough to hold everything, each page is fetched
        // once; another worker's first touch of it scores a remote hit (its
        // repeats are absorbed by that worker's L1 front).
        assert!(stats.hits_remote > 0, "4 workers sharing pages: {stats:?}");
        assert!(stats.misses as usize <= total_pages);
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_refined(&a, &b));
        let plan = Arc::new(FaultPlan::new(7).with_transient(0.3, 2));
        let ctl = RunControl::default()
            .with_fault(plan.clone())
            .with_retry(RetryPolicy::attempts(4));
        let res = try_run_native_join(&a, &b, &NativeConfig::new(4), &ctl)
            .expect("transient faults must be retried away");
        assert_eq!(as_set(&res.pairs), want);
        let stats = res.buffer.expect("fault run forces a buffer");
        assert!(plan.transient_injected() > 0, "plan injected nothing");
        assert_eq!(
            stats.retries,
            plan.transient_injected(),
            "every injected transient shows up as exactly one retry"
        );
    }

    #[test]
    fn unrecoverable_faults_abort_with_typed_error() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let plan = Arc::new(FaultPlan::new(11).with_flip(1.0));
        let ctl = RunControl::default().with_fault(plan);
        let err = try_run_native_join(&a, &b, &NativeConfig::new(4), &ctl)
            .expect_err("every page corrupt: join must fail");
        match err {
            NativeError::Storage(e) => {
                assert!(e.error.is_corrupt(), "expected corruption: {}", e.error);
                assert!(e.failed_tasks >= 1);
            }
            other => panic!("expected a storage error, got {other}"),
        }
    }

    /// A panic inside one morsel (here: an injected one-shot panic on a
    /// page fetch) must not take down the run's other morsels: the hit
    /// worker catches the unwind and keeps draining queues, the caches'
    /// poison-recovering locks and fill guard keep the other workers
    /// unblocked, and the driver reports a typed error instead of merging
    /// a silently incomplete result.
    #[test]
    fn worker_panic_is_contained_and_other_morsels_complete() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        // Page 0 is the root, which only the (unfaulted) phase-1 descent
        // reads; the last page is the rightmost leaf, which some morsel is
        // certain to fetch through the cache.
        let last_leaf = (a.pages().len() - 1) as u32;
        let plan = Arc::new(FaultPlan::new(5).with_panic_page(last_leaf));
        let ctl = RunControl::default().with_fault(plan);
        let err = try_run_native_join(&a, &b, &NativeConfig::new(4), &ctl)
            .expect_err("a panicked morsel cannot yield a full result");
        match err {
            NativeError::WorkerPanic {
                message,
                completed_morsels,
                morsels,
            } => {
                assert!(message.contains("injected panic"), "message: {message}");
                assert!(morsels > 1, "plan must have several morsels to contain");
                assert_eq!(
                    completed_morsels,
                    morsels - 1,
                    "exactly the panicked morsel is lost; the rest complete"
                );
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }

    #[test]
    fn fault_free_control_matches_plain_join() {
        let a = tree(400, 0.0);
        let b = tree(400, 0.4);
        let want = as_set(&join_refined(&a, &b));
        let res = try_run_native_join(&a, &b, &NativeConfig::new(2), &RunControl::default())
            .expect("no faults, no cancel");
        assert_eq!(as_set(&res.pairs), want);
        assert!(res.buffer.is_none(), "no fault plan: no forced buffer");
    }

    #[test]
    fn task_traces_reconcile_with_run_aggregates() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let mut cfg = NativeConfig::buffered(4, BufferConfig::global(64));
        cfg.refine = false;
        let res = try_run_native_join(&a, &b, &cfg, &RunControl::default()).unwrap();
        assert!(res.tasks > 0);
        assert!(res.morsels > 0);
        assert_eq!(
            res.task_traces.len(),
            res.morsels,
            "exactly one trace per morsel"
        );
        let task_sum: u64 = res.task_traces.iter().map(|t| u64::from(t.tasks)).sum();
        assert!(
            task_sum as usize >= res.tasks,
            "morsels cover every phase-1 task ({task_sum} vs {})",
            res.tasks
        );
        assert_eq!(
            res.steals,
            res.task_traces
                .iter()
                .filter(|t| t.origin == TaskOrigin::Steal)
                .count() as u64,
            "steal counter equals the number of Steal-origin traces"
        );
        let cands: u64 = res.task_traces.iter().map(|t| t.candidates).sum();
        assert_eq!(cands, res.candidates, "candidates attribute fully");
        let stats = res.buffer.expect("buffered run");
        let pages: u64 = res.task_traces.iter().map(|t| t.pages).sum();
        assert_eq!(pages, stats.requests(), "page requests attribute fully");
        let hits: u64 = res
            .task_traces
            .iter()
            .map(|t| t.hits_local + t.hits_l1 + t.hits_remote)
            .sum();
        assert_eq!(hits, stats.hits_local + stats.hits_l1 + stats.hits_remote);
        let l1: u64 = res.task_traces.iter().map(|t| t.hits_l1).sum();
        assert_eq!(l1, stats.hits_l1, "L1 front hits attribute fully");
        assert!(
            stats.hits_l1 > 0,
            "a buffered join's repeat parent-page reads must hit the L1 front"
        );
        let misses: u64 = res.task_traces.iter().map(|t| t.misses).sum();
        assert_eq!(misses, stats.misses);
    }

    #[test]
    fn traced_join_emits_one_span_per_task_and_validates() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let mut cfg = NativeConfig::buffered(3, BufferConfig::global(64));
        cfg.refine = false;
        let sink = psj_obs::TraceSink::new(1 << 20);
        let ctl = RunControl::default().with_trace(Arc::clone(&sink));
        let res = try_run_native_join(&a, &b, &cfg, &ctl).unwrap();
        assert!(res.tasks > 0);
        let mut buf = Vec::new();
        sink.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let summary = psj_obs::validate_jsonl(&text).expect("trace must validate");
        assert!(summary.spans > 0);
        let task_spans = text
            .lines()
            .filter(|l| l.contains("\"name\":\"task\""))
            .count();
        assert_eq!(
            task_spans, res.morsels,
            "{} task spans for {} morsels",
            task_spans, res.morsels
        );
        assert_eq!(task_spans, res.task_traces.len());
        assert_eq!(sink.dropped(), 0);
    }

    /// The tentpole guarantee: at every thread count, under every
    /// assignment, the merged output is *byte-identical* (same pairs, same
    /// order) to the sequential oracle — not merely set-equal.
    #[test]
    fn pair_output_is_byte_identical_to_sequential_oracle() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let want = join_refined(&a, &b);
        for threads in [1, 2, 4, 8] {
            for assignment in [
                Assignment::Dynamic,
                Assignment::StaticRange,
                Assignment::StaticRoundRobin,
            ] {
                let mut cfg = NativeConfig::new(threads);
                cfg.assignment = assignment;
                let res = run_native_join(&a, &b, &cfg);
                assert_eq!(
                    res.pairs, want,
                    "byte order diverged: {threads} threads, {assignment:?}"
                );
            }
        }
    }

    /// Steal policies change who runs what, never what comes out.
    #[test]
    fn steal_policies_do_not_change_output() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = join_refined(&a, &b);
        for steal in [
            StealPolicy::Busiest,
            StealPolicy::RoundRobin,
            StealPolicy::Seeded,
        ] {
            let mut cfg = NativeConfig::new(4);
            cfg.assignment = Assignment::StaticRange;
            cfg.steal = steal;
            cfg.steal_seed = 17;
            let res = run_native_join(&a, &b, &cfg);
            assert_eq!(res.pairs, want, "{steal:?}");
        }
    }
}
