//! Native multithreaded executor: the same three-phase parallel join run on
//! real OS threads.
//!
//! While [`crate::sim`] reproduces the paper's *evaluation* (virtual time,
//! KSR1 cost model), this executor is what a downstream user calls to
//! actually join two indexed relations fast: `n` worker threads drain the
//! task set, descend the trees with the same kernel, refine candidates with
//! the *exact* polyline geometry from the clusters, and steal work from each
//! other when they run dry (crossbeam deques — the moral equivalent of the
//! paper's task reassignment, without the cost model).

use crate::assign::{static_range, static_round_robin, Assignment};
use crate::task::{create_tasks, expand_pair, Candidate, KernelScratch, TaskPair};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use psj_rtree::PagedTree;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Configuration of a native parallel join.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NativeConfig {
    /// Number of worker threads.
    pub num_threads: usize,
    /// Task assignment strategy (dynamic = shared injector; static
    /// strategies pre-partition, with stealing providing the reassignment).
    pub assignment: Assignment,
    /// Whether idle workers steal from busy ones.
    pub work_stealing: bool,
    /// Phase 1 descends until at least `min_tasks_factor × num_threads`
    /// tasks exist.
    pub min_tasks_factor: usize,
    /// `true`: run the exact-geometry refinement step on every candidate
    /// (objects without stored geometry pass through). `false`: return the
    /// filter-step candidates.
    pub refine: bool,
}

impl NativeConfig {
    /// Dynamic assignment with stealing — the recommended configuration.
    pub fn new(num_threads: usize) -> Self {
        NativeConfig {
            num_threads,
            assignment: Assignment::Dynamic,
            work_stealing: true,
            min_tasks_factor: 8,
            refine: true,
        }
    }
}

/// Result of a native parallel join.
#[derive(Debug, Clone)]
pub struct NativeResult {
    /// Joined `(oid_a, oid_b)` pairs: exact results when `refine` was set,
    /// filter-step candidates otherwise. Order is unspecified (parallel).
    pub pairs: Vec<(u64, u64)>,
    /// Number of filter-step candidates (before refinement).
    pub candidates: u64,
    /// Node pairs visited across all threads.
    pub node_pairs: u64,
    /// Wall-clock duration of the parallel phase.
    pub elapsed: std::time::Duration,
    /// Number of tasks created in phase 1.
    pub tasks: usize,
    /// Successful steals across all workers.
    pub steals: u64,
}

/// Runs the join on real threads.
pub fn run_native_join(a: &PagedTree, b: &PagedTree, cfg: &NativeConfig) -> NativeResult {
    assert!(cfg.num_threads > 0, "need at least one thread");
    let tc = create_tasks(a, b, cfg.min_tasks_factor * cfg.num_threads);
    let tasks = tc.tasks.len();

    let injector: Injector<TaskPair> = Injector::new();
    let workers: Vec<Worker<TaskPair>> =
        (0..cfg.num_threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<TaskPair>> = workers.iter().map(|w| w.stealer()).collect();

    match cfg.assignment {
        Assignment::Dynamic => {
            for t in &tc.tasks {
                injector.push(*t);
            }
        }
        Assignment::StaticRange => {
            for (w, load) in workers.iter().zip(static_range(&tc.tasks, cfg.num_threads)) {
                // LIFO worker: push in reverse so pops follow sweep order.
                for t in load.into_iter().rev() {
                    w.push(t);
                }
            }
        }
        Assignment::StaticRoundRobin => {
            for (w, load) in workers.iter().zip(static_round_robin(&tc.tasks, cfg.num_threads)) {
                for t in load.into_iter().rev() {
                    w.push(t);
                }
            }
        }
    }

    let candidates = AtomicU64::new(0);
    let node_pairs = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let active = AtomicUsize::new(cfg.num_threads);
    let start = Instant::now();

    let mut results: Vec<Vec<(u64, u64)>> = Vec::with_capacity(cfg.num_threads);
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.num_threads);
        for (id, worker) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let candidates = &candidates;
            let node_pairs = &node_pairs;
            let steals = &steals;
            let active = &active;
            handles.push(scope.spawn(move |_| {
                run_worker(
                    id, a, b, cfg, worker, injector, stealers, candidates, node_pairs, steals,
                    active,
                )
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope failed");
    let elapsed = start.elapsed();

    let mut pairs = Vec::with_capacity(results.iter().map(Vec::len).sum());
    for mut r in results {
        pairs.append(&mut r);
    }
    NativeResult {
        pairs,
        candidates: candidates.load(Ordering::Relaxed),
        node_pairs: node_pairs.load(Ordering::Relaxed),
        elapsed,
        tasks,
        steals: steals.load(Ordering::Relaxed),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    id: usize,
    a: &PagedTree,
    b: &PagedTree,
    cfg: &NativeConfig,
    worker: Worker<TaskPair>,
    injector: &Injector<TaskPair>,
    stealers: &[Stealer<TaskPair>],
    candidates: &AtomicU64,
    node_pairs: &AtomicU64,
    steals: &AtomicU64,
    active: &AtomicUsize,
) -> Vec<(u64, u64)> {
    let mut scratch = KernelScratch::default();
    let mut children: Vec<TaskPair> = Vec::new();
    let mut cands: Vec<Candidate> = Vec::new();
    let mut out: Vec<(u64, u64)> = Vec::new();
    let mut local_candidates = 0u64;
    let mut local_pairs = 0u64;

    'outer: loop {
        // Local work first, then the shared queue, then stealing.
        let pair = worker.pop().or_else(|| {
            loop {
                match injector.steal_batch_and_pop(&worker) {
                    Steal::Success(t) => return Some(t),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
            if !cfg.work_stealing {
                return None;
            }
            // Steal half a victim's deque, round-robin from our own id.
            for k in 1..stealers.len() {
                let v = (id + k) % stealers.len();
                loop {
                    match stealers[v].steal_batch_and_pop(&worker) {
                        Steal::Success(t) => {
                            steals.fetch_add(1, Ordering::Relaxed);
                            return Some(t);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
            }
            None
        });

        let Some(pair) = pair else {
            // Nothing found: deregister; if others are still active they may
            // still produce work, so spin-wait politely and re-check.
            let remaining = active.fetch_sub(1, Ordering::SeqCst) - 1;
            if remaining == 0 {
                break 'outer;
            }
            loop {
                std::thread::yield_now();
                if active.load(Ordering::SeqCst) == 0 {
                    break 'outer;
                }
                let has_work = !injector.is_empty()
                    || (cfg.work_stealing && stealers.iter().any(|s| !s.is_empty()));
                if has_work {
                    active.fetch_add(1, Ordering::SeqCst);
                    continue 'outer;
                }
            }
        };

        local_pairs += 1;
        let na = a.node(pair.a);
        let nb = b.node(pair.b);
        children.clear();
        cands.clear();
        expand_pair(na, nb, &pair, &mut scratch, &mut children, &mut cands);
        for c in children.drain(..).rev() {
            worker.push(c);
        }
        for c in &cands {
            local_candidates += 1;
            let ea = a.node(c.page_a).data_entries()[c.idx_a as usize];
            let eb = b.node(c.page_b).data_entries()[c.idx_b as usize];
            if cfg.refine {
                let ga = a.clusters().geometry(ea.geom.page, ea.geom.slot);
                let gb = b.clusters().geometry(eb.geom.page, eb.geom.slot);
                let hit = match (ga, gb) {
                    (Some(ga), Some(gb)) => ga.intersects(gb),
                    _ => true,
                };
                if hit {
                    out.push((ea.oid, eb.oid));
                }
            } else {
                out.push((ea.oid, eb.oid));
            }
        }
    }

    candidates.fetch_add(local_candidates, Ordering::Relaxed);
    node_pairs.fetch_add(local_pairs, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{join_candidates, join_refined};
    use psj_geom::{Point, Polyline, Rect};
    use psj_rtree::RTree;
    use std::collections::BTreeSet;

    fn tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        let mut geoms = Vec::new();
        for i in 0..n {
            let x = (i % 30) as f64 + offset;
            let y = (i / 30) as f64 + offset;
            t.insert(Rect::new(x, y, x + 1.1, y + 1.1), i as u64);
            geoms.push(Polyline::new(vec![Point::new(x, y), Point::new(x + 1.1, y + 1.1)]));
        }
        PagedTree::freeze(&t, move |oid| Some(geoms[oid as usize].clone()))
    }

    fn as_set(v: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
        v.iter().copied().collect()
    }

    #[test]
    fn filter_step_matches_sequential() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        for threads in [1, 2, 4, 8] {
            let mut cfg = NativeConfig::new(threads);
            cfg.refine = false;
            let res = run_native_join(&a, &b, &cfg);
            assert_eq!(as_set(&res.pairs), want, "{threads} threads");
            assert_eq!(res.candidates as usize, res.pairs.len());
        }
    }

    #[test]
    fn refined_matches_sequential_refined() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_refined(&a, &b));
        let res = run_native_join(&a, &b, &NativeConfig::new(4));
        assert_eq!(as_set(&res.pairs), want);
        assert!(res.pairs.len() <= res.candidates as usize);
    }

    #[test]
    fn static_assignments_with_stealing_are_correct() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        for assignment in [Assignment::StaticRange, Assignment::StaticRoundRobin] {
            let cfg = NativeConfig {
                num_threads: 4,
                assignment,
                work_stealing: true,
                min_tasks_factor: 4,
                refine: false,
            };
            let res = run_native_join(&a, &b, &cfg);
            assert_eq!(as_set(&res.pairs), want, "{assignment:?}");
        }
    }

    #[test]
    fn static_without_stealing_is_correct() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        let cfg = NativeConfig {
            num_threads: 3,
            assignment: Assignment::StaticRange,
            work_stealing: false,
            min_tasks_factor: 2,
            refine: false,
        };
        let res = run_native_join(&a, &b, &cfg);
        assert_eq!(as_set(&res.pairs), want);
    }

    #[test]
    fn empty_join_terminates() {
        let a = tree(50, 0.0);
        let b = tree(50, 10_000.0);
        let res = run_native_join(&a, &b, &NativeConfig::new(4));
        assert!(res.pairs.is_empty());
        assert_eq!(res.tasks, 0);
    }
}
