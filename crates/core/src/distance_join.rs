//! Distance joins: all pairs of objects within distance `eps`.
//!
//! A natural companion of the intersection join (and of the neighbor
//! queries the paper's §5 framework calls for): "find all streets within
//! 100 m of a river". The filter step descends both R\*-trees pruning node
//! pairs whose MBR distance exceeds `eps`; candidates are refined with the
//! exact polyline distance from the geometry clusters.
//!
//! The MBR filter uses the L∞-style test `rect_distance(a, b) ≤ eps`
//! (Euclidean MBR distance) which lower-bounds the exact geometry distance,
//! so no result can be lost.

use psj_geom::rect_distance;
use psj_rtree::{NodeKind, PagedTree};
use psj_store::PageId;

/// All `(oid_a, oid_b)` pairs whose *MBRs* are within `eps` (the filter
/// step of the distance join).
pub fn distance_join_candidates(a: &PagedTree, b: &PagedTree, eps: f64) -> Vec<(u64, u64)> {
    assert!(eps >= 0.0, "eps must be non-negative");
    let mut out = Vec::new();
    traverse(a, b, eps, &mut |oa, ob| out.push((oa, ob)));
    out
}

/// All `(oid_a, oid_b)` pairs whose *exact geometry* comes within `eps`.
/// Candidates whose geometry is missing on either side are kept
/// conservatively.
pub fn distance_join(a: &PagedTree, b: &PagedTree, eps: f64) -> Vec<(u64, u64)> {
    assert!(eps >= 0.0, "eps must be non-negative");
    let mut out = Vec::new();
    let mut refine = |oa: u64, ob: u64| {
        out.push((oa, ob));
    };
    // Collect candidates with their geometry refs, refining inline.
    let mut candidates = Vec::new();
    traverse_entries(a, b, eps, &mut |ea, eb| candidates.push((ea, eb)));
    for (ea, eb) in candidates {
        let ga = a.clusters().geometry(ea.geom.page, ea.geom.slot);
        let gb = b.clusters().geometry(eb.geom.page, eb.geom.slot);
        let hit = match (ga, gb) {
            (Some(ga), Some(gb)) => psj_geom::polylines_within(ga, gb, eps),
            _ => true,
        };
        if hit {
            refine(ea.oid, eb.oid);
        }
    }
    out
}

fn traverse(a: &PagedTree, b: &PagedTree, eps: f64, emit: &mut impl FnMut(u64, u64)) {
    traverse_entries(a, b, eps, &mut |ea, eb| emit(ea.oid, eb.oid));
}

fn traverse_entries(
    a: &PagedTree,
    b: &PagedTree,
    eps: f64,
    emit: &mut impl FnMut(psj_rtree::DataEntry, psj_rtree::DataEntry),
) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    let mut stack: Vec<(PageId, PageId)> = vec![(a.root(), b.root())];
    // Reused row-scan output of the SoA `filter_within` passes below.
    let mut row = Vec::new();
    while let Some((pa, pb)) = stack.pop() {
        let na = a.node(pa);
        let nb = b.node(pb);
        match (&na.kind, &nb.kind) {
            (NodeKind::Dir(ea), NodeKind::Dir(eb)) => {
                let soa_b = nb.soa_mbrs();
                for x in ea {
                    soa_b.filter_within(&x.mbr, eps, &mut row);
                    for &j in &row {
                        stack.push((PageId(x.child), PageId(eb[j as usize].child)));
                    }
                }
            }
            (NodeKind::Dir(ea), NodeKind::Leaf(_)) => {
                let mb = nb.mbr();
                for x in ea {
                    if rect_distance(&x.mbr, &mb) <= eps {
                        stack.push((PageId(x.child), pb));
                    }
                }
            }
            (NodeKind::Leaf(_), NodeKind::Dir(eb)) => {
                let ma = na.mbr();
                for y in eb {
                    if rect_distance(&ma, &y.mbr) <= eps {
                        stack.push((pa, PageId(y.child)));
                    }
                }
            }
            (NodeKind::Leaf(ea), NodeKind::Leaf(eb)) => {
                let soa_b = nb.soa_mbrs();
                for x in ea {
                    soa_b.filter_within(&x.mbr, eps, &mut row);
                    for &j in &row {
                        emit(*x, eb[j as usize]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psj_geom::{Point, Polyline, Rect};
    use psj_rtree::RTree;

    fn tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        let mut geoms = Vec::new();
        for i in 0..n {
            let x = (i % 25) as f64 * 2.0 + offset;
            let y = (i / 25) as f64 * 2.0 + offset;
            t.insert(Rect::new(x, y, x + 0.5, y + 0.5), i as u64);
            geoms.push(Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 0.5, y + 0.5),
            ]));
        }
        PagedTree::freeze(&t, move |oid| Some(geoms[oid as usize].clone()))
    }

    #[test]
    fn candidates_match_brute_force() {
        let a = tree(300, 0.0);
        let b = tree(300, 0.7);
        for eps in [0.0, 0.3, 1.0, 5.0] {
            let mut got = distance_join_candidates(&a, &b, eps);
            got.sort_unstable();
            let all_a = a.window_query(&a.mbr());
            let all_b = b.window_query(&b.mbr());
            let mut want = Vec::new();
            for ea in &all_a {
                for eb in &all_b {
                    if rect_distance(&ea.mbr, &eb.mbr) <= eps {
                        want.push((ea.oid, eb.oid));
                    }
                }
            }
            want.sort_unstable();
            assert_eq!(got, want, "eps={eps}");
        }
    }

    #[test]
    fn exact_join_matches_brute_force_geometry() {
        let a = tree(200, 0.0);
        let b = tree(200, 0.7);
        let eps = 0.4;
        let mut got = distance_join(&a, &b, eps);
        got.sort_unstable();
        let all_a = a.window_query(&a.mbr());
        let all_b = b.window_query(&b.mbr());
        let mut want = Vec::new();
        for ea in &all_a {
            for eb in &all_b {
                let ga = a.clusters().geometry(ea.geom.page, ea.geom.slot).unwrap();
                let gb = b.clusters().geometry(eb.geom.page, eb.geom.slot).unwrap();
                if psj_geom::polylines_within(ga, gb, eps) {
                    want.push((ea.oid, eb.oid));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn eps_zero_contains_intersection_join() {
        // eps = 0 distance join ⊇ intersection join (touching counts).
        let a = tree(200, 0.0);
        let b = tree(200, 0.25);
        let dist: std::collections::BTreeSet<_> = distance_join(&a, &b, 0.0).into_iter().collect();
        for pair in crate::seq::join_refined(&a, &b) {
            assert!(
                dist.contains(&pair),
                "intersection pair {pair:?} missing at eps=0"
            );
        }
    }

    #[test]
    fn growing_eps_is_monotone() {
        let a = tree(150, 0.0);
        let b = tree(150, 0.6);
        let mut last = 0usize;
        for eps in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let count = distance_join_candidates(&a, &b, eps).len();
            assert!(count >= last, "eps={eps}: {count} < {last}");
            last = count;
        }
    }

    #[test]
    fn empty_trees() {
        let a = tree(50, 0.0);
        let empty = PagedTree::freeze(&RTree::new(), |_| None);
        assert!(distance_join_candidates(&a, &empty, 10.0).is_empty());
        assert!(distance_join_candidates(&empty, &a, 10.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_eps_rejected() {
        let a = tree(10, 0.0);
        let _ = distance_join(&a, &a, -1.0);
    }
}
