//! Sequential spatial join (the [BKS 93] algorithm, paper §2.2).
//!
//! Synchronized depth-first traversal of two R\*-trees with the two tuning
//! techniques: search-space restriction and plane-sweep pair computation.
//! This is both the baseline (`t(1)` semantics for the speed-up figures) and
//! the correctness oracle for the parallel executors.

use crate::task::{create_tasks, expand_pair, Candidate, KernelScratch, TaskPair};
use psj_rtree::{NodeAccess, PagedTree};
use serde::{Deserialize, Serialize};

/// Result of a sequential join.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeqJoinResult {
    /// Candidate pairs `(oid_a, oid_b)` of the filter step, in the order the
    /// traversal produced them (local plane-sweep order).
    pub candidates: Vec<(u64, u64)>,
    /// Number of node pairs visited.
    pub node_pairs: u64,
    /// Number of page reads a cold single-page-buffer traversal would issue
    /// (every distinct node access of the traversal, path buffer excluded).
    pub node_accesses: u64,
}

/// Runs the filter step sequentially and returns all candidate pairs.
pub fn join_candidates(a: &PagedTree, b: &PagedTree) -> SeqJoinResult {
    let tc = create_tasks(a, b, 1);
    let mut scratch = KernelScratch::default();
    let mut stack: Vec<TaskPair> = Vec::new();
    let mut children: Vec<TaskPair> = Vec::new();
    let mut cands: Vec<Candidate> = Vec::new();
    let mut out = Vec::new();
    let mut node_pairs = 0u64;
    // The oracle reads nodes through the same borrowing accessor surface
    // the buffered executors use — one read per (page, step), no aliasing
    // assumptions beyond what `NodeAccess` grants.
    let (mut acc_a, mut acc_b) = (a, b);

    // Tasks are executed in plane-sweep order; within a task the traversal
    // is depth-first, again in sweep order.
    for task in tc.tasks.iter() {
        stack.push(*task);
        while let Some(pair) = stack.pop() {
            node_pairs += 1;
            let na = acc_a.read(pair.a).expect("in-memory access is infallible");
            let nb = acc_b.read(pair.b).expect("in-memory access is infallible");
            children.clear();
            let before = cands.len();
            expand_pair(na, nb, &pair, &mut scratch, &mut children, &mut cands);
            // Depth-first in sweep order: push in reverse.
            stack.extend(children.drain(..).rev());
            if cands.len() > before {
                // All candidates from one expansion share (page_a, page_b):
                // resolve each leaf once for the whole run, not per candidate.
                let ea = na.data_entries();
                let eb = nb.data_entries();
                for c in &cands[before..] {
                    out.push((ea[c.idx_a as usize].oid, eb[c.idx_b as usize].oid));
                }
            }
            cands.truncate(before);
        }
    }
    SeqJoinResult {
        candidates: out,
        node_pairs,
        node_accesses: node_pairs * 2,
    }
}

/// Runs the full join sequentially: filter step plus *exact* refinement
/// using the polyline geometry stored in the trees' clusters. Candidates
/// whose geometry is missing on either side are kept conservatively (a
/// candidate can only be refuted by exact geometry).
pub fn join_refined(a: &PagedTree, b: &PagedTree) -> Vec<(u64, u64)> {
    let tc = create_tasks(a, b, 1);
    let mut scratch = KernelScratch::default();
    let mut stack: Vec<TaskPair> = tc.tasks.iter().rev().copied().collect();
    let mut children = Vec::new();
    let mut cands: Vec<Candidate> = Vec::new();
    let mut out = Vec::new();
    let (mut acc_a, mut acc_b) = (a, b);
    while let Some(pair) = stack.pop() {
        let na = acc_a.read(pair.a).expect("in-memory access is infallible");
        let nb = acc_b.read(pair.b).expect("in-memory access is infallible");
        children.clear();
        cands.clear();
        expand_pair(na, nb, &pair, &mut scratch, &mut children, &mut cands);
        stack.extend(children.drain(..).rev());
        if cands.is_empty() {
            continue;
        }
        // One leaf resolution per (page_a, page_b) run, as above.
        let entries_a = na.data_entries();
        let entries_b = nb.data_entries();
        for c in &cands {
            let ea = entries_a[c.idx_a as usize];
            let eb = entries_b[c.idx_b as usize];
            let ga = a.clusters().geometry(ea.geom.page, ea.geom.slot);
            let gb = b.clusters().geometry(eb.geom.page, eb.geom.slot);
            let hit = match (ga, gb) {
                (Some(ga), Some(gb)) => ga.intersects(gb),
                _ => true, // no exact geometry: cannot refute the candidate
            };
            if hit {
                out.push((ea.oid, eb.oid));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psj_geom::{Point, Polyline, Rect};
    use psj_rtree::RTree;

    fn diag_tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        let mut geoms = Vec::new();
        for i in 0..n {
            let x = (i % 25) as f64 + offset;
            let y = (i / 25) as f64 + offset;
            t.insert(Rect::new(x, y, x + 1.0, y + 1.0), i as u64);
            geoms.push(Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 1.0, y + 1.0),
            ]));
        }
        PagedTree::freeze(&t, move |oid| Some(geoms[oid as usize].clone()))
    }

    #[test]
    fn candidates_match_brute_force() {
        let a = diag_tree(400, 0.0);
        let b = diag_tree(400, 0.5);
        let res = join_candidates(&a, &b);
        let mut got = res.candidates.clone();
        got.sort_unstable();
        let mut want = Vec::new();
        for ea in a.window_query(&a.mbr()) {
            for eb in b.window_query(&b.mbr()) {
                if ea.mbr.intersects(&eb.mbr) {
                    want.push((ea.oid, eb.oid));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(res.node_pairs > 0);
    }

    #[test]
    fn no_duplicate_candidates() {
        let a = diag_tree(400, 0.0);
        let b = diag_tree(400, 0.5);
        let res = join_candidates(&a, &b);
        let mut sorted = res.candidates.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len());
    }

    #[test]
    fn self_join_contains_diagonal() {
        let a = diag_tree(200, 0.0);
        let res = join_candidates(&a, &a);
        for i in 0..200u64 {
            assert!(res.candidates.contains(&(i, i)), "missing ({i},{i})");
        }
    }

    #[test]
    fn refinement_filters_false_hits() {
        // Diagonal lines in adjacent unit cells: MBRs of horizontally
        // adjacent cells touch, but the diagonals only meet when the cells
        // actually share the diagonal's endpoint corner.
        let a = diag_tree(400, 0.0);
        let b = diag_tree(400, 0.5);
        let filter = join_candidates(&a, &b).candidates.len();
        let refined = join_refined(&a, &b).len();
        assert!(refined <= filter);
        assert!(refined > 0, "refinement must keep true intersections");
        // Exactness: every refined pair's geometry truly intersects.
        for (oa, ob) in join_refined(&a, &b) {
            let ea = a
                .window_query(&a.mbr())
                .into_iter()
                .find(|e| e.oid == oa)
                .unwrap();
            let ga = a.clusters().geometry(ea.geom.page, ea.geom.slot).unwrap();
            let eb = b
                .window_query(&b.mbr())
                .into_iter()
                .find(|e| e.oid == ob)
                .unwrap();
            let gb = b.clusters().geometry(eb.geom.page, eb.geom.slot).unwrap();
            assert!(ga.intersects(gb));
        }
    }

    #[test]
    fn empty_join_for_disjoint_maps() {
        let a = diag_tree(100, 0.0);
        let b = diag_tree(100, 500.0);
        assert!(join_candidates(&a, &b).candidates.is_empty());
        assert!(join_refined(&a, &b).is_empty());
    }
}
