//! Parallel processing of spatial joins using R\*-trees.
//!
//! This crate implements Brinkhoff/Kriegel/Seeger, *"Parallel Processing of
//! Spatial Joins Using R-trees"* (ICDE 1996): the three-phase parallel
//! filter step — **task creation** ([`task::create_tasks`]), **task
//! assignment** ([`assign`]) and **parallel task execution** — together with
//! the paper's design dimensions:
//!
//! * buffer organization: local vs. global LRU buffers ([`sim::BufferOrg`]),
//! * task assignment: static range / static round-robin / dynamic
//!   ([`assign::Assignment`]),
//! * load balancing by task reassignment ([`sim::Reassignment`],
//!   [`sim::VictimSelection`]).
//!
//! Two executors run the identical join kernel:
//!
//! * [`sim::run_sim_join`] — a deterministic discrete-event simulation of the
//!   KSR1-style platform with the paper's published cost model
//!   ([`cost::CostModel`]); this regenerates the paper's figures;
//! * [`native::run_native_join`] — real threads, real geometry refinement;
//!   this is the executor an application uses.
//!
//! The sequential [BKS 93] join ([`seq`]) serves as baseline and oracle.
//!
//! ```
//! use psj_core::{native::{run_native_join, NativeConfig}};
//! use psj_rtree::{PagedTree, RTree};
//! use psj_geom::Rect;
//!
//! let mut ta = RTree::new();
//! let mut tb = RTree::new();
//! for i in 0..100u64 {
//!     let x = (i % 10) as f64;
//!     let y = (i / 10) as f64;
//!     ta.insert(Rect::new(x, y, x + 1.0, y + 1.0), i);
//!     tb.insert(Rect::new(x + 0.5, y + 0.5, x + 1.5, y + 1.5), i);
//! }
//! let a = PagedTree::freeze(&ta, |_| None);
//! let b = PagedTree::freeze(&tb, |_| None);
//! let mut cfg = NativeConfig::new(4);
//! cfg.refine = false; // no exact geometry stored in this toy example
//! let result = run_native_join(&a, &b, &cfg);
//! assert!(!result.pairs.is_empty());
//! ```

#![warn(missing_docs)]

pub mod assign;
pub mod cancel;
pub mod cost;
pub mod deque;
pub mod distance_join;
pub mod estimate;
pub mod metrics;
pub mod morsel;
pub mod native;
pub mod partition;
pub mod queries;
pub mod seq;
pub mod shnothing;
pub mod sim;
pub mod task;

pub use assign::Assignment;
pub use cancel::{CancelToken, Cancelled};
pub use cost::{CandidateEstimator, CostModel, Platform, TreeProfile};
pub use distance_join::{distance_join, distance_join_candidates};
pub use estimate::{estimate_join, JoinEstimate};
pub use metrics::{JoinMetrics, TaskOrigin, TaskTrace};
pub use morsel::{morselize, Morsel, MorselOptions, MorselPlan, StealPolicy};
pub use native::{
    run_native_join, run_native_join_cancellable, run_native_join_with_cache, try_run_native_join,
    try_run_native_join_with_cache, BufferConfig, JoinError, NativeConfig, NativeError,
    NativeResult, RunControl,
};
pub use partition::{
    plan_partition, run_join, run_partition_join, select_engine, try_run_join,
    try_run_partition_join, JoinEngine, PartitionInput, PartitionPlan, RectItem,
};
pub use queries::{
    batched_window_queries, batched_window_queries_cancellable, parallel_nn_queries,
    parallel_window_queries,
};
pub use seq::{join_candidates, join_refined, SeqJoinResult};
pub use shnothing::{
    run_sharded_join, Network, Placement, ShardedConfig, ShardedMetrics, ShardedResult,
};
pub use sim::{run_sim_join, BufferOrg, Reassignment, SimConfig, SimResult, VictimSelection};
pub use task::{create_tasks, expand_pair, Candidate, KernelScratch, TaskPair};
