//! Task assignment strategies (paper §3.1 and §3.3, Figures 2–4).
//!
//! * **Static range** (`lsr`'s assignment): the tasks, in local plane-sweep
//!   order, are cut into `n` contiguous ranges — spatially adjacent pairs go
//!   to the *same* processor, maximizing each local buffer's locality.
//! * **Static round-robin** (`gsrr`'s assignment): tasks are dealt out like
//!   cards — spatially adjacent pairs go to *different* processors so they
//!   are in memory at roughly the same time, maximizing global-buffer reuse.
//! * **Dynamic** (`gd`'s assignment): tasks stay in a shared queue and are
//!   handed out one at a time on demand.

use serde::{Deserialize, Serialize};

/// Which task-assignment strategy an executor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Assignment {
    /// Contiguous ranges of the plane-sweep order (one per processor).
    StaticRange,
    /// Round-robin over the plane-sweep order.
    StaticRoundRobin,
    /// Shared task queue, task-at-a-time.
    Dynamic,
}

impl Assignment {
    /// Short name used in experiment output (`lsr`/`gsrr`/`gd` pair with the
    /// buffer organizations in the paper's figures).
    pub fn short(&self) -> &'static str {
        match self {
            Assignment::StaticRange => "range",
            Assignment::StaticRoundRobin => "round-robin",
            Assignment::Dynamic => "dynamic",
        }
    }
}

/// Splits `tasks` (already in plane-sweep order) into `n` contiguous
/// work loads: the first `m mod n` processors receive `⌈m/n⌉` tasks, the
/// rest `⌊m/n⌋` (paper §3.1).
///
/// Generic over the unit of assignment: the executors deal both raw
/// [`crate::task::TaskPair`]s (simulator) and whole morsels (native) this
/// way.
pub fn static_range<T: Clone>(tasks: &[T], n: usize) -> Vec<Vec<T>> {
    assert!(n > 0);
    let m = tasks.len();
    let big = m.div_ceil(n);
    let small = m / n;
    let bigs = if n == 0 { 0 } else { m % n };
    let mut out = Vec::with_capacity(n);
    let mut pos = 0;
    for p in 0..n {
        let take = if p < bigs || m.is_multiple_of(n) {
            big
        } else {
            small
        };
        let take = take.min(m - pos);
        out.push(tasks[pos..pos + take].to_vec());
        pos += take;
    }
    debug_assert_eq!(pos, m);
    out
}

/// Deals `tasks` round-robin over `n` processors (paper §3.3). Generic
/// like [`static_range`].
pub fn static_round_robin<T: Clone>(tasks: &[T], n: usize) -> Vec<Vec<T>> {
    assert!(n > 0);
    let mut out = vec![Vec::with_capacity(tasks.len() / n + 1); n];
    for (i, t) in tasks.iter().enumerate() {
        out[i % n].push(t.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskPair;
    use psj_geom::Rect;
    use psj_store::PageId;

    /// Five tasks t1..t5 in plane-sweep order, as in Figures 2–4.
    fn five_tasks() -> Vec<TaskPair> {
        (0..5)
            .map(|i| TaskPair {
                a: PageId(i),
                la: 1,
                b: PageId(10 + i),
                lb: 1,
                window: Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
            })
            .collect()
    }

    fn ids(v: &[TaskPair]) -> Vec<u32> {
        v.iter().map(|t| t.a.0).collect()
    }

    /// Figure 2: m = 5, n = 3 → P1 gets (t1, t2), P2 gets (t3, t4), P3 gets t5.
    #[test]
    fn figure2_static_range() {
        let w = static_range(&five_tasks(), 3);
        assert_eq!(ids(&w[0]), vec![0, 1]);
        assert_eq!(ids(&w[1]), vec![2, 3]);
        assert_eq!(ids(&w[2]), vec![4]);
    }

    /// Figure 3: round-robin → P1 gets (t1, t4), P2 gets (t2, t5), P3 gets t3.
    #[test]
    fn figure3_static_round_robin() {
        let w = static_round_robin(&five_tasks(), 3);
        assert_eq!(ids(&w[0]), vec![0, 3]);
        assert_eq!(ids(&w[1]), vec![1, 4]);
        assert_eq!(ids(&w[2]), vec![2]);
    }

    /// Figure 4's dynamic assignment has no static partition — it is the
    /// shared queue itself; this just pins the strategy names used in the
    /// experiment output.
    #[test]
    fn figure4_dynamic_is_a_queue() {
        assert_eq!(Assignment::Dynamic.short(), "dynamic");
        assert_eq!(Assignment::StaticRange.short(), "range");
        assert_eq!(Assignment::StaticRoundRobin.short(), "round-robin");
    }

    #[test]
    fn range_covers_all_tasks_exactly_once() {
        for n in 1..8 {
            for m in 0..12 {
                let tasks: Vec<TaskPair> = (0..m)
                    .map(|i| TaskPair {
                        a: PageId(i),
                        la: 0,
                        b: PageId(i),
                        lb: 0,
                        window: Rect::new(0.0, 0.0, 1.0, 1.0),
                    })
                    .collect();
                let w = static_range(&tasks, n);
                assert_eq!(w.len(), n);
                let flat: Vec<u32> = w.iter().flatten().map(|t| t.a.0).collect();
                assert_eq!(flat, (0..m).collect::<Vec<_>>(), "m={m} n={n}");
                // Sizes differ by at most one and are non-increasing.
                let sizes: Vec<usize> = w.iter().map(|v| v.len()).collect();
                assert!(sizes.windows(2).all(|s| s[0] >= s[1]), "sizes {sizes:?}");
                assert!(sizes[0] - sizes[n - 1] <= 1);
            }
        }
    }

    #[test]
    fn round_robin_covers_all_tasks_exactly_once() {
        for n in 1..8 {
            for m in 0..12 {
                let tasks: Vec<TaskPair> = (0..m)
                    .map(|i| TaskPair {
                        a: PageId(i),
                        la: 0,
                        b: PageId(i),
                        lb: 0,
                        window: Rect::new(0.0, 0.0, 1.0, 1.0),
                    })
                    .collect();
                let w = static_round_robin(&tasks, n);
                let mut flat: Vec<u32> = w.iter().flatten().map(|t| t.a.0).collect();
                flat.sort_unstable();
                assert_eq!(flat, (0..m).collect::<Vec<_>>());
            }
        }
    }
}
