//! Work-stealing task queues for the native executor.
//!
//! A std-only replacement for `crossbeam::deque` (unavailable in offline
//! builds) with the same shape: a shared [`Injector`], per-worker LIFO
//! [`Worker`] deques, and [`Stealer`] handles that take half a victim's
//! pending work. Workers push and pop at the back (depth-first descent in
//! plane-sweep order); thieves take from the front, which steals the
//! *largest* subtrees first — the same reassignment heuristic as the
//! paper's "task with the highest level" victim selection.
//!
//! Implementation is a `Mutex<VecDeque>` per queue. Locks are never nested:
//! a batch steal pops under the victim's lock into a local buffer, releases
//! it, then refills the thief under its own lock, so cyclic steals cannot
//! deadlock. Every lock goes through [`psj_store::lock_clean`]: a worker
//! that panics mid-morsel must not poison the queues and abort the sibling
//! workers — the queues are structurally valid across a panic (a morsel is
//! either still queued or already handed out), so the survivors drain the
//! rest and the panic is surfaced as a typed error by the driver. For the
//! join workloads measured here, queue operations are a negligible fraction
//! of kernel time (plane sweeps dominate); lock-free deques are a drop-in
//! upgrade if that ever changes.

use psj_store::lock_clean;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Outcome of a steal attempt (mirrors `crossbeam::deque::Steal`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// The queue was observed empty.
    Empty,
    /// The attempt raced with another operation; try again.
    Retry,
}

/// The shared FIFO queue tasks start in under dynamic assignment.
#[derive(Debug)]
pub struct Injector<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector {
            q: Mutex::new(VecDeque::new()),
        }
    }

    /// Adds a task to the back of the queue.
    pub fn push(&self, task: T) {
        lock_clean(&self.q).push_back(task);
    }

    /// Takes one task from the front of the queue.
    pub fn steal(&self) -> Steal<T> {
        match lock_clean(&self.q).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Moves a batch of tasks into `worker`'s deque and pops one of them.
    pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
        let batch = {
            let mut q = lock_clean(&self.q);
            let n = q.len().div_ceil(2).min(BATCH_LIMIT);
            q.drain(..n).collect::<Vec<_>>()
        };
        refill(worker, batch)
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        lock_clean(&self.q).is_empty()
    }
}

const BATCH_LIMIT: usize = 32;

/// A worker's own LIFO deque.
#[derive(Debug)]
pub struct Worker<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// An empty LIFO worker deque.
    pub fn new_lifo() -> Self {
        Worker {
            q: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        lock_clean(&self.q).push_back(task);
    }

    /// Pops the most recently pushed task (depth-first order).
    pub fn pop(&self) -> Option<T> {
        lock_clean(&self.q).pop_back()
    }

    /// A handle other workers can steal through.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            q: Arc::clone(&self.q),
        }
    }
}

/// A stealing handle onto some worker's deque.
#[derive(Debug)]
pub struct Stealer<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            q: Arc::clone(&self.q),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals half the victim's tasks (oldest first — the biggest pending
    /// subtrees) into `worker`'s deque and pops one.
    pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
        let batch = {
            let mut q = lock_clean(&self.q);
            let n = (q.len() / 2)
                .max(usize::from(!q.is_empty()))
                .min(BATCH_LIMIT);
            q.drain(..n).collect::<Vec<_>>()
        };
        refill(worker, batch)
    }

    /// Whether the victim's deque was observed empty.
    pub fn is_empty(&self) -> bool {
        lock_clean(&self.q).is_empty()
    }
}

/// A worker's morsel queue: the owner consumes from the front (plane-sweep
/// order), a thief reassigns exactly **one** morsel from the back — the far
/// end of the owner's sweep, which both minimizes contention and matches
/// the paper's "reassign one task" granularity. Exact-one-steal semantics
/// are what make steal accounting reconcile: every acquisition is either an
/// owner pop, a shared-queue pop, or one recorded steal.
///
/// Unlike [`Worker`]/[`Stealer`], nothing is ever pushed after execution
/// starts (workers keep task descendants on a private stack), so queue
/// lengths only shrink — a worker observing every queue empty can retire
/// without a termination barrier.
#[derive(Debug)]
pub struct MorselQueue<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> Default for MorselQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MorselQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        MorselQueue {
            q: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends a morsel (setup phase only).
    pub fn push_back(&self, m: T) {
        lock_clean(&self.q).push_back(m);
    }

    /// Owner acquisition: next morsel in plane-sweep order.
    pub fn pop_front(&self) -> Option<T> {
        lock_clean(&self.q).pop_front()
    }

    /// Thief acquisition: exactly one morsel from the far end.
    pub fn steal_back(&self) -> Option<T> {
        lock_clean(&self.q).pop_back()
    }

    /// Morsels currently queued.
    pub fn len(&self) -> usize {
        lock_clean(&self.q).len()
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        lock_clean(&self.q).is_empty()
    }
}

/// Installs a stolen batch into `worker` and pops one task from it.
fn refill<T>(worker: &Worker<T>, mut batch: Vec<T>) -> Steal<T> {
    match batch.pop() {
        None => Steal::Empty,
        Some(t) => {
            if !batch.is_empty() {
                let mut q = lock_clean(&worker.q);
                // Preserve front-to-back order under the existing work.
                for task in batch {
                    q.push_back(task);
                }
            }
            Steal::Success(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn worker_is_lifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert_eq!(inj.steal(), Steal::Success('a'));
        assert_eq!(inj.steal(), Steal::Success('b'));
        assert_eq!(inj.steal(), Steal::Empty);
        assert!(inj.is_empty());
    }

    #[test]
    fn steal_batch_moves_half_and_pops() {
        let victim = Worker::new_lifo();
        for i in 0..8 {
            victim.push(i);
        }
        let thief = Worker::new_lifo();
        let got = victim.stealer().steal_batch_and_pop(&thief);
        assert!(matches!(got, Steal::Success(_)));
        // Half of 8 = 4 moved: one returned, three left in the thief's deque.
        let mut thief_tasks = Vec::new();
        while let Some(t) = thief.pop() {
            thief_tasks.push(t);
        }
        assert_eq!(thief_tasks.len(), 3);
        let mut rest = Vec::new();
        while let Some(t) = victim.pop() {
            rest.push(t);
        }
        assert_eq!(rest.len(), 4);
    }

    #[test]
    fn steal_from_empty_is_empty() {
        let victim: Worker<u32> = Worker::new_lifo();
        let thief = Worker::new_lifo();
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Empty);
        let inj: Injector<u32> = Injector::new();
        assert_eq!(inj.steal_batch_and_pop(&thief), Steal::Empty);
    }

    #[test]
    fn morsel_queue_owner_front_thief_back() {
        let q = MorselQueue::new();
        for i in 0..4 {
            q.push_back(i);
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_front(), Some(0), "owner follows sweep order");
        assert_eq!(q.steal_back(), Some(3), "thief takes the far end");
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.steal_back(), Some(2));
        assert!(q.is_empty());
        assert_eq!(q.pop_front(), None);
        assert_eq!(q.steal_back(), None);
    }

    #[test]
    fn morsel_queue_drains_exactly_once_under_contention() {
        const MORSELS: usize = 5_000;
        let q: MorselQueue<usize> = MorselQueue::new();
        for i in 0..MORSELS {
            q.push_back(i);
        }
        let seen: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let q = &q;
                let seen = &seen;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        // Half the threads act as owners, half as thieves.
                        let got = if t % 2 == 0 {
                            q.pop_front()
                        } else {
                            q.steal_back()
                        };
                        match got {
                            Some(m) => local.push(m),
                            None => break,
                        }
                    }
                    let mut set = seen.lock().unwrap();
                    for m in local {
                        assert!(set.insert(m), "morsel {m} acquired twice");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), MORSELS);
    }

    #[test]
    fn no_task_lost_or_duplicated_under_contention() {
        const TASKS: usize = 10_000;
        const THREADS: usize = 4;
        let inj: Injector<usize> = Injector::new();
        for i in 0..TASKS {
            inj.push(i);
        }
        let workers: Vec<Worker<usize>> = (0..THREADS).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<usize>> = workers.iter().map(|w| w.stealer()).collect();
        let seen: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
        std::thread::scope(|scope| {
            for (id, w) in workers.iter().enumerate() {
                let inj = &inj;
                let stealers = &stealers;
                let seen = &seen;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let task = w.pop().or_else(|| {
                            if let Steal::Success(t) = inj.steal_batch_and_pop(w) {
                                return Some(t);
                            }
                            for k in 1..THREADS {
                                if let Steal::Success(t) =
                                    stealers[(id + k) % THREADS].steal_batch_and_pop(w)
                                {
                                    return Some(t);
                                }
                            }
                            None
                        });
                        match task {
                            Some(t) => local.push(t),
                            None => break,
                        }
                    }
                    let mut set = seen.lock().unwrap();
                    for t in local {
                        assert!(set.insert(t), "task {t} executed twice");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), TASKS);
    }
}
