//! The KSR1-derived cost model (paper §4.2, Tables 2 and the disk/refinement
//! parameters).
//!
//! Every constant the paper publishes appears here verbatim; the handful of
//! constants it leaves implicit (per-entry CPU work of the plane sweep,
//! lock overhead of the global buffer, task-queue access, reassignment
//! overhead) are set to microsecond-scale values that keep their aggregate
//! contribution within the bounds the paper states (e.g. reassignment
//! overhead "at most 100 msec" per join; initialization "< 0.1 % of the
//! response time"). All of them are fields, so ablation benches can vary
//! them.

use psj_geom::Rect;
use psj_store::timing::millis_f;
use psj_store::{DiskModel, Nanos, MICROS, MILLIS};
use serde::{Deserialize, Serialize};

/// One row of the paper's Table 2 (KSR1 memory parameters).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemoryLevel {
    /// Human-readable name of the memory level.
    pub name: &'static str,
    /// Size of the address space in bytes.
    pub size: u64,
    /// Transfer unit in bytes.
    pub transfer_unit: u32,
    /// Bandwidth in MB/s.
    pub bandwidth_mb_s: u32,
    /// Access latency per transfer unit in microseconds (the garbled last
    /// column of Table 2, reconstructed; see DESIGN.md §6).
    pub latency_us: f64,
}

/// The three memory levels of Table 2.
pub const KSR1_MEMORY: [MemoryLevel; 3] = [
    MemoryLevel {
        name: "cache",
        size: 256 * 1024,
        transfer_unit: 64,
        bandwidth_mb_s: 64,
        latency_us: 0.1,
    },
    MemoryLevel {
        name: "main memory",
        size: 32 * 1024 * 1024,
        transfer_unit: 128,
        bandwidth_mb_s: 40,
        latency_us: 1.2,
    },
    MemoryLevel {
        name: "main memory of other processors",
        size: 768 * 1024 * 1024,
        transfer_unit: 128,
        bandwidth_mb_s: 32,
        latency_us: 9.0,
    },
];

/// The complete cost model of the simulated platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Reading one 4 KB page from the local buffer: 32 transfer units of
    /// 128 B at 1.2 µs latency + 4 KB at 40 MB/s ≈ 140 µs.
    pub mem_local_page: Nanos,
    /// Reading one 4 KB page from another processor's memory over the
    /// interconnect: 32 × 9 µs + 4 KB at 32 MB/s ≈ 416 µs.
    pub mem_remote_page: Nanos,
    /// Locking/synchronization overhead per global-buffer access.
    pub global_lock: Nanos,
    /// One access to the shared dynamic task queue.
    pub task_queue_access: Nanos,
    /// Fixed algorithmic overhead of one task reassignment, charged to the
    /// idle (helping) processor.
    pub reassign_overhead: Nanos,
    /// CPU time per entry scanned by the restricted plane sweep.
    pub cpu_per_entry: Nanos,
    /// CPU time per intersecting pair found (MBR test + bookkeeping).
    pub cpu_per_pair: Nanos,
    /// Base time of the exact-geometry test of one candidate pair (the
    /// paper's minimum: 2 ms).
    pub refine_base: Nanos,
    /// Span added on top of [`CostModel::refine_base`] proportional to the
    /// degree of MBR overlap (paper: up to 18 ms, i.e. a 16 ms span).
    pub refine_span: Nanos,
    /// Exponent shaping how the normalized overlap degree maps onto the
    /// refinement span. Line-segment MBR pairs cluster at low Jaccard
    /// degrees; `degree^(1/refine_shape)` with `refine_shape` ≈ 3 restores
    /// the paper's ~10 ms *average* while keeping the 2–18 ms range.
    pub refine_shape: f64,
}

impl CostModel {
    /// The paper's cost model.
    pub fn paper() -> Self {
        CostModel {
            mem_local_page: 140 * MICROS,
            mem_remote_page: 416 * MICROS,
            global_lock: 5 * MICROS,
            task_queue_access: 10 * MICROS,
            reassign_overhead: 500 * MICROS,
            cpu_per_entry: MICROS / 2,
            cpu_per_pair: 2 * MICROS,
            refine_base: 2 * MILLIS,
            refine_span: 16 * MILLIS,
            refine_shape: 3.0,
        }
    }

    /// Simulated duration of the exact-geometry intersection test for a
    /// candidate pair with the given MBRs (paper §4.2: "waiting periods
    /// whose lengths depend on the degree of overlap between the
    /// corresponding MBRs", 2–18 ms, average 10 ms).
    pub fn refinement_time(&self, a: &Rect, b: &Rect) -> Nanos {
        let degree = a.overlap_degree(b).powf(1.0 / self.refine_shape);
        self.refine_base + (self.refine_span as f64 * degree) as Nanos
    }

    /// CPU time of one node-pair plane sweep that scanned `entries` entries
    /// and produced `pairs` intersecting pairs.
    pub fn sweep_time(&self, entries: usize, pairs: usize) -> Nanos {
        self.cpu_per_entry * entries as Nanos + self.cpu_per_pair * pairs as Nanos
    }

    /// Renders Table 2 (the memory parameters actually used).
    pub fn table2() -> String {
        let mut s = String::from(
            "memory                              size  transfer_unit  bandwidth  latency_us\n",
        );
        for m in KSR1_MEMORY {
            s.push_str(&format!(
                "{:<34} {:>6} KB {:>8} B {:>6} MB/s {:>8.1}\n",
                m.name,
                m.size / 1024,
                m.transfer_unit,
                m.bandwidth_mb_s,
                m.latency_us
            ));
        }
        s
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

/// Bundles the disk and CPU/memory models of one simulated platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// The simulated disk array.
    pub disk: DiskModel,
    /// CPU/memory/synchronization costs.
    pub cost: CostModel,
}

impl Platform {
    /// The paper's platform with `d` disks.
    pub fn paper(num_disks: usize) -> Self {
        Platform {
            disk: DiskModel::paper(num_disks),
            cost: CostModel::paper(),
        }
    }
}

/// Re-export of [`millis_f`] for experiment configuration code.
pub fn ms(v: f64) -> Nanos {
    millis_f(v)
}

/// Shape statistics of one frozen tree, collected with a single cheap pass
/// over (a sample of) its leaf pages. These drive the analytic candidate
/// estimates behind morsel sizing: how many data entries a subtree at a
/// given level holds, and how wide a typical data MBR is.
#[derive(Debug, Clone, Copy)]
pub struct TreeProfile {
    /// Mean data entries per leaf page.
    pub avg_leaf_entries: f64,
    /// Mean directory fanout, derived from leaf count and height.
    pub dir_fanout: f64,
    /// Mean data-entry MBR width.
    pub avg_entry_w: f64,
    /// Mean data-entry MBR height.
    pub avg_entry_h: f64,
}

/// Leaf pages sampled by [`TreeProfile::scan`]; extents converge fast and
/// phase 1½ must stay a negligible fraction of the join.
const PROFILE_SAMPLE_LEAVES: usize = 64;

impl TreeProfile {
    /// Profiles `tree` by sampling its leaf pages.
    pub fn scan(tree: &psj_rtree::PagedTree) -> Self {
        let num_pages = tree.pages().len();
        let mut leaves = 0usize;
        let mut entries_sampled = 0usize;
        let mut sum_w = 0.0f64;
        let mut sum_h = 0.0f64;
        // Count every leaf (cheap level check) but read extents only from an
        // evenly spread sample.
        let mut next_sample = 0usize;
        let stride = num_pages.div_ceil(PROFILE_SAMPLE_LEAVES).max(1);
        for p in 0..num_pages {
            let node = tree.node(psj_store::PageId(p as u32));
            if node.level != 0 {
                continue;
            }
            leaves += 1;
            if leaves > next_sample {
                next_sample += stride;
                for e in node.data_entries() {
                    sum_w += e.mbr.width();
                    sum_h += e.mbr.height();
                }
                entries_sampled += node.len();
            }
        }
        let avg_leaf_entries = if leaves == 0 {
            1.0
        } else {
            (tree.len() as f64 / leaves as f64).max(1.0)
        };
        let (avg_entry_w, avg_entry_h) = if entries_sampled == 0 {
            (0.0, 0.0)
        } else {
            (
                sum_w / entries_sampled as f64,
                sum_h / entries_sampled as f64,
            )
        };
        // `leaves = fanout^(height-1)` under uniform fanout.
        let height = tree.height().max(1);
        let dir_fanout = if height <= 1 || leaves <= 1 {
            1.0
        } else {
            (leaves as f64).powf(1.0 / (height - 1) as f64).max(1.0)
        };
        TreeProfile {
            avg_leaf_entries,
            dir_fanout,
            avg_entry_w,
            avg_entry_h,
        }
    }

    /// Expected data entries below a node with `len` entries at `level`
    /// (0 = leaf, so the node's own entries are the data entries).
    pub fn subtree_entries(&self, len: usize, level: u8) -> f64 {
        if level == 0 {
            len as f64
        } else {
            len as f64 * self.avg_leaf_entries * self.dir_fanout.powi(level as i32 - 1)
        }
    }
}

/// Analytic estimator of the filter-step candidates one task (a pair of
/// subtrees plus a restriction window) will produce. The morsel planner
/// sizes work units by these estimates; the reassignment policy uses the
/// same numbers as its live `(remaining work, remaining morsels)` load
/// signal.
///
/// The model is the classic uniform-density one: each subtree contributes
/// `entries × clip` objects inside the window (`clip` = the window's share
/// of the subtree MBR), and two uniformly placed objects intersect with the
/// Minkowski probability `min(1, (w_a+w_b)/W) × min(1, (h_a+h_b)/H)`.
/// [`CandidateEstimator::scale`] calibrates the absolute level against
/// measured [`crate::metrics::TaskTrace`] candidates from a previous run.
#[derive(Debug, Clone, Copy)]
pub struct CandidateEstimator {
    /// Profile of the first tree.
    pub a: TreeProfile,
    /// Profile of the second tree.
    pub b: TreeProfile,
    /// Multiplicative calibration applied to every estimate.
    pub scale: f64,
}

impl CandidateEstimator {
    /// Profiles both trees (uncalibrated, `scale = 1`).
    pub fn new(a: &psj_rtree::PagedTree, b: &psj_rtree::PagedTree) -> Self {
        CandidateEstimator {
            a: TreeProfile::scan(a),
            b: TreeProfile::scan(b),
            scale: 1.0,
        }
    }

    /// The same estimator with a calibration factor applied.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale.max(f64::MIN_POSITIVE);
        self
    }

    /// The calibration factor that would have made `estimated` match the
    /// `measured` candidate total of a completed run (both > 0; returns 1
    /// otherwise). Feed the result to [`CandidateEstimator::with_scale`]
    /// on the next join over the same data.
    pub fn calibration_scale(estimated: f64, measured: u64) -> f64 {
        if estimated > 0.0 && measured > 0 {
            measured as f64 / estimated
        } else {
            1.0
        }
    }

    /// Estimated candidates of the task joining a subtree of `len_a`
    /// entries at `level_a` with MBR `mbr_a` against `len_b`/`level_b`/
    /// `mbr_b`, restricted to `window`. Always ≥ 1: a task exists because
    /// its parents' MBRs intersect, so zero-cost tasks don't.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate(
        &self,
        len_a: usize,
        level_a: u8,
        mbr_a: &Rect,
        len_b: usize,
        level_b: u8,
        mbr_b: &Rect,
        window: &Rect,
    ) -> f64 {
        let clip = |mbr: &Rect| {
            let area = mbr.area();
            if area <= 0.0 {
                1.0
            } else {
                (mbr.overlap_area(window) / area).clamp(0.0, 1.0)
            }
        };
        let ea = self.a.subtree_entries(len_a, level_a) * clip(mbr_a);
        let eb = self.b.subtree_entries(len_b, level_b) * clip(mbr_b);
        let p_axis = |ext_a: f64, ext_b: f64, span: f64| {
            if span <= 0.0 {
                1.0
            } else {
                ((ext_a + ext_b) / span).min(1.0)
            }
        };
        let px = p_axis(self.a.avg_entry_w, self.b.avg_entry_w, window.width());
        let py = p_axis(self.a.avg_entry_h, self.b.avg_entry_h, window.height());
        (self.scale * ea * eb * px * py).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_bounds() {
        let c = CostModel::paper();
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        // Identical MBRs: maximal degree → 18 ms.
        assert_eq!(c.refinement_time(&a, &a), 18 * MILLIS);
        // Barely touching: minimal degree → 2 ms.
        let b = Rect::new(2.0, 2.0, 4.0, 4.0);
        assert_eq!(c.refinement_time(&a, &b), 2 * MILLIS);
    }

    #[test]
    fn refinement_monotone_in_overlap() {
        let c = CostModel::paper();
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let small = Rect::new(9.0, 9.0, 19.0, 19.0);
        let big = Rect::new(2.0, 2.0, 12.0, 12.0);
        assert!(c.refinement_time(&a, &big) > c.refinement_time(&a, &small));
    }

    #[test]
    fn sweep_time_scales() {
        let c = CostModel::paper();
        assert_eq!(c.sweep_time(0, 0), 0);
        assert_eq!(c.sweep_time(10, 4), 10 * (MICROS / 2) + 4 * 2 * MICROS);
    }

    #[test]
    fn table2_mentions_all_levels() {
        let t = CostModel::table2();
        assert!(t.contains("cache"));
        assert!(t.contains("other processors"));
        assert!(t.contains("32 MB/s"));
    }

    #[test]
    fn remote_access_much_slower_than_local() {
        let c = CostModel::paper();
        assert!(c.mem_remote_page > 2 * c.mem_local_page);
        // ... but both far below a disk read.
        assert!(DiskModel::paper(1).page_read_time() > 10 * c.mem_remote_page);
    }
}
