//! Parallel window and nearest-neighbor query processing.
//!
//! The paper closes with: "we want to integrate the spatial join in a
//! larger framework for parallel spatial query processing where also other
//! operations such as neighbor and window queries are efficiently
//! supported." This module provides that for batches of queries: the query
//! set is the task set, distributed over worker threads through a shared
//! injector with work stealing — the dynamic assignment that won for joins.

use crate::cancel::{CancelToken, Cancelled};
use crate::deque::{Injector, Steal};
use psj_geom::{Point, Rect};
use psj_rtree::{DataEntry, NodeKind, PagedTree};
use psj_store::PageId;

/// Runs a batch of window queries in parallel on `threads` workers.
/// `results[i]` holds the data entries intersecting `windows[i]`.
pub fn parallel_window_queries(
    tree: &PagedTree,
    windows: &[Rect],
    threads: usize,
) -> Vec<Vec<DataEntry>> {
    parallel_batch(windows.len(), threads, |i| tree.window_query(&windows[i]))
}

/// Runs a batch of k-nearest-neighbor queries in parallel.
/// `results[i]` holds up to `k` `(distance, entry)` pairs for `queries[i]`.
pub fn parallel_nn_queries(
    tree: &PagedTree,
    queries: &[Point],
    k: usize,
    threads: usize,
) -> Vec<Vec<(f64, DataEntry)>> {
    parallel_batch(queries.len(), threads, |i| {
        tree.nearest_neighbors(&queries[i], k)
    })
}

/// Runs a batch of window queries with **shared traversal**: the tree is
/// descended once, each directory node tested against every query window
/// that reached it, so a directory page touched by `k` queries of the batch
/// is visited (and, in an out-of-core setting, faulted) once instead of `k`
/// times. `results[i]` holds the data entries intersecting `windows[i]`,
/// exactly as `k` separate [`PagedTree::window_query`] calls would.
pub fn batched_window_queries(tree: &PagedTree, windows: &[Rect]) -> Vec<Vec<DataEntry>> {
    batched_window_queries_cancellable(tree, windows, &CancelToken::new())
        .expect("fresh token never fires")
}

/// As [`batched_window_queries`], checking `cancel` once per visited node;
/// returns `Err(Cancelled)` (discarding partial results) once the token
/// fires. The serving layer uses this to bound batch execution by the
/// earliest member deadline.
pub fn batched_window_queries_cancellable(
    tree: &PagedTree,
    windows: &[Rect],
    cancel: &CancelToken,
) -> Result<Vec<Vec<DataEntry>>, Cancelled> {
    let mut out: Vec<Vec<DataEntry>> = (0..windows.len()).map(|_| Vec::new()).collect();
    if windows.is_empty() || tree.is_empty() {
        return Ok(out);
    }
    // Stack entries carry the subset of queries still alive at that subtree.
    let live: Vec<u32> = (0..windows.len() as u32).collect();
    let mut stack: Vec<(PageId, Vec<u32>)> = vec![(tree.root(), live)];
    while let Some((page, live)) = stack.pop() {
        cancel.check()?;
        match &tree.node(page).kind {
            NodeKind::Dir(entries) => {
                for e in entries {
                    let sub: Vec<u32> = live
                        .iter()
                        .copied()
                        .filter(|&q| e.mbr.intersects(&windows[q as usize]))
                        .collect();
                    if !sub.is_empty() {
                        stack.push((PageId(e.child), sub));
                    }
                }
            }
            NodeKind::Leaf(entries) => {
                for e in entries {
                    for &q in &live {
                        if e.mbr.intersects(&windows[q as usize]) {
                            out[q as usize].push(*e);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Generic fan-out: evaluates `run(i)` for `i in 0..count` on `threads`
/// workers, collecting results in input order.
fn parallel_batch<T, F>(count: usize, threads: usize, run: F) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Vec<T> + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if count == 0 {
        return Vec::new();
    }
    let injector: Injector<usize> = Injector::new();
    for i in 0..count {
        injector.push(i);
    }

    // Workers drain the shared queue and collect (index, result) pairs
    // locally; results are merged back into input order afterwards.
    let mut per_worker: Vec<Vec<(usize, Vec<T>)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let injector = &injector;
            let run = &run;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    match injector.steal() {
                        Steal::Success(i) => local.push((i, run(i))),
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
                local
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("query worker panicked"));
        }
    });

    let mut slots: Vec<Option<Vec<T>>> = (0..count).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "query {i} evaluated twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every query slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psj_rtree::RTree;

    fn tree(n: usize) -> PagedTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 50) as f64;
            let y = (i / 50) as f64;
            t.insert(Rect::new(x, y, x + 0.8, y + 0.8), i as u64);
        }
        PagedTree::freeze(&t, |_| None)
    }

    #[test]
    fn parallel_windows_match_sequential() {
        let t = tree(2000);
        let windows: Vec<Rect> = (0..40)
            .map(|k| {
                let x = (k % 8) as f64 * 6.0;
                let y = (k / 8) as f64 * 7.0;
                Rect::new(x, y, x + 9.0, y + 5.0)
            })
            .collect();
        for threads in [1, 4] {
            let par = parallel_window_queries(&t, &windows, threads);
            assert_eq!(par.len(), windows.len());
            for (i, w) in windows.iter().enumerate() {
                let mut got: Vec<u64> = par[i].iter().map(|e| e.oid).collect();
                let mut want: Vec<u64> = t.window_query(w).iter().map(|e| e.oid).collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "window {i}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_nn_match_sequential() {
        let t = tree(1500);
        let queries: Vec<Point> = (0..25)
            .map(|k| Point::new((k * 2) as f64, (k % 7) as f64 * 4.0))
            .collect();
        let par = parallel_nn_queries(&t, &queries, 5, 4);
        for (i, q) in queries.iter().enumerate() {
            let want: Vec<f64> = t.nearest_neighbors(q, 5).iter().map(|(d, _)| *d).collect();
            let got: Vec<f64> = par[i].iter().map(|(d, _)| *d).collect();
            assert_eq!(got, want, "query {i}");
        }
    }

    #[test]
    fn empty_batch() {
        let t = tree(100);
        assert!(parallel_window_queries(&t, &[], 4).is_empty());
        assert!(parallel_nn_queries(&t, &[], 3, 4).is_empty());
    }

    #[test]
    fn batched_windows_match_individual() {
        let t = tree(2500);
        let windows: Vec<Rect> = (0..60)
            .map(|k| {
                let x = (k % 10) as f64 * 5.0;
                let y = (k / 10) as f64 * 8.0;
                Rect::new(x, y, x + 7.0, y + 6.0)
            })
            .collect();
        let batched = batched_window_queries(&t, &windows);
        assert_eq!(batched.len(), windows.len());
        for (i, w) in windows.iter().enumerate() {
            let mut got: Vec<u64> = batched[i].iter().map(|e| e.oid).collect();
            let mut want: Vec<u64> = t.window_query(w).iter().map(|e| e.oid).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "window {i}");
        }
    }

    #[test]
    fn batched_windows_empty_batch_and_tree() {
        let t = tree(100);
        assert!(batched_window_queries(&t, &[]).is_empty());
        let empty = PagedTree::freeze(&RTree::new(), |_| None);
        let res = batched_window_queries(&empty, &[Rect::new(0.0, 0.0, 1.0, 1.0)]);
        assert_eq!(res.len(), 1);
        assert!(res[0].is_empty());
    }

    #[test]
    fn batched_windows_cancel_fires() {
        let t = tree(2000);
        let windows = vec![Rect::new(0.0, 0.0, 50.0, 40.0)];
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            batched_window_queries_cancellable(&t, &windows, &token),
            Err(Cancelled)
        );
    }

    #[test]
    fn more_threads_than_queries() {
        let t = tree(200);
        let windows = vec![Rect::new(0.0, 0.0, 10.0, 10.0)];
        let res = parallel_window_queries(&t, &windows, 8);
        assert_eq!(res.len(), 1);
        assert!(!res[0].is_empty());
    }
}
