//! The simulated parallel executor: the paper's evaluation platform.
//!
//! Replays the three-phase parallel spatial join (task creation → task
//! assignment → parallel task execution, §3.1) on a deterministic
//! discrete-event simulation of the KSR1-style platform: `n` processors
//! with private virtual clocks, `d` FCFS disks (`page mod d` placement),
//! local or global LRU buffers, per-processor path buffers, the shared
//! dynamic task queue, and task reassignment between processors.
//!
//! ## Time model
//!
//! Processors advance their private clocks through CPU work (plane sweeps,
//! simulated refinement waits) and memory accesses; they block on disk
//! reads, which are FCFS per disk in virtual-time order. The event loop
//! executes processors in global time order; a processor yields back to the
//! loop whenever an earlier event is pending, so accesses to shared state
//! (disks, global buffer, task queue, reassignment) happen in exact virtual
//! time order and the whole simulation is reproducible bit for bit.
//!
//! ## What is charged where
//!
//! | action | cost |
//! |---|---|
//! | path-buffer hit | free (processor-local memory) |
//! | local buffer hit | [`crate::cost::CostModel::mem_local_page`] |
//! | remote (global) buffer hit | [`crate::cost::CostModel::mem_remote_page`] |
//! | global buffer access | + [`crate::cost::CostModel::global_lock`] |
//! | directory page miss | 16 ms disk read (9 + 6 + 1) |
//! | data page miss | 16 ms + cluster read (≈ 37.5 ms total) |
//! | plane sweep | per entry / per pair CPU costs |
//! | candidate refinement | 2–18 ms simulated geometry test |
//! | dynamic queue access | [`crate::cost::CostModel::task_queue_access`] |
//! | successful reassignment | [`crate::cost::CostModel::reassign_overhead`] |

use crate::assign::{static_range, static_round_robin, Assignment};
use crate::cost::Platform;
use crate::metrics::JoinMetrics;
use crate::task::{create_tasks, expand_pair, Candidate, KernelScratch, TaskPair};
use psj_buffer::{BufferStats, GlobalAccess, GlobalBuffer, LocalBuffers, PathBuffer, Policy};
use psj_desim::{EventQueue, ResourcePool};
use psj_rtree::PagedTree;
use psj_store::disk::DiskStats;
use psj_store::{Nanos, PageId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Buffer organization (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferOrg {
    /// One private LRU buffer per processor.
    Local,
    /// One global LRU buffer spanning all processors (shared virtual
    /// memory); a page resides at most once.
    Global,
}

/// Task reassignment policy (paper §3.4 / §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reassignment {
    /// No reassignment: idle processors stay idle.
    None,
    /// Reassignment of unstarted tasks only (pairs at the root level).
    RootLevel,
    /// Reassignment of pairs on all levels of the R\*-tree directories.
    AllLevels,
}

/// How the idle processor picks whom to help (paper §4.4, Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimSelection {
    /// The processor with the highest reported `(hl, ns)` load.
    MostLoaded,
    /// A uniformly random processor among those with stealable work
    /// (the Shatdal/Naughton proposal).
    Arbitrary,
}

/// Configuration of one simulated join run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of processors `n`.
    pub num_procs: usize,
    /// Number of disks `d`.
    pub num_disks: usize,
    /// Total LRU buffer capacity in pages (split evenly for local buffers;
    /// one shared pool for the global buffer).
    pub buffer_pages_total: usize,
    /// Buffer organization.
    pub buffer_org: BufferOrg,
    /// Task assignment strategy.
    pub assignment: Assignment,
    /// Task reassignment policy.
    pub reassignment: Reassignment,
    /// Victim selection for reassignment.
    pub victim: VictimSelection,
    /// Disk and CPU/memory cost model.
    pub platform: Platform,
    /// Phase 1 descends the trees until at least `min_tasks_factor × n`
    /// tasks exist (the paper's "m much larger than n" requirement).
    pub min_tasks_factor: usize,
    /// Minimum number of stealable pairs a victim must hold at the chosen
    /// level for a reassignment to be worth its overhead.
    pub min_steal: usize,
    /// Seed for the arbitrary victim selection.
    pub seed: u64,
    /// When set, the run returns the candidate `(oid, oid)` pairs for
    /// cross-checking against the sequential join.
    pub collect_candidates: bool,
    /// Page replacement policy of the LRU/FIFO/CLOCK buffers (ablation; the
    /// paper uses LRU).
    pub policy: Policy,
    /// Ablation switch: consult the per-processor path buffers (paper: on).
    pub use_path_buffer: bool,
    /// Ablation switch: apply the [BKS 93] search-space restriction
    /// (paper: on). When off, node pairs sweep their full entry lists.
    pub use_restriction: bool,
}

impl SimConfig {
    /// The paper's best variant: global buffer, dynamic assignment,
    /// reassignment on all levels, most-loaded victim.
    pub fn best(num_procs: usize, num_disks: usize, buffer_pages_total: usize) -> Self {
        SimConfig {
            num_procs,
            num_disks,
            buffer_pages_total,
            buffer_org: BufferOrg::Global,
            assignment: Assignment::Dynamic,
            reassignment: Reassignment::AllLevels,
            victim: VictimSelection::MostLoaded,
            platform: Platform::paper(num_disks),
            min_tasks_factor: 4,
            min_steal: 2,
            seed: 0,
            collect_candidates: false,
            policy: Policy::Lru,
            use_path_buffer: true,
            use_restriction: true,
        }
    }

    /// The `lsr` variant: local buffers + static range assignment.
    pub fn lsr(num_procs: usize, num_disks: usize, buffer_pages_total: usize) -> Self {
        SimConfig {
            buffer_org: BufferOrg::Local,
            assignment: Assignment::StaticRange,
            reassignment: Reassignment::RootLevel,
            ..Self::best(num_procs, num_disks, buffer_pages_total)
        }
    }

    /// The `gsrr` variant: global buffer + static round-robin assignment.
    pub fn gsrr(num_procs: usize, num_disks: usize, buffer_pages_total: usize) -> Self {
        SimConfig {
            buffer_org: BufferOrg::Global,
            assignment: Assignment::StaticRoundRobin,
            reassignment: Reassignment::RootLevel,
            ..Self::best(num_procs, num_disks, buffer_pages_total)
        }
    }

    /// The `gd` variant: global buffer + dynamic task assignment.
    pub fn gd(num_procs: usize, num_disks: usize, buffer_pages_total: usize) -> Self {
        SimConfig {
            buffer_org: BufferOrg::Global,
            assignment: Assignment::Dynamic,
            reassignment: Reassignment::RootLevel,
            ..Self::best(num_procs, num_disks, buffer_pages_total)
        }
    }
}

/// Result of a simulated run: the metrics plus (optionally) the candidates.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Collected metrics.
    pub metrics: JoinMetrics,
    /// Candidate pairs, present when `collect_candidates` was set.
    pub candidates: Option<Vec<(u64, u64)>>,
}

/// Runs one simulated parallel join.
pub fn run_sim_join(a: &PagedTree, b: &PagedTree, cfg: &SimConfig) -> SimResult {
    Executor::new(a, b, cfg).run()
}

// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// The page of tree A must still be acquired.
    NeedA,
    /// The A page was acquired (or will be, at the scheduled resume time);
    /// next acquire B.
    NeedB,
    /// Both pages acquired once the processor resumes; process the pair.
    Process,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Resume(usize),
}

struct Proc {
    /// Unstarted tasks assigned by a static strategy (plane-sweep order).
    workload: VecDeque<TaskPair>,
    /// Depth-first stack of pending pairs (top = next in sweep order).
    stack: Vec<TaskPair>,
    /// The pair currently being worked on, with its progress stage.
    pending: Option<(TaskPair, Stage)>,
    /// A page fetch this processor must install into the buffer on resume.
    fetch_done: Option<PageId>,
    paths: [PathBuffer; 2],
    parked_since: Option<Nanos>,
    idle_total: Nanos,
    idle_before_last_work: Nanos,
    last_work_end: Nanos,
    parked_version: u64,
    buddy: Option<usize>,
}

enum Buffers {
    Local(LocalBuffers),
    Global(GlobalBuffer),
}

enum PageOutcome {
    /// Page available; the clock was already advanced by the access cost.
    Acquired,
    /// Processor must block; resume at the given time, at which point the
    /// page counts as acquired.
    Blocked(Nanos),
}

struct Executor<'t> {
    a: &'t PagedTree,
    b: &'t PagedTree,
    cfg: SimConfig,
    b_offset: u32,
    disks: ResourcePool,
    disk_stats: DiskStats,
    buffers: Buffers,
    /// Completion time of in-flight reads (global buffer only), by unified
    /// page id.
    in_flight_done: HashMap<PageId, Nanos>,
    events: EventQueue<Ev>,
    procs: Vec<Proc>,
    shared_queue: VecDeque<TaskPair>,
    scratch: KernelScratch,
    child_buf: Vec<TaskPair>,
    cand_buf: Vec<Candidate>,
    rng: StdRng,
    /// Incremented whenever stealable work may have appeared.
    work_version: u64,
    tasks_created: usize,
    candidates: u64,
    dir_reads: u64,
    data_reads: u64,
    reassignments: u64,
    steals_failed: u64,
    collected: Vec<(u64, u64)>,
}

impl<'t> Executor<'t> {
    fn new(a: &'t PagedTree, b: &'t PagedTree, cfg: &SimConfig) -> Self {
        assert!(cfg.num_procs > 0, "need at least one processor");
        let n = cfg.num_procs;
        let buffers = match cfg.buffer_org {
            BufferOrg::Local => Buffers::Local(LocalBuffers::with_total_policy(
                n,
                cfg.buffer_pages_total,
                cfg.policy,
            )),
            BufferOrg::Global => Buffers::Global(GlobalBuffer::with_policy(
                n,
                cfg.buffer_pages_total,
                cfg.policy,
            )),
        };
        let procs = (0..n)
            .map(|_| Proc {
                workload: VecDeque::new(),
                stack: Vec::new(),
                pending: None,
                fetch_done: None,
                paths: [
                    PathBuffer::new(a.height() as usize),
                    PathBuffer::new(b.height() as usize),
                ],
                parked_since: None,
                idle_total: 0,
                idle_before_last_work: 0,
                last_work_end: 0,
                parked_version: 0,
                buddy: None,
            })
            .collect();
        Executor {
            a,
            b,
            cfg: cfg.clone(),
            b_offset: a.num_pages() as u32,
            disks: ResourcePool::new(cfg.num_disks),
            disk_stats: DiskStats::new(cfg.num_disks),
            buffers,
            in_flight_done: HashMap::new(),
            events: EventQueue::new(),
            procs,
            shared_queue: VecDeque::new(),
            scratch: KernelScratch::default(),
            child_buf: Vec::new(),
            cand_buf: Vec::new(),
            rng: StdRng::seed_from_u64(cfg.seed),
            work_version: 0,
            tasks_created: 0,
            candidates: 0,
            dir_reads: 0,
            data_reads: 0,
            reassignments: 0,
            steals_failed: 0,
            collected: Vec::new(),
        }
    }

    fn run(mut self) -> SimResult {
        // --- Phase 1: sequential task creation on processor 0. ------------
        let tc = create_tasks(
            self.a,
            self.b,
            self.cfg.min_tasks_factor * self.cfg.num_procs,
        );
        self.tasks_created = tc.tasks.len();
        let mut now: Nanos = 0;
        for &p in &tc.pages_a {
            now = self.charge_page_sync(0, 0, p, now);
        }
        for &p in &tc.pages_b {
            now = self.charge_page_sync(0, 1, p, now);
        }
        self.procs[0].last_work_end = now;
        let phase1_end = now;

        // --- Phase 2: task assignment. -------------------------------------
        match self.cfg.assignment {
            Assignment::StaticRange => {
                for (p, w) in static_range(&tc.tasks, self.cfg.num_procs)
                    .into_iter()
                    .enumerate()
                {
                    self.procs[p].workload = w.into();
                }
            }
            Assignment::StaticRoundRobin => {
                for (p, w) in static_round_robin(&tc.tasks, self.cfg.num_procs)
                    .into_iter()
                    .enumerate()
                {
                    self.procs[p].workload = w.into();
                }
            }
            Assignment::Dynamic => {
                self.shared_queue = tc.tasks.iter().copied().collect();
            }
        }

        // --- Phase 3: parallel task execution. ------------------------------
        for p in 0..self.cfg.num_procs {
            self.events.schedule(phase1_end, Ev::Resume(p));
        }
        while let Some((t, Ev::Resume(p))) = self.events.pop() {
            self.run_proc(p, t);
            self.wake_parked_if_work(t);
        }

        // --- Collect metrics. ------------------------------------------------
        let buffer: BufferStats = match &self.buffers {
            Buffers::Local(l) => l.total_stats(),
            Buffers::Global(g) => g.total_stats(),
        };
        let proc_finish: Vec<Nanos> = self.procs.iter().map(|p| p.last_work_end).collect();
        let proc_busy: Vec<Nanos> = self
            .procs
            .iter()
            .map(|p| p.last_work_end.saturating_sub(p.idle_before_last_work))
            .collect();
        let response_time = proc_finish.iter().copied().max().unwrap_or(0);
        let metrics = JoinMetrics {
            num_procs: self.cfg.num_procs,
            num_disks: self.cfg.num_disks,
            tasks: self.tasks_created,
            response_time,
            proc_finish,
            proc_busy,
            disk_accesses: self.disk_stats.total_reads(),
            dir_page_reads: self.dir_reads,
            data_page_reads: self.data_reads,
            buffer,
            candidates: self.candidates,
            reassignments: self.reassignments,
            steals_failed: self.steals_failed,
        };
        SimResult {
            metrics,
            candidates: if self.cfg.collect_candidates {
                Some(self.collected)
            } else {
                None
            },
        }
    }

    /// Runs processor `p` from time `t` until it blocks, parks or yields.
    fn run_proc(&mut self, p: usize, t: Nanos) {
        let mut now = t;
        // Waking from a parked state: account the idle interval.
        if let Some(since) = self.procs[p].parked_since.take() {
            self.procs[p].idle_total += now.saturating_sub(since);
        }
        // A pending fetch completes exactly at this resume.
        if let Some(upid) = self.procs[p].fetch_done.take() {
            if let Buffers::Global(g) = &mut self.buffers {
                g.complete_read(p, upid);
            } else if let Buffers::Local(l) = &mut self.buffers {
                l.load(p, upid);
            }
            self.in_flight_done.remove(&upid);
        }

        loop {
            // Yield while an earlier event is pending so shared-state
            // interactions happen in exact virtual-time order.
            if self.events.peek_time().is_some_and(|pt| pt < now) {
                self.events.schedule(now, Ev::Resume(p));
                return;
            }

            if let Some((pair, stage)) = self.procs[p].pending.take() {
                match stage {
                    Stage::NeedA => {
                        match self.access_page(p, 0, pair.a, pair.la as usize, &mut now) {
                            PageOutcome::Acquired => {
                                self.procs[p].pending = Some((pair, Stage::NeedB));
                            }
                            PageOutcome::Blocked(at) => {
                                self.procs[p].pending = Some((pair, Stage::NeedB));
                                self.events.schedule(at, Ev::Resume(p));
                                return;
                            }
                        }
                    }
                    Stage::NeedB => {
                        match self.access_page(p, 1, pair.b, pair.lb as usize, &mut now) {
                            PageOutcome::Acquired => {
                                self.procs[p].pending = Some((pair, Stage::Process));
                            }
                            PageOutcome::Blocked(at) => {
                                self.procs[p].pending = Some((pair, Stage::Process));
                                self.events.schedule(at, Ev::Resume(p));
                                return;
                            }
                        }
                    }
                    Stage::Process => {
                        self.process_pair(p, &pair, &mut now);
                        self.procs[p].idle_before_last_work = self.procs[p].idle_total;
                        self.procs[p].last_work_end = now;
                    }
                }
                continue;
            }

            // Acquire the next work item.
            if let Some(pair) = self.procs[p].stack.pop() {
                self.procs[p].pending = Some((pair, Stage::NeedA));
                continue;
            }
            if let Some(task) = self.procs[p].workload.pop_front() {
                self.procs[p].stack.push(task);
                continue;
            }
            if self.cfg.assignment == Assignment::Dynamic && !self.shared_queue.is_empty() {
                now += self.cfg.platform.cost.task_queue_access;
                if let Some(task) = self.shared_queue.pop_front() {
                    self.procs[p].stack.push(task);
                    continue;
                }
            }
            if self.cfg.reassignment != Reassignment::None && self.try_steal(p, &mut now) {
                continue;
            }
            // Nothing to do: park.
            self.procs[p].parked_since = Some(now);
            self.procs[p].parked_version = self.work_version;
            return;
        }
    }

    /// Wakes parked processors when stealable work (or queued tasks) exist
    /// and the work state changed since they parked.
    fn wake_parked_if_work(&mut self, t: Nanos) {
        if self.cfg.reassignment == Reassignment::None && self.shared_queue.is_empty() {
            return;
        }
        let version = self.work_version;
        let any_work = !self.shared_queue.is_empty()
            || (0..self.procs.len()).any(|v| self.stealable_load(v).is_some());
        if !any_work {
            return;
        }
        for p in 0..self.procs.len() {
            if self.procs[p].parked_since.is_some() && self.procs[p].parked_version < version {
                self.procs[p].parked_version = version;
                self.events.schedule(t, Ev::Resume(p));
            }
        }
    }

    /// Synchronous page charge used by phase 1 (no contention yet).
    fn charge_page_sync(&mut self, p: usize, tree: u8, page: PageId, mut now: Nanos) -> Nanos {
        match self.access_page(p, tree, page, self.level_of(tree, page), &mut now) {
            PageOutcome::Acquired => now,
            PageOutcome::Blocked(at) => {
                // Complete the fetch immediately (sequential phase).
                if let Some(upid) = self.procs[p].fetch_done.take() {
                    match &mut self.buffers {
                        Buffers::Global(g) => g.complete_read(p, upid),
                        Buffers::Local(l) => l.load(p, upid),
                    }
                    self.in_flight_done.remove(&upid);
                }
                at
            }
        }
    }

    fn level_of(&self, tree: u8, page: PageId) -> usize {
        let node = if tree == 0 {
            self.a.node(page)
        } else {
            self.b.node(page)
        };
        node.level as usize
    }

    /// Unified page id across both trees (for disk placement and buffers).
    fn upid(&self, tree: u8, page: PageId) -> PageId {
        if tree == 0 {
            page
        } else {
            PageId(page.0 + self.b_offset)
        }
    }

    /// Disk service time of reading this page (data pages drag their
    /// geometry cluster along).
    fn service_time(&self, tree: u8, page: PageId) -> Nanos {
        let disk = &self.cfg.platform.disk;
        if self.level_of(tree, page) == 0 {
            let bytes = if tree == 0 {
                self.a.clusters().bytes_of(page)
            } else {
                self.b.clusters().bytes_of(page)
            };
            disk.data_page_read_time(bytes)
        } else {
            disk.page_read_time()
        }
    }

    /// One page access through path buffer → LRU buffer → disk.
    fn access_page(
        &mut self,
        p: usize,
        tree: u8,
        page: PageId,
        level: usize,
        now: &mut Nanos,
    ) -> PageOutcome {
        // Path buffer first: free, local to the processor.
        if self.cfg.use_path_buffer && self.procs[p].paths[tree as usize].access(level, page) {
            match &mut self.buffers {
                Buffers::Local(l) => l.record_path_hit(p),
                Buffers::Global(g) => g.record_path_hit(p),
            }
            return PageOutcome::Acquired;
        }

        let upid = self.upid(tree, page);
        let mem_local = self.cfg.platform.cost.mem_local_page;
        let mem_remote = self.cfg.platform.cost.mem_remote_page;
        let lock = self.cfg.platform.cost.global_lock;
        enum Outcome {
            HitLocal,
            HitRemote,
            WaitInFlight,
            Miss,
        }
        let outcome = match &mut self.buffers {
            Buffers::Local(l) => {
                if l.access(p, upid) {
                    Outcome::HitLocal
                } else {
                    // Private buffers: always read from disk yourself.
                    Outcome::Miss
                }
            }
            Buffers::Global(g) => {
                *now += lock;
                match g.access(p, upid) {
                    GlobalAccess::HitLocal => Outcome::HitLocal,
                    GlobalAccess::HitRemote { .. } => Outcome::HitRemote,
                    GlobalAccess::InFlight { .. } => Outcome::WaitInFlight,
                    GlobalAccess::Miss => Outcome::Miss,
                }
            }
        };
        match outcome {
            Outcome::HitLocal => {
                *now += mem_local;
                PageOutcome::Acquired
            }
            Outcome::HitRemote => {
                *now += mem_remote;
                PageOutcome::Acquired
            }
            Outcome::WaitInFlight => {
                let done = *self
                    .in_flight_done
                    .get(&upid)
                    .expect("in-flight read must have a completion time");
                // Wait for the other processor's read, then pull the page
                // over the interconnect.
                PageOutcome::Blocked(done.max(*now) + mem_remote)
            }
            Outcome::Miss => {
                let service = self.service_time(tree, page);
                self.count_read(tree, page);
                let disk = upid.index() % self.cfg.num_disks;
                let done = self.disks.request(disk, *now, service);
                self.disk_stats.record(disk, service);
                if matches!(self.buffers, Buffers::Global(_)) {
                    self.in_flight_done.insert(upid, done);
                }
                self.procs[p].fetch_done = Some(upid);
                PageOutcome::Blocked(done)
            }
        }
    }

    fn count_read(&mut self, tree: u8, page: PageId) {
        if self.level_of(tree, page) == 0 {
            self.data_reads += 1;
        } else {
            self.dir_reads += 1;
        }
    }

    /// Executes the kernel on a pair whose pages are in memory.
    fn process_pair(&mut self, p: usize, pair: &TaskPair, now: &mut Nanos) {
        let na = self.a.node(pair.a);
        let nb = self.b.node(pair.b);
        self.child_buf.clear();
        self.cand_buf.clear();
        let pair = if self.cfg.use_restriction {
            *pair
        } else {
            // Ablation: drop the search-space restriction.
            TaskPair {
                window: psj_geom::Rect::new(
                    f64::NEG_INFINITY,
                    f64::NEG_INFINITY,
                    f64::INFINITY,
                    f64::INFINITY,
                ),
                ..*pair
            }
        };
        let pair = &pair;
        let work = expand_pair(
            na,
            nb,
            pair,
            &mut self.scratch,
            &mut self.child_buf,
            &mut self.cand_buf,
        );
        let cost = &self.cfg.platform.cost;
        *now += cost.sweep_time(work.entries, work.pairs);

        if !self.child_buf.is_empty() {
            // Depth-first in sweep order: push in reverse.
            let proc = &mut self.procs[p];
            proc.stack.extend(self.child_buf.drain(..).rev());
            self.work_version += 1;
        }
        for c in &self.cand_buf {
            let ea = self.a.node(c.page_a).data_entries()[c.idx_a as usize];
            let eb = self.b.node(c.page_b).data_entries()[c.idx_b as usize];
            *now += cost.refinement_time(&ea.mbr, &eb.mbr);
            self.candidates += 1;
            if self.cfg.collect_candidates {
                self.collected.push((ea.oid, eb.oid));
            }
        }
    }

    /// Load report of processor `v`: highest level with unprocessed pairs
    /// and their count at that level (the paper's `(hl, ns)`), restricted to
    /// what the reassignment policy allows. `None` when nothing is stealable.
    fn stealable_load(&self, v: usize) -> Option<(u8, usize)> {
        let proc = &self.procs[v];
        if !proc.workload.is_empty() {
            let hl = proc.workload.iter().map(|t| t.level()).max().unwrap();
            let ns = proc.workload.iter().filter(|t| t.level() == hl).count();
            if ns >= self.cfg.min_steal.max(1) {
                return Some((hl, ns));
            }
        }
        if self.cfg.reassignment == Reassignment::AllLevels && !proc.stack.is_empty() {
            let hl = proc.stack.iter().map(|t| t.level()).max().unwrap();
            let ns = proc.stack.iter().filter(|t| t.level() == hl).count();
            if ns >= self.cfg.min_steal.max(1) {
                return Some((hl, ns));
            }
        }
        None
    }

    /// Attempts one task reassignment to idle processor `p`.
    fn try_steal(&mut self, p: usize, now: &mut Nanos) -> bool {
        // Prefer the buddy ("help is given again to its 'buddy'").
        let victim = match self.procs[p].buddy {
            Some(b) if b != p && self.stealable_load(b).is_some() => Some(b),
            _ => {
                self.procs[p].buddy = None;
                self.pick_victim(p)
            }
        };
        let Some(v) = victim else {
            self.steals_failed += 1;
            return false;
        };
        let Some((hl, ns)) = self.stealable_load(v) else {
            self.steals_failed += 1;
            return false;
        };

        *now += self.cfg.platform.cost.reassign_overhead;
        let take = ns.div_ceil(2);
        let victim_proc = &mut self.procs[v];
        let mut stolen: Vec<TaskPair> = Vec::with_capacity(take);
        if !victim_proc.workload.is_empty() {
            // Steal the back half of the unstarted workload (latest in
            // plane-sweep order).
            for _ in 0..take {
                if let Some(t) = victim_proc.workload.pop_back() {
                    stolen.push(t);
                }
            }
            stolen.reverse(); // keep plane-sweep order for the thief
        } else {
            // Steal pairs at the highest level from the *bottom* of the
            // victim's stack — the ones farthest in sweep order.
            let mut taken = 0usize;
            let mut kept = Vec::with_capacity(victim_proc.stack.len());
            for item in std::mem::take(&mut victim_proc.stack) {
                if taken < take && item.level() == hl {
                    stolen.push(item);
                    taken += 1;
                } else {
                    kept.push(item);
                }
            }
            victim_proc.stack = kept;
        }
        debug_assert!(!stolen.is_empty());
        // The thief executes the stolen pairs as a fresh workload.
        self.procs[p].workload.extend(stolen);
        self.procs[p].buddy = Some(v);
        self.procs[v].buddy = Some(p);
        self.reassignments += 1;
        self.work_version += 1;
        true
    }

    fn pick_victim(&mut self, p: usize) -> Option<usize> {
        let candidates: Vec<(usize, (u8, usize))> = (0..self.procs.len())
            .filter(|&v| v != p)
            .filter_map(|v| self.stealable_load(v).map(|l| (v, l)))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.cfg.victim {
            VictimSelection::MostLoaded => candidates
                .into_iter()
                .max_by_key(|&(v, (hl, ns))| (hl, ns, usize::MAX - v))
                .map(|(v, _)| v),
            VictimSelection::Arbitrary => {
                let i = self.rng.random_range(0..candidates.len());
                Some(candidates[i].0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::join_candidates;
    use psj_geom::Rect;
    use psj_rtree::RTree;
    use std::collections::BTreeSet;

    fn tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 30) as f64 + offset;
            let y = (i / 30) as f64 + offset;
            t.insert(Rect::new(x, y, x + 1.1, y + 1.1), i as u64);
        }
        PagedTree::freeze(&t, |_| None)
    }

    fn all_variants(n: usize) -> Vec<SimConfig> {
        let mut v = vec![
            SimConfig::lsr(n, n, 64),
            SimConfig::gsrr(n, n, 64),
            SimConfig::gd(n, n, 64),
            SimConfig::best(n, n, 64),
        ];
        for c in &mut v {
            c.collect_candidates = true;
        }
        // Extra coverage: no reassignment, arbitrary victim.
        let mut none = SimConfig::lsr(n, n, 64);
        none.reassignment = Reassignment::None;
        none.collect_candidates = true;
        v.push(none);
        let mut arb = SimConfig::best(n, n, 64);
        arb.victim = VictimSelection::Arbitrary;
        arb.collect_candidates = true;
        v.push(arb);
        v
    }

    fn as_set(v: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
        v.iter().copied().collect()
    }

    #[test]
    fn all_variants_match_sequential_join() {
        let a = tree(700, 0.0);
        let b = tree(700, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        assert!(!want.is_empty());
        for cfg in all_variants(4) {
            let res = run_sim_join(&a, &b, &cfg);
            let got = as_set(res.candidates.as_ref().unwrap());
            assert_eq!(
                got, want,
                "variant {:?}/{:?}/{:?}",
                cfg.buffer_org, cfg.assignment, cfg.reassignment
            );
            assert_eq!(
                res.metrics.candidates as usize,
                res.candidates.unwrap().len()
            );
        }
    }

    #[test]
    fn single_processor_works() {
        let a = tree(400, 0.0);
        let b = tree(400, 0.4);
        let mut cfg = SimConfig::best(1, 1, 32);
        cfg.collect_candidates = true;
        let res = run_sim_join(&a, &b, &cfg);
        assert_eq!(
            as_set(res.candidates.as_ref().unwrap()),
            as_set(&join_candidates(&a, &b).candidates)
        );
        assert!(res.metrics.response_time > 0);
        assert_eq!(res.metrics.proc_finish.len(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = tree(500, 0.0);
        let b = tree(500, 0.3);
        let cfg = SimConfig::best(6, 6, 48);
        let r1 = run_sim_join(&a, &b, &cfg);
        let r2 = run_sim_join(&a, &b, &cfg);
        assert_eq!(r1.metrics.response_time, r2.metrics.response_time);
        assert_eq!(r1.metrics.disk_accesses, r2.metrics.disk_accesses);
        assert_eq!(r1.metrics.proc_finish, r2.metrics.proc_finish);
    }

    #[test]
    fn more_processors_do_not_increase_response_time_with_enough_disks() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let r1 = run_sim_join(&a, &b, &SimConfig::best(1, 1, 400)).metrics;
        let r8 = run_sim_join(&a, &b, &SimConfig::best(8, 8, 400)).metrics;
        assert!(
            r8.response_time < r1.response_time,
            "8 procs ({}) not faster than 1 ({})",
            r8.response_time,
            r1.response_time
        );
        // Speed-up must be substantial (> 2×) on this embarrassingly
        // parallel workload.
        assert!(r1.response_time as f64 / r8.response_time as f64 > 2.0);
    }

    #[test]
    fn single_disk_is_a_bottleneck() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let small_buf = 16; // force heavy disk traffic
        let d1 = run_sim_join(&a, &b, &SimConfig::best(8, 1, small_buf)).metrics;
        let d8 = run_sim_join(&a, &b, &SimConfig::best(8, 8, small_buf)).metrics;
        assert!(
            d8.response_time < d1.response_time,
            "8 disks ({}) not faster than 1 disk ({})",
            d8.response_time,
            d1.response_time
        );
    }

    #[test]
    fn global_buffer_reads_fewer_pages_than_local() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let lsr = run_sim_join(&a, &b, &SimConfig::lsr(8, 8, 128)).metrics;
        let gd = run_sim_join(&a, &b, &SimConfig::gd(8, 8, 128)).metrics;
        assert!(
            gd.disk_accesses <= lsr.disk_accesses,
            "gd {} > lsr {}",
            gd.disk_accesses,
            lsr.disk_accesses
        );
    }

    #[test]
    fn reassignment_reduces_finish_spread() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let mut without = SimConfig::lsr(8, 8, 128);
        without.reassignment = Reassignment::None;
        let with_all = SimConfig {
            reassignment: Reassignment::AllLevels,
            ..without.clone()
        };
        let m0 = run_sim_join(&a, &b, &without).metrics;
        let m2 = run_sim_join(&a, &b, &with_all).metrics;
        let spread0 = m0.max_finish_secs() - m0.min_finish_secs();
        let spread2 = m2.max_finish_secs() - m2.min_finish_secs();
        assert!(m2.reassignments > 0, "no reassignment happened");
        assert!(
            spread2 <= spread0 + 1e-9,
            "reassignment widened the spread: {spread2} vs {spread0}"
        );
        assert!(m2.response_time <= m0.response_time);
    }

    #[test]
    fn disk_accesses_equal_buffer_misses() {
        let a = tree(600, 0.0);
        let b = tree(600, 0.4);
        for cfg in all_variants(4) {
            let m = run_sim_join(&a, &b, &cfg).metrics;
            assert_eq!(m.disk_accesses, m.buffer.misses, "{:?}", cfg.buffer_org);
            assert_eq!(m.disk_accesses, m.dir_page_reads + m.data_page_reads);
        }
    }

    #[test]
    fn empty_join() {
        let a = tree(50, 0.0);
        let b = tree(50, 10_000.0);
        let mut cfg = SimConfig::best(4, 4, 32);
        cfg.collect_candidates = true;
        let res = run_sim_join(&a, &b, &cfg);
        assert_eq!(res.metrics.candidates, 0);
        assert!(res.candidates.unwrap().is_empty());
    }

    #[test]
    fn more_processors_than_tasks_terminates() {
        // Tiny trees: few tasks, many processors — idle processors must park
        // cleanly and the join must still be complete and correct.
        let a = tree(60, 0.0);
        let b = tree(60, 0.4);
        let want = as_set(&join_candidates(&a, &b).candidates);
        for assignment in [
            Assignment::StaticRange,
            Assignment::StaticRoundRobin,
            Assignment::Dynamic,
        ] {
            let mut cfg = SimConfig::best(16, 4, 64);
            cfg.assignment = assignment;
            cfg.collect_candidates = true;
            let res = run_sim_join(&a, &b, &cfg);
            assert_eq!(
                as_set(res.candidates.as_ref().unwrap()),
                want,
                "{assignment:?}"
            );
        }
    }

    #[test]
    fn min_tasks_factor_descends_the_trees() {
        // Height-3 trees so there is a directory level to descend into.
        let a = tree(4000, 0.0);
        let b = tree(4000, 0.4);
        assert!(a.height() >= 3);
        let coarse = SimConfig {
            min_tasks_factor: 1,
            ..SimConfig::best(2, 2, 64)
        };
        let fine = SimConfig {
            min_tasks_factor: 64,
            ..SimConfig::best(2, 2, 64)
        };
        let mc = run_sim_join(&a, &b, &coarse).metrics;
        let mf = run_sim_join(&a, &b, &fine).metrics;
        assert!(mf.tasks > mc.tasks, "{} !> {}", mf.tasks, mc.tasks);
        assert_eq!(
            mc.candidates, mf.candidates,
            "task granularity must not change the result"
        );
    }

    #[test]
    fn arbitrary_victim_seed_changes_schedule_not_result() {
        let a = tree(700, 0.0);
        let b = tree(700, 0.4);
        let mk = |seed| SimConfig {
            victim: VictimSelection::Arbitrary,
            seed,
            collect_candidates: true,
            ..SimConfig::lsr(8, 8, 64)
        };
        let r1 = run_sim_join(&a, &b, &mk(1));
        let r2 = run_sim_join(&a, &b, &mk(2));
        assert_eq!(
            as_set(r1.candidates.as_ref().unwrap()),
            as_set(r2.candidates.as_ref().unwrap())
        );
    }

    #[test]
    fn path_buffer_absorbs_repeat_accesses() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let with = run_sim_join(&a, &b, &SimConfig::best(4, 4, 64)).metrics;
        let without = run_sim_join(
            &a,
            &b,
            &SimConfig {
                use_path_buffer: false,
                ..SimConfig::best(4, 4, 64)
            },
        )
        .metrics;
        assert!(with.buffer.hits_path > 0);
        assert_eq!(without.buffer.hits_path, 0);
        assert_eq!(with.candidates, without.candidates);
        // Everything the path buffer absorbed shows up as buffer requests.
        assert!(without.buffer.requests() > with.buffer.requests());
    }

    #[test]
    fn larger_buffer_never_reads_more() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let small = run_sim_join(&a, &b, &SimConfig::gd(8, 8, 32)).metrics;
        let large = run_sim_join(&a, &b, &SimConfig::gd(8, 8, 1024)).metrics;
        assert!(large.disk_accesses <= small.disk_accesses);
    }
}
