//! Morsel planning — phase 1½ of the parallel join.
//!
//! Phase 1 ([`crate::task::create_tasks`]) produces tasks in local
//! plane-sweep order, but their costs are wildly skewed: a task near the
//! dense center of two maps can hold orders of magnitude more candidates
//! than one at the fringe, and a static split over *counts* of such tasks
//! loses the paper's speedup to stragglers. The planner therefore regroups
//! the task list into **morsels**: contiguous runs of tasks whose *estimated
//! candidate count* ([`CandidateEstimator`]) adds up to roughly one budget.
//! Oversized tasks are split one tree level at a time (their children stay
//! contiguous in plane-sweep order, so execution order — and therefore the
//! merged output order — is unchanged); undersized neighbors are packed
//! together so scheduling overhead stays amortized.
//!
//! Morsels are numbered in plane-sweep order. The native executor merges
//! worker-local outputs in morsel-id order, which makes the parallel result
//! byte-identical to the sequential oracle regardless of which worker ran
//! which morsel or in what interleaving (see `DESIGN.md` §11).

use crate::cost::CandidateEstimator;
use crate::task::{expand_pair, KernelScratch, TaskPair};
use psj_rtree::PagedTree;
use serde::{Deserialize, Serialize};

/// How an idle worker picks the victim of a morsel reassignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StealPolicy {
    /// The victim with the most remaining estimated work (live `(remaining
    /// candidates, remaining morsels)` stats) — the paper's reassignment
    /// heuristic of helping the most loaded processor.
    Busiest,
    /// Probe victims round-robin from the thief's own id (the old
    /// behavior; kept for comparison benchmarks).
    RoundRobin,
    /// Probe victims in the order of the seeded
    /// [`psj_desim::StealOrder`] shim — used by tests to force
    /// adversarial steal interleavings reproducibly.
    Seeded,
}

impl StealPolicy {
    /// Short name used in CLI flags and experiment output.
    pub fn short(&self) -> &'static str {
        match self {
            StealPolicy::Busiest => "busiest",
            StealPolicy::RoundRobin => "rr",
            StealPolicy::Seeded => "seeded",
        }
    }

    /// Parses a CLI spelling (`busiest`, `rr`/`round-robin`, `seeded`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "busiest" => Some(StealPolicy::Busiest),
            "rr" | "round-robin" => Some(StealPolicy::RoundRobin),
            "seeded" => Some(StealPolicy::Seeded),
            _ => None,
        }
    }
}

/// One morsel: a contiguous run of tasks (in plane-sweep order) sized to
/// roughly one candidate budget.
#[derive(Debug, Clone)]
pub struct Morsel {
    /// Position in plane-sweep order; doubles as the merge key.
    pub id: u32,
    /// The tasks, in plane-sweep order. Never empty.
    pub tasks: Vec<TaskPair>,
    /// Estimated filter-step candidates (≥ 1).
    pub est: u64,
}

/// Planner tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MorselOptions {
    /// Target estimated candidates per morsel; `0` = auto: the total
    /// estimate split into [`MORSELS_PER_WORKER`] morsels per worker,
    /// clamped to `[`[`AUTO_BUDGET_MIN`]`, `[`AUTO_BUDGET_MAX`]`]`.
    pub budget: u64,
    /// Workers the auto budget divides work over.
    pub workers: usize,
    /// How many tree levels an oversized task may be split down. `0`
    /// disables splitting (pure packing).
    pub max_split_levels: u8,
}

/// Auto-budget morsels per worker: enough slack for reassignment to
/// flatten skew, few enough that per-morsel overhead stays negligible.
pub const MORSELS_PER_WORKER: u64 = 16;
/// Auto-budget floor (estimated candidates).
pub const AUTO_BUDGET_MIN: u64 = 64;
/// Auto-budget ceiling (estimated candidates).
pub const AUTO_BUDGET_MAX: u64 = 65_536;
/// Default split depth for oversized tasks.
pub const MAX_SPLIT_LEVELS: u8 = 2;

impl MorselOptions {
    /// Auto budget for `workers` workers, default split depth.
    pub fn new(workers: usize) -> Self {
        MorselOptions {
            budget: 0,
            workers: workers.max(1),
            max_split_levels: MAX_SPLIT_LEVELS,
        }
    }
}

/// Result of morsel planning.
#[derive(Debug, Clone)]
pub struct MorselPlan {
    /// The morsels, ids `0..n` in plane-sweep order.
    pub morsels: Vec<Morsel>,
    /// The budget actually used (resolved auto budget).
    pub budget: u64,
    /// Total estimated candidates over all phase-1 tasks (pre-split).
    pub total_est: u64,
    /// Node pairs expanded while splitting oversized tasks.
    pub split_expansions: u64,
}

impl MorselPlan {
    /// Per-morsel estimates in id order — the cost vector fed to
    /// [`psj_desim::simulate_schedule`].
    pub fn cost_vector(&self) -> Vec<u64> {
        self.morsels.iter().map(|m| m.est).collect()
    }
}

/// A task is split when its estimate exceeds this multiple of the budget;
/// between 1× and 2× it is simply packed alone.
const SPLIT_FACTOR: f64 = 2.0;

/// Plans morsels for `tasks` (phase-1 output, plane-sweep order).
pub fn morselize(
    a: &PagedTree,
    b: &PagedTree,
    tasks: &[TaskPair],
    est: &CandidateEstimator,
    opts: &MorselOptions,
) -> MorselPlan {
    let rate = |t: &TaskPair| {
        let na = a.node(t.a);
        let nb = b.node(t.b);
        est.estimate(
            na.len(),
            t.la,
            &na.mbr(),
            nb.len(),
            t.lb,
            &nb.mbr(),
            &t.window,
        )
    };
    let rated: Vec<(TaskPair, f64)> = tasks.iter().map(|t| (*t, rate(t))).collect();
    let total: f64 = rated.iter().map(|(_, e)| e).sum();
    let budget = if opts.budget > 0 {
        opts.budget
    } else {
        let per = total / (opts.workers.max(1) as u64 * MORSELS_PER_WORKER) as f64;
        (per.round() as u64).clamp(AUTO_BUDGET_MIN, AUTO_BUDGET_MAX)
    };

    // Split pass: depth-first in order, so children replace their parent
    // in place and the unit stream stays in plane-sweep order.
    let split_threshold = budget as f64 * SPLIT_FACTOR;
    let mut units: Vec<(TaskPair, f64)> = Vec::with_capacity(rated.len());
    let mut stack: Vec<(TaskPair, f64, u8)> =
        rated.into_iter().rev().map(|(t, e)| (t, e, 0u8)).collect();
    let mut scratch = KernelScratch::default();
    let mut children: Vec<TaskPair> = Vec::new();
    let mut cands = Vec::new();
    let mut split_expansions = 0u64;
    while let Some((t, e, depth)) = stack.pop() {
        if e > split_threshold && t.level() > 0 && depth < opts.max_split_levels {
            children.clear();
            let na = a.node(t.a);
            let nb = b.node(t.b);
            expand_pair(na, nb, &t, &mut scratch, &mut children, &mut cands);
            split_expansions += 1;
            debug_assert!(
                cands.is_empty(),
                "split above leaf level yields no candidates"
            );
            for c in children.drain(..).rev() {
                let ce = rate(&c);
                stack.push((c, ce, depth + 1));
            }
        } else {
            units.push((t, e));
        }
    }

    // Pack pass: greedy contiguous next-fit. A morsel exceeds the budget
    // only when it holds exactly one (unsplittable or depth-limited) task.
    let mut morsels: Vec<Morsel> = Vec::new();
    let mut cur_tasks: Vec<TaskPair> = Vec::new();
    let mut cur_est = 0.0f64;
    let flush = |tasks: &mut Vec<TaskPair>, est: &mut f64, morsels: &mut Vec<Morsel>| {
        if !tasks.is_empty() {
            morsels.push(Morsel {
                id: morsels.len() as u32,
                tasks: std::mem::take(tasks),
                est: (est.round() as u64).max(1),
            });
            *est = 0.0;
        }
    };
    for (t, e) in units {
        if !cur_tasks.is_empty() && cur_est + e > budget as f64 {
            flush(&mut cur_tasks, &mut cur_est, &mut morsels);
        }
        cur_tasks.push(t);
        cur_est += e;
    }
    flush(&mut cur_tasks, &mut cur_est, &mut morsels);

    MorselPlan {
        morsels,
        budget,
        total_est: total.round() as u64,
        split_expansions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psj_geom::Rect;
    use psj_rtree::RTree;

    fn grid_tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 30) as f64 + offset;
            let y = (i / 30) as f64 + offset;
            t.insert(Rect::new(x, y, x + 1.1, y + 1.1), i as u64);
        }
        PagedTree::freeze(&t, |_| None)
    }

    fn plan(n: usize, budget: u64, split: u8) -> (PagedTree, PagedTree, MorselPlan) {
        let a = grid_tree(n, 0.0);
        let b = grid_tree(n, 0.4);
        let tc = crate::task::create_tasks(&a, &b, 8);
        let est = CandidateEstimator::new(&a, &b);
        let opts = MorselOptions {
            budget,
            workers: 4,
            max_split_levels: split,
        };
        let p = morselize(&a, &b, &tc.tasks, &est, &opts);
        (a, b, p)
    }

    #[test]
    fn morsels_cover_all_tasks_in_order_without_splitting() {
        let a = grid_tree(900, 0.0);
        let b = grid_tree(900, 0.4);
        let tc = crate::task::create_tasks(&a, &b, 8);
        let est = CandidateEstimator::new(&a, &b);
        let opts = MorselOptions {
            budget: 0,
            workers: 4,
            max_split_levels: 0,
        };
        let p = morselize(&a, &b, &tc.tasks, &est, &opts);
        let flat: Vec<_> = p
            .morsels
            .iter()
            .flat_map(|m| m.tasks.iter().map(TaskPair::key))
            .collect();
        let want: Vec<_> = tc.tasks.iter().map(TaskPair::key).collect();
        assert_eq!(flat, want, "packing must preserve order and coverage");
        for (i, m) in p.morsels.iter().enumerate() {
            assert_eq!(m.id as usize, i);
            assert!(!m.tasks.is_empty());
            assert!(m.est >= 1);
        }
    }

    #[test]
    fn over_budget_morsels_are_singletons() {
        let (_, _, p) = plan(2000, 32, 1);
        for m in &p.morsels {
            assert!(
                m.est <= p.budget || m.tasks.len() == 1,
                "over-budget morsel with {} tasks (est {} > budget {})",
                m.tasks.len(),
                m.est,
                p.budget
            );
        }
    }

    #[test]
    fn splitting_produces_more_finer_morsels() {
        // min_tasks = 1 keeps phase 1 at the root pair: the only way to get
        // parallelism is the planner's own split pass.
        let a = grid_tree(2000, 0.0);
        let b = grid_tree(2000, 0.4);
        let tc = crate::task::create_tasks(&a, &b, 1);
        assert!(
            tc.tasks.iter().any(|t| t.level() > 0),
            "coarse phase 1 must leave directory-level tasks"
        );
        let est = CandidateEstimator::new(&a, &b);
        let mk = |split| {
            let opts = MorselOptions {
                budget: 64,
                workers: 4,
                max_split_levels: split,
            };
            morselize(&a, &b, &tc.tasks, &est, &opts)
        };
        let coarse = mk(0);
        let fine = mk(2);
        assert!(
            fine.split_expansions > 0,
            "a tight budget must force splits"
        );
        assert!(fine.morsels.len() > coarse.morsels.len());
    }

    #[test]
    fn auto_budget_scales_with_workers() {
        let a = grid_tree(2000, 0.0);
        let b = grid_tree(2000, 0.4);
        let tc = crate::task::create_tasks(&a, &b, 8);
        let est = CandidateEstimator::new(&a, &b);
        let p1 = morselize(&a, &b, &tc.tasks, &est, &MorselOptions::new(1));
        let p8 = morselize(&a, &b, &tc.tasks, &est, &MorselOptions::new(8));
        assert!(p8.budget <= p1.budget, "more workers, finer morsels");
        assert!(p8.morsels.len() >= p1.morsels.len());
    }

    #[test]
    fn steal_policy_round_trips_through_parse() {
        for p in [
            StealPolicy::Busiest,
            StealPolicy::RoundRobin,
            StealPolicy::Seeded,
        ] {
            assert_eq!(StealPolicy::parse(p.short()), Some(p));
        }
        assert_eq!(
            StealPolicy::parse("round-robin"),
            Some(StealPolicy::RoundRobin)
        );
        assert_eq!(StealPolicy::parse("bogus"), None);
    }

    #[test]
    fn empty_task_list_yields_empty_plan() {
        let a = grid_tree(50, 0.0);
        let b = grid_tree(50, 0.4);
        let est = CandidateEstimator::new(&a, &b);
        let p = morselize(&a, &b, &[], &est, &MorselOptions::new(4));
        assert!(p.morsels.is_empty());
        assert_eq!(p.total_est, 0);
    }
}
