//! Analytic cost estimation for a parallel join run.
//!
//! A dry traversal of the two trees yields the workload invariants — the
//! distinct pages touched, the candidate count, the total simulated
//! refinement and sweep CPU time — from which simple lower bounds on any
//! executor's response time follow:
//!
//! * disk bound: all touched pages must be read at least once, and `d`
//!   disks serve at most `d` requests in parallel;
//! * CPU bound: the total CPU work is spread over at most `n` processors.
//!
//! The estimator is useful for sizing (how many disks before the CPU
//! dominates?) and doubles as an oracle in tests: every simulated run must
//! respect these bounds, and the best variant with a large buffer should
//! approach them.

use crate::cost::Platform;
use crate::task::{create_tasks, expand_pair, Candidate, KernelScratch, TaskPair};
use psj_rtree::PagedTree;
use psj_store::{Nanos, PageId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Workload invariants and derived bounds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinEstimate {
    /// Distinct pages of tree A touched by the traversal.
    pub pages_a: u64,
    /// Distinct pages of tree B touched by the traversal.
    pub pages_b: u64,
    /// Filter-step candidate pairs.
    pub candidates: u64,
    /// Node pairs visited.
    pub node_pairs: u64,
    /// Total disk service time if every touched page is read exactly once
    /// (the cold-buffer minimum).
    pub min_disk_service: Nanos,
    /// Total CPU time: plane sweeps plus simulated refinement waits.
    pub total_cpu: Nanos,
}

impl JoinEstimate {
    /// Minimum number of disk accesses any executor needs with cold
    /// buffers: every touched page once.
    pub fn min_disk_accesses(&self) -> u64 {
        self.pages_a + self.pages_b
    }

    /// Lower bound on the response time with `n` processors and `d` disks:
    /// `max(disk service / d, CPU / n)`.
    pub fn response_lower_bound(&self, n: usize, d: usize) -> Nanos {
        let disk = self.min_disk_service / d.max(1) as u64;
        let cpu = self.total_cpu / n.max(1) as u64;
        disk.max(cpu)
    }

    /// The processor count beyond which the disks (at `d`) are the
    /// bottleneck: where the CPU bound falls below the disk bound.
    pub fn cpu_disk_crossover(&self, d: usize) -> usize {
        let disk = self.min_disk_service / d.max(1) as u64;
        if disk == 0 {
            return usize::MAX;
        }
        (self.total_cpu / disk.max(1)).max(1) as usize
    }
}

/// Computes the estimate by a dry traversal (no buffers, no clocks).
pub fn estimate_join(a: &PagedTree, b: &PagedTree, platform: &Platform) -> JoinEstimate {
    let tc = create_tasks(a, b, 1);
    let mut scratch = KernelScratch::default();
    let mut stack: Vec<TaskPair> = tc.tasks.iter().rev().copied().collect();
    let mut children: Vec<TaskPair> = Vec::new();
    let mut cands: Vec<Candidate> = Vec::new();
    let mut pages_a: BTreeSet<PageId> = tc.pages_a.iter().copied().collect();
    let mut pages_b: BTreeSet<PageId> = tc.pages_b.iter().copied().collect();
    let mut candidates = 0u64;
    let mut node_pairs = 0u64;
    let mut total_cpu: Nanos = 0;

    while let Some(pair) = stack.pop() {
        node_pairs += 1;
        pages_a.insert(pair.a);
        pages_b.insert(pair.b);
        let na = a.node(pair.a);
        let nb = b.node(pair.b);
        children.clear();
        cands.clear();
        let work = expand_pair(na, nb, &pair, &mut scratch, &mut children, &mut cands);
        total_cpu += platform.cost.sweep_time(work.entries, work.pairs);
        stack.extend(children.drain(..).rev());
        for c in &cands {
            let ea = a.node(c.page_a).data_entries()[c.idx_a as usize];
            let eb = b.node(c.page_b).data_entries()[c.idx_b as usize];
            total_cpu += platform.cost.refinement_time(&ea.mbr, &eb.mbr);
            candidates += 1;
        }
    }

    let mut min_disk_service: Nanos = 0;
    for &p in &pages_a {
        min_disk_service += if a.node(p).is_leaf() {
            platform.disk.data_page_read_time(a.clusters().bytes_of(p))
        } else {
            platform.disk.page_read_time()
        };
    }
    for &p in &pages_b {
        min_disk_service += if b.node(p).is_leaf() {
            platform.disk.data_page_read_time(b.clusters().bytes_of(p))
        } else {
            platform.disk.page_read_time()
        };
    }

    JoinEstimate {
        pages_a: pages_a.len() as u64,
        pages_b: pages_b.len() as u64,
        candidates,
        node_pairs,
        min_disk_service,
        total_cpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_sim_join, SimConfig};
    use psj_geom::Rect;
    use psj_rtree::RTree;

    fn tree(n: usize, offset: f64) -> PagedTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 30) as f64 + offset;
            let y = (i / 30) as f64 + offset;
            t.insert(Rect::new(x, y, x + 1.1, y + 1.1), i as u64);
        }
        PagedTree::freeze(&t, |_| None)
    }

    #[test]
    fn estimate_counts_match_simulation() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let platform = Platform::paper(4);
        let est = estimate_join(&a, &b, &platform);
        let m = run_sim_join(&a, &b, &SimConfig::best(4, 4, 4096)).metrics;
        assert_eq!(est.candidates, m.candidates);
        // A huge buffer reads every touched page exactly once.
        assert_eq!(est.min_disk_accesses(), m.disk_accesses);
    }

    #[test]
    fn simulated_response_respects_lower_bound() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let platform = Platform::paper(4);
        let est = estimate_join(&a, &b, &platform);
        for (n, d, buf) in [(1usize, 1usize, 16usize), (4, 4, 64), (8, 8, 4096)] {
            let m = run_sim_join(&a, &b, &SimConfig::best(n, d, buf)).metrics;
            let bound = est.response_lower_bound(n, d);
            assert!(
                m.response_time >= bound,
                "n={n} d={d}: response {} below bound {}",
                m.response_time,
                bound
            );
        }
    }

    #[test]
    fn best_variant_with_big_buffer_approaches_the_bound() {
        let a = tree(900, 0.0);
        let b = tree(900, 0.4);
        let platform = Platform::paper(8);
        let est = estimate_join(&a, &b, &platform);
        let m = run_sim_join(&a, &b, &SimConfig::best(8, 8, 4096)).metrics;
        let bound = est.response_lower_bound(8, 8) as f64;
        let ratio = m.response_time as f64 / bound;
        assert!(ratio < 2.5, "response is {ratio:.2}x the lower bound");
    }

    #[test]
    fn crossover_is_sane() {
        let a = tree(800, 0.0);
        let b = tree(800, 0.4);
        let platform = Platform::paper(1);
        let est = estimate_join(&a, &b, &platform);
        let cross = est.cpu_disk_crossover(1);
        // With one disk, a CPU-heavy workload crosses over at a small
        // processor count (the Figure 9 d=1 saturation).
        assert!(cross >= 1);
        let more_disks = est.cpu_disk_crossover(8);
        assert!(more_disks >= cross, "more disks must push the crossover up");
    }

    #[test]
    fn disjoint_join_is_free() {
        let a = tree(100, 0.0);
        let b = tree(100, 10_000.0);
        let est = estimate_join(&a, &b, &Platform::paper(1));
        assert_eq!(est.candidates, 0);
        assert_eq!(est.node_pairs, 0);
        // Only the roots were touched during task creation.
        assert_eq!(est.min_disk_accesses(), 2);
    }
}
