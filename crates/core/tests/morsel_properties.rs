//! Property tests for the morsel planner and its candidate cost model:
//! structural invariants of `morselize` over arbitrary workloads, plus a
//! reconciliation check that the planner the executor runs is the planner
//! the tests reason about.

use proptest::prelude::*;
use psj_core::{
    create_tasks, join_candidates, morselize, run_native_join, CandidateEstimator, MorselOptions,
    NativeConfig, TaskPair,
};
use psj_geom::Rect;
use psj_rtree::{PagedTree, RTree};

/// Builds a tree over unit-ish boxes at the given integer-grid points.
fn tree_from_points(pts: &[(u16, u16)], offset: f64, w: f64) -> PagedTree {
    let mut t = RTree::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (x, y) = (f64::from(x) + offset, f64::from(y) + offset);
        t.insert(Rect::new(x, y, x + w, y + w), i as u64);
    }
    PagedTree::freeze(&t, |_| None)
}

fn points() -> impl Strategy<Value = Vec<(u16, u16)>> {
    prop::collection::vec((0u16..40, 0u16..40), 60..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With splitting disabled the planner is pure packing: the flattened
    /// morsel stream must be exactly the input task stream (order and
    /// coverage), ids must be sequential, and no morsel may be empty.
    #[test]
    fn packing_preserves_order_and_coverage(
        pts_a in points(),
        pts_b in points(),
        budget in 1u64..4096,
    ) {
        let a = tree_from_points(&pts_a, 0.0, 1.4);
        let b = tree_from_points(&pts_b, 0.5, 1.4);
        let tc = create_tasks(&a, &b, 8);
        let est = CandidateEstimator::new(&a, &b);
        let opts = MorselOptions { budget, workers: 4, max_split_levels: 0 };
        let plan = morselize(&a, &b, &tc.tasks, &est, &opts);

        let flat: Vec<_> = plan
            .morsels
            .iter()
            .flat_map(|m| m.tasks.iter().map(TaskPair::key))
            .collect();
        let want: Vec<_> = tc.tasks.iter().map(TaskPair::key).collect();
        prop_assert_eq!(flat, want, "packing lost, duplicated, or reordered tasks");
        for (i, m) in plan.morsels.iter().enumerate() {
            prop_assert_eq!(m.id as usize, i, "ids must be sequential");
            prop_assert!(!m.tasks.is_empty(), "no morsel may be empty");
            prop_assert!(m.est >= 1, "estimates clamp to at least 1");
        }
    }

    /// Pure packing is monotone in the budget: shrinking the budget can
    /// only produce more (finer) morsels, never fewer. (With splitting
    /// enabled this need not hold — splitting re-rates children, and the
    /// child estimates do not have to sum to the parent's.)
    #[test]
    fn morsel_count_is_monotone_in_budget(
        pts_a in points(),
        pts_b in points(),
        lo in 1u64..2048,
        delta in 1u64..2048,
    ) {
        let a = tree_from_points(&pts_a, 0.0, 1.4);
        let b = tree_from_points(&pts_b, 0.5, 1.4);
        let tc = create_tasks(&a, &b, 8);
        let est = CandidateEstimator::new(&a, &b);
        let mk = |budget| {
            let opts = MorselOptions { budget, workers: 4, max_split_levels: 0 };
            morselize(&a, &b, &tc.tasks, &est, &opts).morsels.len()
        };
        prop_assert!(
            mk(lo) >= mk(lo + delta),
            "tighter budget must not produce fewer morsels"
        );
    }

    /// A morsel may exceed the budget only when packing could not help:
    /// it holds exactly one (unsplittable or depth-limited) task. Holds at
    /// every split depth, including zero.
    #[test]
    fn over_budget_morsels_are_singletons(
        pts_a in points(),
        pts_b in points(),
        budget in 1u64..256,
        split in 0u8..3,
    ) {
        let a = tree_from_points(&pts_a, 0.0, 1.4);
        let b = tree_from_points(&pts_b, 0.5, 1.4);
        let tc = create_tasks(&a, &b, 4);
        let est = CandidateEstimator::new(&a, &b);
        let opts = MorselOptions { budget, workers: 4, max_split_levels: split };
        let plan = morselize(&a, &b, &tc.tasks, &est, &opts);
        for m in &plan.morsels {
            prop_assert!(
                m.est <= plan.budget || m.tasks.len() == 1,
                "over-budget morsel with {} tasks (est {} > budget {})",
                m.tasks.len(),
                m.est,
                plan.budget
            );
        }
    }

    /// The auto budget never leaves the documented clamp range, so morsel
    /// counts stay bounded on degenerate workloads.
    #[test]
    fn auto_budget_stays_in_clamp_range(
        pts_a in points(),
        pts_b in points(),
        workers in 1usize..16,
    ) {
        let a = tree_from_points(&pts_a, 0.0, 1.4);
        let b = tree_from_points(&pts_b, 0.5, 1.4);
        let tc = create_tasks(&a, &b, 8);
        let est = CandidateEstimator::new(&a, &b);
        let plan = morselize(&a, &b, &tc.tasks, &est, &MorselOptions::new(workers));
        prop_assert!(plan.budget >= psj_core::morsel::AUTO_BUDGET_MIN);
        prop_assert!(plan.budget <= psj_core::morsel::AUTO_BUDGET_MAX);
    }
}

/// The planner the executor runs is the planner `morselize` describes —
/// same inputs, same plan — and the cost model's aggregate estimate lands
/// within a sane multiplicative band of the measured candidate count, so
/// morsel budgets expressed in "estimated candidates" stay meaningful.
#[test]
fn executor_plan_and_aggregate_estimate_reconcile_with_measurement() {
    let mk = |n: usize, off: f64| {
        let pts: Vec<(u16, u16)> = (0..n).map(|i| ((i % 50) as u16, (i / 50) as u16)).collect();
        tree_from_points(&pts, off, 1.3)
    };
    let a = mk(2000, 0.0);
    let b = mk(1800, 0.45);

    let mut cfg = NativeConfig::new(4);
    cfg.refine = false;
    let res = run_native_join(&a, &b, &cfg);

    // Mirror the executor's phase 1/1½ inputs exactly.
    let tc = create_tasks(&a, &b, cfg.min_tasks_factor * cfg.num_threads);
    let est = CandidateEstimator::new(&a, &b);
    let mut opts = MorselOptions::new(cfg.num_threads);
    opts.budget = cfg.morsel_candidates;
    let plan = morselize(&a, &b, &tc.tasks, &est, &opts);
    assert_eq!(
        plan.morsels.len(),
        res.morsels,
        "executor must run the documented planner"
    );

    // Measured truth, twice over: the run's counter and the oracle agree.
    let measured = join_candidates(&a, &b).candidates.len() as u64;
    assert_eq!(res.candidates as u64, measured);
    assert!(measured > 0, "degenerate workload");

    // The estimator is a planning heuristic, not a promise — but if the
    // aggregate drifts beyond a factor of 16 the budget knob is lying.
    let est_total = plan.total_est.max(1);
    let ratio = est_total as f64 / measured as f64;
    assert!(
        (1.0 / 16.0..=16.0).contains(&ratio),
        "aggregate estimate {est_total} vs measured {measured} (ratio {ratio:.3})"
    );

    // Per-morsel estimates sum to within rounding of the plan total when
    // nothing was split (each unit keeps its phase-1 estimate).
    if plan.split_expansions == 0 {
        let sum: u64 = plan.morsels.iter().map(|m| m.est).sum();
        let drift = sum.abs_diff(plan.total_est);
        assert!(
            drift <= plan.morsels.len() as u64,
            "per-morsel rounding drifted: sum {sum} vs total {}",
            plan.total_est
        );
    }
}
