//! Property tests for the partition engine's two correctness pillars:
//!
//! * **grid coverage** — every intersecting pair of input rectangles shares
//!   at least one cell, and in particular both items land in the pair's
//!   reference-point *owner* cell, so no result can be lost to the grid;
//! * **reference-point dedup** — exactly one cell owns each pair, so no
//!   result can be reported twice, with no hash table needed to prove it.
//!
//! Plus end-to-end closures: the full engine equals the brute-force
//! quadratic join on arbitrary rectangle soups, and the plan's replication
//! counters reconcile with the placement lists they summarize.

use proptest::prelude::*;
use psj_core::partition::grid::{plan_grid, CellIndex, GridPlan, ItemStats};
use psj_core::{run_partition_join, NativeConfig, PartitionInput, RectItem};
use psj_geom::Rect;

/// Rectangle soup over a [0, 40)² universe with non-degenerate extents.
fn rects() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec(
        (0u16..400, 0u16..400, 1u16..40, 1u16..40).prop_map(|(x, y, w, h)| {
            Rect::new(
                f64::from(x) / 10.0,
                f64::from(y) / 10.0,
                f64::from(x) / 10.0 + f64::from(w) / 10.0,
                f64::from(y) / 10.0 + f64::from(h) / 10.0,
            )
        }),
        40..250,
    )
}

/// Plans a grid over both inputs the way the executor does (intersection
/// universe; items outside it cannot contribute a pair).
fn plan(a: &[Rect], b: &[Rect], workers: usize) -> Option<GridPlan> {
    let sa = ItemStats::scan(a);
    let sb = ItemStats::scan(b);
    let (ra, rb) = (sa.bbox?, sb.bbox?);
    if !ra.intersects(&rb) {
        return None;
    }
    let universe = Rect {
        xl: ra.xl.max(rb.xl),
        yl: ra.yl.max(rb.yl),
        xu: ra.xu.min(rb.xu),
        yu: ra.yu.min(rb.yu),
    };
    Some(plan_grid(universe, &sa, &sb, workers))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Grid coverage: for every intersecting pair, the owner cell (the one
    /// holding the bottom-left corner of the MBR intersection) appears in
    /// BOTH sides' placement lists — the per-cell sweep that runs there
    /// sees both items, so the pair cannot be lost.
    #[test]
    fn every_intersecting_pair_shares_its_owner_cell(
        a in rects(),
        b in rects(),
        workers in 1usize..9,
    ) {
        let Some(grid) = plan(&a, &b, workers) else { return Ok(()); };
        let idx_a = CellIndex::build(&grid, &a);
        let idx_b = CellIndex::build(&grid, &b);
        // Invert the CSR into per-item cell sets once.
        let cells_of = |idx: &CellIndex, n: usize| {
            let mut cells = vec![Vec::new(); n];
            for c in 0..grid.cells() {
                for &i in idx.cell(c) {
                    cells[i as usize].push(c);
                }
            }
            cells
        };
        let cells_a = cells_of(&idx_a, a.len());
        let cells_b = cells_of(&idx_b, b.len());
        for (i, ra) in a.iter().enumerate() {
            for (j, rb) in b.iter().enumerate() {
                if !ra.intersects(rb) {
                    continue;
                }
                let owner = grid.owner_cell(ra, rb) as usize;
                prop_assert!(
                    cells_a[i].contains(&owner) && cells_b[j].contains(&owner),
                    "pair ({i},{j}) owner cell {owner} missing a side \
                     (a in {:?}, b in {:?})",
                    cells_a[i],
                    cells_b[j]
                );
            }
        }
    }

    /// Reference-point dedup: replaying the executor's per-cell loop —
    /// every cell, every co-located pair, count it when this cell is the
    /// owner — reports each intersecting pair exactly once, even though
    /// replication makes many pairs co-located in several cells.
    #[test]
    fn reference_point_reports_each_pair_exactly_once(
        a in rects(),
        b in rects(),
        workers in 1usize..9,
    ) {
        let Some(grid) = plan(&a, &b, workers) else { return Ok(()); };
        let idx_a = CellIndex::build(&grid, &a);
        let idx_b = CellIndex::build(&grid, &b);
        let mut reported = vec![0u32; a.len() * b.len()];
        for c in 0..grid.cells() {
            for &i in idx_a.cell(c) {
                for &j in idx_b.cell(c) {
                    let (ra, rb) = (&a[i as usize], &b[j as usize]);
                    if ra.intersects(rb) && grid.owner_cell(ra, rb) as usize == c {
                        reported[i as usize * b.len() + j as usize] += 1;
                    }
                }
            }
        }
        for (i, ra) in a.iter().enumerate() {
            for (j, rb) in b.iter().enumerate() {
                let want = u32::from(ra.intersects(rb));
                prop_assert_eq!(
                    reported[i * b.len() + j],
                    want,
                    "pair ({}, {}) reported {} times (want {})",
                    i, j, reported[i * b.len() + j], want
                );
            }
        }
    }

    /// End-to-end: the full partition engine on raw rectangle streams
    /// equals the brute-force quadratic join, at several thread counts.
    #[test]
    fn engine_equals_brute_force_on_rect_soups(
        a in rects(),
        b in rects(),
        threads in 1usize..5,
    ) {
        let items = |v: &[Rect]| -> Vec<RectItem> {
            v.iter()
                .enumerate()
                .map(|(i, &mbr)| RectItem { mbr, oid: i as u64 })
                .collect()
        };
        let (ia, ib) = (items(&a), items(&b));
        let mut want: Vec<(u64, u64)> = Vec::new();
        for (i, ra) in a.iter().enumerate() {
            for (j, rb) in b.iter().enumerate() {
                if ra.intersects(rb) {
                    want.push((i as u64, j as u64));
                }
            }
        }
        want.sort_unstable();
        let mut cfg = NativeConfig::new(threads);
        cfg.refine = false;
        let res = run_partition_join(
            PartitionInput::Rects(&ia),
            PartitionInput::Rects(&ib),
            &cfg,
        );
        let mut got = res.pairs.clone();
        got.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(res.candidates as usize, res.pairs.len());
    }

    /// The CSR's per-cell replica counters reconcile with the placement
    /// lists: replicas[c] counts exactly the items in cell c whose home
    /// (first-overlapped) cell is some other cell.
    #[test]
    fn replica_counters_reconcile_with_placements(
        a in rects(),
        b in rects(),
    ) {
        let Some(grid) = plan(&a, &b, 4) else { return Ok(()); };
        for side in [&a, &b] {
            let idx = CellIndex::build(&grid, side);
            for c in 0..grid.cells() {
                let non_home = idx
                    .cell(c)
                    .iter()
                    .filter(|&&i| {
                        let r = &side[i as usize];
                        let (cx0, _, cy0, _) = grid.cell_range(r);
                        grid.cell_id(cx0, cy0) as usize != c
                    })
                    .count();
                prop_assert_eq!(
                    idx.replicas[c] as usize,
                    non_home,
                    "cell {} replica counter disagrees with placements",
                    c
                );
            }
        }
    }
}
