//! Dev profiling harness: where does the partition engine's time go vs the
//! R-tree engine on the bench workload? Run with
//! `cargo run --release -p psj-core --example part_profile`.

use psj_core::native::run_native_join;
use psj_core::partition::grid::{plan_grid, CellIndex, ItemStats};
use psj_core::{plan_partition, run_partition_join, NativeConfig, PartitionInput};
use psj_datagen::Scenario;
use psj_rtree::{PagedTree, RTree};
use std::time::Instant;

fn index(objs: &[psj_datagen::MapObject]) -> PagedTree {
    let mut t = RTree::new();
    for o in objs {
        t.insert(o.mbr(), o.oid);
    }
    PagedTree::freeze(&t, |_| None)
}

fn min_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    const REPS: usize = 9;
    let (m1, m2) = Scenario::scaled(1996, 0.25).generate();
    let a = index(&m1);
    let b = index(&m2);
    let mut cfg = NativeConfig::new(1);
    cfg.refine = false;

    let mbrs_a: Vec<psj_geom::Rect> = a.window_query(&a.mbr()).iter().map(|e| e.mbr).collect();
    let mbrs_b: Vec<psj_geom::Rect> = b.window_query(&b.mbr()).iter().map(|e| e.mbr).collect();
    let (t_stats, (sa, sb)) = min_ms(REPS, || {
        (ItemStats::scan(&mbrs_a), ItemStats::scan(&mbrs_b))
    });
    let uni = {
        let (ra, rb) = (sa.bbox.unwrap(), sb.bbox.unwrap());
        psj_geom::Rect {
            xl: ra.xl.max(rb.xl),
            yl: ra.yl.max(rb.yl),
            xu: ra.xu.min(rb.xu),
            yu: ra.yu.min(rb.yu),
        }
    };
    let grid = plan_grid(uni, &sa, &sb, 8);
    let (t_csr, (ia, ib)) = min_ms(REPS, || {
        (
            CellIndex::build(&grid, &mbrs_a),
            CellIndex::build(&grid, &mbrs_b),
        )
    });
    println!(
        "stats {t_stats:.3}ms  csr {t_csr:.3}ms  grid {}x{}  placed {} + {}  placements {} + {}",
        grid.nx,
        grid.ny,
        ia.placed,
        ib.placed,
        ia.items.len(),
        ib.items.len(),
    );

    let (t_plan, plan) = min_ms(REPS, || {
        plan_partition(PartitionInput::Tree(&a), PartitionInput::Tree(&b), &cfg)
    });
    let (t_part, res) = min_ms(REPS, || {
        run_partition_join(PartitionInput::Tree(&a), PartitionInput::Tree(&b), &cfg)
    });
    let (t_rtree, rres) = min_ms(REPS, || run_native_join(&a, &b, &cfg));
    println!(
        "plan {:>7.3}ms (cells {} occupied {} morsels {})  partition {:>7.3}ms ({} pairs)  rtree {:>7.3}ms ({} pairs)",
        t_plan,
        plan.grid.cells(),
        plan.occupied,
        plan.morsels.len(),
        t_part,
        res.pairs.len(),
        t_rtree,
        rres.pairs.len(),
    );

    // Dense overlapping grid: every node pair qualifies, tree traversal
    // has nothing to prune — the partition engine's home turf.
    let dense = |n: usize, offset: f64| {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 200) as f64 + offset;
            let y = (i / 200) as f64 + offset;
            t.insert(psj_geom::Rect::new(x, y, x + 1.2, y + 1.2), i as u64);
        }
        PagedTree::freeze(&t, |_| None)
    };
    // Stream input: neither side has an index yet. The R-tree engine must
    // build (insert + freeze) before it can join; the partition engine
    // plans its grid from the raw stream. This is the comparison the
    // partition literature actually makes.
    let ra: Vec<psj_core::RectItem> = m1
        .iter()
        .map(|o| psj_core::RectItem {
            mbr: o.mbr(),
            oid: o.oid,
        })
        .collect();
    let rb: Vec<psj_core::RectItem> = m2
        .iter()
        .map(|o| psj_core::RectItem {
            mbr: o.mbr(),
            oid: o.oid,
        })
        .collect();
    let items_a: Vec<(psj_geom::Rect, u64)> = m1.iter().map(|o| (o.mbr(), o.oid)).collect();
    let items_b: Vec<(psj_geom::Rect, u64)> = m2.iter().map(|o| (o.mbr(), o.oid)).collect();
    let (t_build, _) = min_ms(REPS, || {
        (
            PagedTree::freeze(&psj_rtree::bulk::bulk_load_str(&items_a), |_| None),
            PagedTree::freeze(&psj_rtree::bulk::bulk_load_str(&items_b), |_| None),
        )
    });
    let (t_part_s, sres) = min_ms(REPS, || {
        run_partition_join(PartitionInput::Rects(&ra), PartitionInput::Rects(&rb), &cfg)
    });
    println!(
        "stream: rtree build {t_build:.3}ms + join {t_rtree:.3}ms = {:.3}ms  partition {t_part_s:.3}ms ({} pairs)  ratio {:.2}x",
        t_build + t_rtree,
        sres.pairs.len(),
        (t_build + t_rtree) / t_part_s,
    );

    let da = dense(40_000, 0.0);
    let db = dense(40_000, 0.5);
    let (t_plan_d, dplan) = min_ms(5, || {
        plan_partition(PartitionInput::Tree(&da), PartitionInput::Tree(&db), &cfg)
    });
    let (t_part_d, dres) = min_ms(5, || {
        run_partition_join(PartitionInput::Tree(&da), PartitionInput::Tree(&db), &cfg)
    });
    let (t_rtree_d, drres) = min_ms(5, || run_native_join(&da, &db, &cfg));
    println!(
        "dense 40k: plan {:>7.3}ms (grid {}x{} placements {} + {})  partition {:>7.3}ms ({} pairs)  rtree {:>7.3}ms ({} pairs)  ratio {:.2}x",
        t_plan_d,
        dplan.grid.nx,
        dplan.grid.ny,
        dplan.a.items.len(),
        dplan.b.items.len(),
        t_part_d,
        dres.pairs.len(),
        t_rtree_d,
        drres.pairs.len(),
        t_rtree_d / t_part_d,
    );
}
