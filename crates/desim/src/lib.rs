//! A small, deterministic discrete-event simulation engine.
//!
//! The parallel-join evaluation replays the paper's KSR1 cost model in
//! virtual time: processors advance private clocks through CPU work and
//! block on shared resources (disks). This crate provides the engine pieces:
//!
//! * [`EventQueue`] — a priority queue of `(time, seq, payload)` events with
//!   a total order: ties in virtual time are broken by insertion sequence
//!   number, making every simulation run bit-for-bit reproducible.
//! * [`FcfsResource`] — a single-server first-come-first-served resource
//!   (one disk); a request made at time `t` starts at `max(t, free_at)` and
//!   occupies the server for its service time.
//! * [`ResourcePool`] — a bank of FCFS resources (the disk array).
//! * [`schedule`] — exact list scheduling of morsel cost vectors (scheduled
//!   speedup) and the seeded steal-order shim behind adversarial
//!   interleaving tests.
//!
//! The engine deliberately has no notion of "process"; executors drive
//! explicit state machines from the event loop. That keeps the join logic in
//! `psj-core` free of coroutine machinery while still letting a processor
//! suspend at every page fault.

#![warn(missing_docs)]

pub mod schedule;

pub use schedule::{
    simulate_schedule, splitmix64, ScheduleAssign, ScheduleResult, ScheduleSpec, StealOrder,
};

use psj_store::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Nanos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at virtual time `time`.
    pub fn schedule(&mut self, time: Nanos, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event `(time, payload)`; events with
    /// equal times come out in scheduling order.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Virtual time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A single-server FCFS resource: requests queue up in arrival (virtual
/// time) order and are served back to back.
#[derive(Debug, Clone, Default)]
pub struct FcfsResource {
    free_at: Nanos,
    served: u64,
    busy: Nanos,
}

impl FcfsResource {
    /// A resource that is idle from time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a request arriving at `now` with the given `service` duration.
    /// Returns the completion time. The caller must issue requests in
    /// non-decreasing arrival order (the event loop guarantees this).
    pub fn request(&mut self, now: Nanos, service: Nanos) -> Nanos {
        let start = self.free_at.max(now);
        let done = start + service;
        self.free_at = done;
        self.served += 1;
        self.busy += service;
        done
    }

    /// Time until which the server is currently booked.
    pub fn free_at(&self) -> Nanos {
        self.free_at
    }

    /// Number of completed (scheduled) requests.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Accumulated pure service time (excludes queueing delay).
    pub fn busy_time(&self) -> Nanos {
        self.busy
    }
}

/// A bank of identical FCFS resources, e.g. the simulated disk array.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    servers: Vec<FcfsResource>,
}

impl ResourcePool {
    /// Creates `n` idle resources.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "resource pool needs at least one server");
        ResourcePool {
            servers: vec![FcfsResource::new(); n],
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the pool has no servers (never true; pools are non-empty).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Issues a request on server `idx`; see [`FcfsResource::request`].
    pub fn request(&mut self, idx: usize, now: Nanos, service: Nanos) -> Nanos {
        self.servers[idx].request(now, service)
    }

    /// Access to an individual server's counters.
    pub fn server(&self, idx: usize) -> &FcfsResource {
        &self.servers[idx]
    }

    /// Total completed requests over all servers.
    pub fn total_served(&self) -> u64 {
        self.servers.iter().map(|s| s.served()).sum()
    }

    /// Total busy time over all servers.
    pub fn total_busy(&self) -> Nanos {
        self.servers.iter().map(|s| s.busy_time()).sum()
    }

    /// The maximum `free_at` over all servers — a lower bound on simulation
    /// end when all work is disk-bound.
    pub fn latest_free_at(&self) -> Nanos {
        self.servers.iter().map(|s| s.free_at()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn fcfs_idle_server_starts_immediately() {
        let mut r = FcfsResource::new();
        assert_eq!(r.request(100, 16), 116);
        assert_eq!(r.free_at(), 116);
    }

    #[test]
    fn fcfs_busy_server_queues() {
        let mut r = FcfsResource::new();
        assert_eq!(r.request(0, 16), 16);
        // Arrives while busy: waits.
        assert_eq!(r.request(5, 16), 32);
        // Arrives after idle period: starts at arrival.
        assert_eq!(r.request(100, 16), 116);
        assert_eq!(r.served(), 3);
        assert_eq!(r.busy_time(), 48);
    }

    #[test]
    fn pool_servers_are_independent() {
        let mut p = ResourcePool::new(2);
        assert_eq!(p.request(0, 0, 16), 16);
        assert_eq!(p.request(1, 0, 16), 16, "second disk is idle");
        assert_eq!(p.request(0, 0, 16), 32, "first disk queues");
        assert_eq!(p.total_served(), 3);
        assert_eq!(p.total_busy(), 48);
        assert_eq!(p.latest_free_at(), 32);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = ResourcePool::new(0);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, 'a');
        assert_eq!(q.pop(), Some((10, 'a')));
        q.schedule(5, 'b');
        q.schedule(15, 'c');
        assert_eq!(q.pop(), Some((5, 'b')));
        q.schedule(12, 'd');
        assert_eq!(q.pop(), Some((12, 'd')));
        assert_eq!(q.pop(), Some((15, 'c')));
    }
}
