//! Deterministic list-scheduling simulation of the morsel scheduler.
//!
//! Two consumers drive this module:
//!
//! * **Scheduled speedup**: `psj bench-join` measures per-morsel wall costs
//!   in a 1-thread run and replays them through [`simulate_schedule`] with
//!   `n` virtual workers. The resulting makespan ratio is the speedup the
//!   morsel plan *admits* — a machine-independent critical-path metric that
//!   stays meaningful on CI hosts with fewer physical cores than the
//!   simulated worker count (wall-clock speedup on a 1-core container is
//!   bounded by 1 no matter how good the scheduler is).
//! * **Adversarial interleavings**: [`StealOrder`] is a fault-plan-style
//!   seeded shim that perturbs the order in which an idle worker probes
//!   steal victims. The native executor's `StealPolicy::Seeded` consults it,
//!   so a test sweeping seeds forces many distinct steal interleavings and
//!   can assert that the deterministic merge produces byte-identical output
//!   under every one of them.
//!
//! The simulation is exact list scheduling: every worker has a private
//! virtual clock; an idle worker acquires the next morsel from its own
//! queue, then the shared queue, then by stealing one morsel from the
//! victim with the most remaining estimated work (or in seeded order).
//! Ties in virtual time break by event insertion order via [`EventQueue`],
//! making every run bit-for-bit reproducible.

use crate::EventQueue;
use std::collections::VecDeque;

/// How morsels are dealt to the simulated workers before execution starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleAssign {
    /// One shared FIFO queue (the paper's dynamic assignment).
    Shared,
    /// Contiguous ranges of the morsel order, one per worker.
    Range,
    /// Round-robin deal over the morsel order.
    RoundRobin,
}

/// Parameters of one scheduling simulation.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleSpec {
    /// Number of virtual workers.
    pub workers: usize,
    /// Initial morsel placement.
    pub assign: ScheduleAssign,
    /// Whether an idle worker may take a morsel from another worker's queue.
    pub steal: bool,
    /// `None`: steal from the victim with the most remaining cost.
    /// `Some(seed)`: probe victims in the [`StealOrder`] shim's order.
    pub seed: Option<u64>,
}

/// Outcome of one scheduling simulation.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Virtual time at which the last worker finishes.
    pub makespan: u64,
    /// Per-worker total executed cost (pure work, no idle time).
    pub busy: Vec<u64>,
    /// Morsels acquired from another worker's queue.
    pub steals: u64,
    /// `(morsel index, worker)` in acquisition order.
    pub acquisitions: Vec<(u32, u32)>,
}

impl ScheduleResult {
    /// `sum(costs) / makespan` — the speedup this schedule achieves over
    /// executing every morsel back to back on one worker.
    pub fn speedup(&self) -> f64 {
        let total: u64 = self.busy.iter().sum();
        if self.makespan == 0 {
            1.0
        } else {
            total as f64 / self.makespan as f64
        }
    }
}

/// SplitMix64: the 64-bit finalizer used to derive per-decision hashes from
/// a seed. Small, well-distributed, and dependency-free.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fault-plan-style seeded shim over steal victim order: the same seed
/// reproduces the same probe order for every `(thief, attempt)` pair, and
/// different seeds exercise different interleavings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealOrder {
    seed: u64,
}

impl StealOrder {
    /// A shim for the given seed.
    pub fn new(seed: u64) -> Self {
        StealOrder { seed }
    }

    /// The first victim (in `0..n`) worker `thief` probes on its
    /// `attempt`-th steal attempt; probing continues circularly from there.
    /// May return `thief` itself — callers skip their own queue.
    pub fn first_victim(&self, thief: usize, attempt: u64, n: usize) -> usize {
        assert!(n > 0, "need at least one victim candidate");
        let h = splitmix64(self.seed ^ ((thief as u64) << 32) ^ attempt);
        (h % n as u64) as usize
    }
}

/// Replays `costs` (one entry per morsel, in morsel order) through `spec`
/// and returns the schedule's makespan and accounting.
pub fn simulate_schedule(costs: &[u64], spec: &ScheduleSpec) -> ScheduleResult {
    assert!(spec.workers > 0, "need at least one worker");
    let n = spec.workers;
    let m = costs.len();

    let mut shared: VecDeque<usize> = VecDeque::new();
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
    match spec.assign {
        ScheduleAssign::Shared => shared.extend(0..m),
        ScheduleAssign::Range => {
            // Same contiguous split as `psj_core::assign::static_range`.
            let big = m.div_ceil(n);
            let small = m / n;
            let bigs = m % n;
            let mut pos = 0;
            for (w, q) in queues.iter_mut().enumerate() {
                let take = if w < bigs || m.is_multiple_of(n) {
                    big
                } else {
                    small
                };
                let take = take.min(m - pos);
                q.extend(pos..pos + take);
                pos += take;
            }
        }
        ScheduleAssign::RoundRobin => {
            for i in 0..m {
                queues[i % n].push_back(i);
            }
        }
    }
    let mut remaining: Vec<u64> = queues
        .iter()
        .map(|q| q.iter().map(|&i| costs[i]).sum())
        .collect();

    let mut result = ScheduleResult {
        makespan: 0,
        busy: vec![0; n],
        steals: 0,
        acquisitions: Vec::with_capacity(m),
    };
    let shim = spec.seed.map(StealOrder::new);
    let mut attempts: Vec<u64> = vec![0; n];

    // Every worker wakes at t=0; each wake-up acquires one morsel and
    // schedules the next wake-up at its completion time.
    let mut events: EventQueue<usize> = EventQueue::new();
    for w in 0..n {
        events.schedule(0, w);
    }
    while let Some((now, w)) = events.pop() {
        let morsel = if let Some(i) = queues[w].pop_front() {
            remaining[w] -= costs[i];
            Some(i)
        } else if let Some(i) = shared.pop_front() {
            Some(i)
        } else if spec.steal {
            let victim = match shim {
                Some(shim) => {
                    attempts[w] += 1;
                    let start = shim.first_victim(w, attempts[w], n);
                    (0..n)
                        .map(|k| (start + k) % n)
                        .find(|&v| v != w && !queues[v].is_empty())
                }
                // Busiest victim: most remaining cost, ties to lowest id.
                None => (0..n)
                    .filter(|&v| v != w && !queues[v].is_empty())
                    .max_by_key(|&v| (remaining[v], n - v)),
            };
            victim.map(|v| {
                // Steal exactly one morsel from the far end of the victim's
                // queue (the paper's "reassign one task").
                let i = queues[v].pop_back().expect("probed non-empty");
                remaining[v] -= costs[i];
                result.steals += 1;
                i
            })
        } else {
            None
        };
        match morsel {
            Some(i) => {
                result.acquisitions.push((i as u32, w as u32));
                result.busy[w] += costs[i];
                let done = now + costs[i];
                result.makespan = result.makespan.max(done);
                events.schedule(done, w);
            }
            None => {
                // Queues only drain; an idle worker that finds nothing
                // retires for good.
                result.makespan = result.makespan.max(now);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(workers: usize, assign: ScheduleAssign) -> ScheduleSpec {
        ScheduleSpec {
            workers,
            assign,
            steal: true,
            seed: None,
        }
    }

    #[test]
    fn one_worker_runs_everything_sequentially() {
        let costs = [5, 3, 7, 1];
        let r = simulate_schedule(&costs, &spec(1, ScheduleAssign::Shared));
        assert_eq!(r.makespan, 16);
        assert_eq!(r.busy, vec![16]);
        assert_eq!(r.steals, 0);
        assert_eq!(
            r.acquisitions,
            vec![(0, 0), (1, 0), (2, 0), (3, 0)],
            "shared queue preserves morsel order"
        );
    }

    #[test]
    fn even_work_splits_evenly() {
        let costs = [10u64; 8];
        for assign in [
            ScheduleAssign::Shared,
            ScheduleAssign::Range,
            ScheduleAssign::RoundRobin,
        ] {
            let r = simulate_schedule(&costs, &spec(4, assign));
            assert_eq!(r.makespan, 20, "{assign:?}");
            assert!((r.speedup() - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stealing_rebalances_a_skewed_range_split() {
        // Range assignment puts the four expensive morsels on worker 0.
        let costs = [10, 10, 10, 10, 1, 1, 1, 1];
        let balanced = simulate_schedule(&costs, &spec(2, ScheduleAssign::Range));
        assert!(balanced.steals > 0, "idle worker must steal");
        let mut no_steal = spec(2, ScheduleAssign::Range);
        no_steal.steal = false;
        let stuck = simulate_schedule(&costs, &no_steal);
        assert!(
            balanced.makespan < stuck.makespan,
            "stealing must beat the static split: {} vs {}",
            balanced.makespan,
            stuck.makespan
        );
    }

    #[test]
    fn every_morsel_acquired_exactly_once() {
        let costs: Vec<u64> = (1..=37).collect();
        for workers in [1, 2, 4, 8] {
            for assign in [
                ScheduleAssign::Shared,
                ScheduleAssign::Range,
                ScheduleAssign::RoundRobin,
            ] {
                let r = simulate_schedule(&costs, &spec(workers, assign));
                let mut seen = vec![0u32; costs.len()];
                for &(m, _) in &r.acquisitions {
                    seen[m as usize] += 1;
                }
                assert!(seen.iter().all(|&c| c == 1), "{workers} {assign:?}");
                assert_eq!(r.busy.iter().sum::<u64>(), costs.iter().sum::<u64>());
            }
        }
    }

    #[test]
    fn seeded_order_is_reproducible_and_seed_sensitive() {
        let costs: Vec<u64> = (0..64).map(|i| 1 + (i * 7) % 13).collect();
        let mut s = spec(4, ScheduleAssign::RoundRobin);
        s.seed = Some(42);
        let a = simulate_schedule(&costs, &s);
        let b = simulate_schedule(&costs, &s);
        assert_eq!(a.acquisitions, b.acquisitions, "same seed, same schedule");
        // Some other seed must produce a different interleaving.
        let other = (0..64u64).any(|seed| {
            let mut s2 = s;
            s2.seed = Some(seed);
            simulate_schedule(&costs, &s2).acquisitions != a.acquisitions
        });
        assert!(other, "no seed changed the schedule");
    }

    #[test]
    fn empty_costs_finish_at_time_zero() {
        let r = simulate_schedule(&[], &spec(4, ScheduleAssign::Shared));
        assert_eq!(r.makespan, 0);
        assert_eq!(r.steals, 0);
        assert!(r.acquisitions.is_empty());
    }

    #[test]
    fn steal_order_shim_is_deterministic() {
        let s = StealOrder::new(7);
        for thief in 0..4 {
            for attempt in 0..10 {
                let v = s.first_victim(thief, attempt, 4);
                assert!(v < 4);
                assert_eq!(v, StealOrder::new(7).first_victim(thief, attempt, 4));
            }
        }
        // Distinct seeds must disagree somewhere.
        let differs = (0..32).any(|seed| {
            StealOrder::new(seed).first_victim(1, 1, 8) != StealOrder::new(7).first_victim(1, 1, 8)
        });
        assert!(differs);
    }
}
