//! Property-based tests for the discrete-event engine.

use proptest::prelude::*;
use psj_desim::{EventQueue, FcfsResource, ResourcePool};

proptest! {
    /// Events always pop in non-decreasing time order, with FIFO ties.
    #[test]
    fn events_pop_sorted(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li),
                    "order violated: ({lt},{li}) then ({t},{i})");
            }
            last = Some((t, i));
        }
    }

    /// An FCFS server never overlaps requests and never idles while work
    /// is queued: completion times are non-decreasing and each request
    /// starts at max(arrival, previous completion).
    #[test]
    fn fcfs_no_overlap_no_idle(
        reqs in prop::collection::vec((0u64..500, 1u64..50), 1..100),
    ) {
        // Arrival times must be non-decreasing, as from an event loop.
        let mut reqs = reqs;
        reqs.sort_by_key(|&(arrival, _)| arrival);
        let mut r = FcfsResource::new();
        let mut prev_done = 0u64;
        let mut total_service = 0u64;
        for &(arrival, service) in &reqs {
            let done = r.request(arrival, service);
            let start = done - service;
            prop_assert!(start >= arrival, "started before arrival");
            prop_assert!(start >= prev_done, "overlapped previous request");
            prop_assert!(start == arrival.max(prev_done), "idled while work queued");
            prev_done = done;
            total_service += service;
        }
        prop_assert_eq!(r.busy_time(), total_service);
        prop_assert_eq!(r.served(), reqs.len() as u64);
    }

    /// Pool servers are independent: requests on one never affect another.
    #[test]
    fn pool_isolation(
        reqs in prop::collection::vec((0usize..4, 0u64..100, 1u64..20), 1..80),
    ) {
        let mut reqs = reqs;
        reqs.sort_by_key(|&(_, arrival, _)| arrival);
        let mut pool = ResourcePool::new(4);
        let mut singles: Vec<FcfsResource> = (0..4).map(|_| FcfsResource::new()).collect();
        for &(idx, arrival, service) in &reqs {
            let a = pool.request(idx, arrival, service);
            let b = singles[idx].request(arrival, service);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(pool.total_served(), reqs.len() as u64);
    }
}
