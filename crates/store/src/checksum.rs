//! Page checksums: CRC32 footers appended to every on-disk page record.
//!
//! A page on disk is a *record* of [`PAGE_RECORD_SIZE`] bytes: the 4096-byte
//! payload followed by a 16-byte footer. The footer binds the payload to its
//! page id and format version so that besides bit rot we also catch pages
//! written to the wrong slot (misdirected writes) and format skew:
//!
//! ```text
//! offset  size  field
//!      0     4  CRC32 (IEEE, LE) over payload ‖ page-id ‖ version
//!      4     4  page id echo (LE)
//!      8     2  footer format version (LE, currently 1)
//!     10     6  footer magic  b"PSJPF1"
//! ```
//!
//! The CRC covers the id and version in addition to the payload, so a footer
//! copied from another page fails verification even when its own CRC is
//! internally consistent.

use crate::error::PageError;
use crate::page::{PageId, PAGE_SIZE};

/// Size in bytes of the per-page footer.
pub const PAGE_FOOTER_SIZE: usize = 16;
/// Size in bytes of one on-disk page record (payload + footer).
pub const PAGE_RECORD_SIZE: usize = PAGE_SIZE + PAGE_FOOTER_SIZE;
/// Current footer format version.
pub const PAGE_FORMAT_VERSION: u16 = 1;
/// Magic bytes terminating every footer.
pub const FOOTER_MAGIC: [u8; 6] = *b"PSJPF1";

/// CRC32 (IEEE 802.3 polynomial, reflected) lookup table, built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    let table = crc_table();
    for &b in data {
        state = (state >> 8) ^ table[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// CRC over payload bound to the page id and format version.
fn page_crc(payload: &[u8], id: PageId, version: u16) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    state = crc32_update(state, payload);
    state = crc32_update(state, &id.0.to_le_bytes());
    state = crc32_update(state, &version.to_le_bytes());
    state ^ 0xFFFF_FFFF
}

/// Build the 16-byte footer for `payload` stored as page `id`.
pub fn page_footer(payload: &[u8; PAGE_SIZE], id: PageId) -> [u8; PAGE_FOOTER_SIZE] {
    let mut footer = [0u8; PAGE_FOOTER_SIZE];
    let crc = page_crc(payload, id, PAGE_FORMAT_VERSION);
    footer[0..4].copy_from_slice(&crc.to_le_bytes());
    footer[4..8].copy_from_slice(&id.0.to_le_bytes());
    footer[8..10].copy_from_slice(&PAGE_FORMAT_VERSION.to_le_bytes());
    footer[10..16].copy_from_slice(&FOOTER_MAGIC);
    footer
}

/// Assemble a full on-disk record (payload + footer) for page `id`.
pub fn encode_record(payload: &[u8; PAGE_SIZE], id: PageId) -> [u8; PAGE_RECORD_SIZE] {
    let mut record = [0u8; PAGE_RECORD_SIZE];
    record[..PAGE_SIZE].copy_from_slice(payload);
    record[PAGE_SIZE..].copy_from_slice(&page_footer(payload, id));
    record
}

/// Verify the footer of `record` against the expected page `id`.
///
/// `context` (typically the file path) is embedded in the error message so
/// multi-tree failures are attributable.
pub fn verify_record(
    record: &[u8; PAGE_RECORD_SIZE],
    id: PageId,
    context: &str,
) -> Result<(), PageError> {
    let payload = &record[..PAGE_SIZE];
    let footer = &record[PAGE_SIZE..];
    if footer[10..16] != FOOTER_MAGIC {
        return Err(PageError::Corrupt {
            page: id,
            context: format!("{context}: footer magic mismatch"),
        });
    }
    let version = u16::from_le_bytes([footer[8], footer[9]]);
    if version != PAGE_FORMAT_VERSION {
        return Err(PageError::Corrupt {
            page: id,
            context: format!(
                "{context}: unsupported page format version {version} (expected {PAGE_FORMAT_VERSION})"
            ),
        });
    }
    let echo = u32::from_le_bytes([footer[4], footer[5], footer[6], footer[7]]);
    if echo != id.0 {
        return Err(PageError::Corrupt {
            page: id,
            context: format!("{context}: page id echo {echo} != expected {}", id.0),
        });
    }
    let stored = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
    let computed = page_crc(payload, id, version);
    if stored != computed {
        return Err(PageError::Corrupt {
            page: id,
            context: format!(
                "{context}: CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_verifies() {
        let mut payload = [0u8; PAGE_SIZE];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let record = encode_record(&payload, PageId(7));
        verify_record(&record, PageId(7), "test").unwrap();
    }

    #[test]
    fn any_flipped_bit_is_detected() {
        let payload = [0xA5u8; PAGE_SIZE];
        let base = encode_record(&payload, PageId(1));
        for &offset in &[
            0usize,
            1,
            PAGE_SIZE / 2,
            PAGE_SIZE - 1,
            PAGE_SIZE,
            PAGE_SIZE + 5,
        ] {
            let mut record = base;
            record[offset] ^= 0x10;
            let err = verify_record(&record, PageId(1), "flip").unwrap_err();
            assert!(err.is_corrupt(), "offset {offset} not detected");
        }
    }

    #[test]
    fn wrong_slot_is_detected() {
        // A record written for page 3 but read back as page 4 must fail
        // even though its internal CRC is consistent.
        let payload = [0x11u8; PAGE_SIZE];
        let record = encode_record(&payload, PageId(3));
        verify_record(&record, PageId(3), "slot").unwrap();
        let err = verify_record(&record, PageId(4), "slot").unwrap_err();
        assert!(err.is_corrupt());
        assert!(err.to_string().contains("echo"));
    }

    #[test]
    fn torn_record_is_detected() {
        let payload = [0x42u8; PAGE_SIZE];
        let mut record = encode_record(&payload, PageId(2));
        // Simulate a torn write: the tail of the record is zeroed.
        for b in record[PAGE_SIZE - 100..].iter_mut() {
            *b = 0;
        }
        assert!(verify_record(&record, PageId(2), "torn")
            .unwrap_err()
            .is_corrupt());
    }
}
