//! Typed page-level storage errors.
//!
//! Every storage failure the out-of-core stack can produce is classified
//! into one of three kinds, because the *response* differs per kind:
//!
//! * [`PageError::Corrupt`] — the bytes came back but their checksum does
//!   not match. Rereading the same sectors will return the same bytes, so
//!   retrying is useless; the page is quarantined and the error surfaces
//!   as a typed reply instead of garbage results.
//! * [`PageError::OutOfRange`] — the request itself is wrong (page id past
//!   the end of the file). Never retried.
//! * [`PageError::Io`] — the read failed before producing bytes. Transient
//!   kinds (EIO blips, interrupts) are retryable under a
//!   [`crate::RetryPolicy`]; permanent kinds (truncation, missing file)
//!   are not.
//!
//! Errors are `Clone` so a quarantined page can replay its original error
//! to every later requester without re-reading the device.

use crate::page::PageId;
use std::io;

/// A typed error from reading one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// The page's bytes failed checksum verification: the data is there
    /// but wrong. Not retryable — the same bytes would come back.
    Corrupt {
        /// The page whose verification failed.
        page: PageId,
        /// Human-readable context (file path, which check failed).
        context: String,
    },
    /// The requested page id does not exist in the backing store.
    OutOfRange {
        /// The out-of-range page id.
        page: PageId,
        /// Number of pages the store actually holds.
        num_pages: usize,
        /// Human-readable context (file path).
        context: String,
    },
    /// The underlying read failed before producing verifiable bytes.
    Io {
        /// The page being read, when known.
        page: Option<PageId>,
        /// The OS error kind; drives per-class retryability.
        kind: io::ErrorKind,
        /// Human-readable context (file path, OS error text).
        context: String,
    },
}

impl PageError {
    /// Convenience constructor for an I/O failure on a known page.
    pub fn io(page: PageId, kind: io::ErrorKind, context: impl Into<String>) -> Self {
        PageError::Io {
            page: Some(page),
            kind,
            context: context.into(),
        }
    }

    /// The page involved, when known.
    pub fn page(&self) -> Option<PageId> {
        match self {
            PageError::Corrupt { page, .. } | PageError::OutOfRange { page, .. } => Some(*page),
            PageError::Io { page, .. } => *page,
        }
    }

    /// Whether the error is a checksum failure (quarantinable).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, PageError::Corrupt { .. })
    }

    /// Per-class retryability: corruption and bad requests always fail the
    /// same way again; I/O errors are retryable unless the kind indicates a
    /// permanent condition (truncated or vanished backing file, bad input).
    pub fn is_retryable(&self) -> bool {
        match self {
            PageError::Corrupt { .. } | PageError::OutOfRange { .. } => false,
            PageError::Io { kind, .. } => !matches!(
                kind,
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::NotFound
                    | io::ErrorKind::InvalidInput
                    | io::ErrorKind::InvalidData
                    | io::ErrorKind::PermissionDenied
            ),
        }
    }
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::Corrupt { page, context } => {
                write!(f, "page {page} corrupt: {context}")
            }
            PageError::OutOfRange {
                page,
                num_pages,
                context,
            } => write!(f, "page {page} out of range ({num_pages} pages): {context}"),
            PageError::Io {
                page: Some(page),
                kind,
                context,
            } => write!(f, "I/O error ({kind:?}) reading page {page}: {context}"),
            PageError::Io {
                page: None,
                kind,
                context,
            } => write!(f, "I/O error ({kind:?}): {context}"),
        }
    }
}

impl std::error::Error for PageError {}

impl From<PageError> for io::Error {
    fn from(e: PageError) -> io::Error {
        let kind = match &e {
            PageError::Corrupt { .. } => io::ErrorKind::InvalidData,
            PageError::OutOfRange { .. } => io::ErrorKind::InvalidInput,
            PageError::Io { kind, .. } => *kind,
        };
        io::Error::new(kind, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_not_retryable() {
        let e = PageError::Corrupt {
            page: PageId(3),
            context: "t".into(),
        };
        assert!(e.is_corrupt());
        assert!(!e.is_retryable());
        assert_eq!(e.page(), Some(PageId(3)));
    }

    #[test]
    fn transient_io_is_retryable_permanent_is_not() {
        let transient = PageError::io(PageId(1), io::ErrorKind::Other, "EIO");
        assert!(transient.is_retryable());
        let truncated = PageError::io(PageId(1), io::ErrorKind::UnexpectedEof, "short");
        assert!(!truncated.is_retryable());
        let missing = PageError::io(PageId(1), io::ErrorKind::NotFound, "gone");
        assert!(!missing.is_retryable());
    }

    #[test]
    fn converts_to_io_error_with_matching_kind() {
        let e = PageError::Corrupt {
            page: PageId(0),
            context: "bad crc".into(),
        };
        let io: io::Error = e.into();
        assert_eq!(io.kind(), io::ErrorKind::InvalidData);
        assert!(io.to_string().contains("bad crc"));
    }
}
