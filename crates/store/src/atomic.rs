//! Crash-safe file writes: tmp file + fsync + atomic rename + dir fsync.
//!
//! Shared by the pager and the R-tree persistence layer. The invariant is
//! that `path` either holds its previous complete contents or the new
//! complete contents — never a partial write. A crash at any point leaves
//! at worst a stale `<name>.tmp` sibling, which the next successful write
//! replaces.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

/// The sibling tmp path used by [`atomic_write`] for `path`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write a file crash-safely: `fill` streams the contents into a sibling
/// tmp file, which is then fsynced and atomically renamed over `path`,
/// followed by an fsync of the containing directory so the rename itself
/// is durable.
pub fn atomic_write(
    path: &Path,
    fill: impl FnOnce(&mut io::BufWriter<File>) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = tmp_path(path);
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", tmp.display())))?;
    let mut writer = io::BufWriter::new(file);
    fill(&mut writer)?;
    io::Write::flush(&mut writer)?;
    let file = writer
        .into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("renaming {} -> {}: {e}", tmp.display(), path.display()),
        )
    })?;
    // Make the rename durable: fsync the parent directory. Failure here is
    // ignored on filesystems that refuse directory fsync; the rename is
    // still atomic.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        }) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psj-atomic-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn writes_contents_and_removes_tmp() {
        let path = temp_path("basic");
        atomic_write(&path, |w| io::Write::write_all(w, b"hello")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        assert!(!tmp_path(&path).exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn failed_fill_leaves_previous_contents() {
        let path = temp_path("failed");
        atomic_write(&path, |w| io::Write::write_all(w, b"generation-1")).unwrap();
        let err = atomic_write(&path, |w| {
            io::Write::write_all(w, b"partial")?;
            Err(io::Error::other("simulated crash"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-1");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(tmp_path(&path)).ok();
    }

    #[test]
    fn stale_tmp_is_overwritten() {
        let path = temp_path("stale");
        std::fs::write(tmp_path(&path), b"stale garbage").unwrap();
        atomic_write(&path, |w| io::Write::write_all(w, b"fresh")).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"fresh");
        std::fs::remove_file(path).ok();
    }
}
