//! Configurable retry policy for page reads.
//!
//! Replaces the ad-hoc bounded retry that used to live inside
//! `FilePager::read_page`. The policy is owned by whoever drives the read —
//! the shared page cache retries its fills, the CLI and executor thread a
//! policy down through `BufferConfig` — so one knob controls the whole
//! stack and every retry is counted in one place.
//!
//! Only errors whose [`PageError::is_retryable`] is true are retried;
//! corruption and out-of-range requests fail immediately. Backoff is
//! exponential from `base_backoff` capped at `max_backoff`, with optional
//! deterministic jitter derived from the page id (so concurrent readers of
//! different pages do not thundering-herd the device in lockstep, while
//! tests stay reproducible).

use crate::error::PageError;
use std::time::Duration;

/// Retry configuration for a single page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Add deterministic per-page jitter (up to +50%) to each backoff.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    /// Three attempts with no backoff: preserves the historical
    /// `FilePager` behaviour (two retries) at zero latency cost, which
    /// matters for tests and for transient kernel-level EIO blips that
    /// resolve on immediate reread.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every error is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        }
    }

    /// Policy with `max_attempts` total attempts and no backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Policy with exponential backoff and jitter.
    pub fn backoff(max_attempts: u32, base: Duration, max: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: base,
            max_backoff: max,
            jitter: true,
        }
    }

    /// The sleep before retry number `retry` (0-based) of page `key`.
    pub fn backoff_for(&self, retry: u32, key: u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32.checked_shl(retry.min(16)).unwrap_or(u32::MAX);
        let mut delay = self
            .base_backoff
            .checked_mul(factor)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff.max(self.base_backoff));
        if self.jitter {
            // Deterministic jitter in [0, 50%) keyed on (page, retry).
            let h = splitmix64(key ^ ((retry as u64) << 32));
            let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
            let extra = delay.mul_f64(0.5 * frac);
            delay += extra;
        }
        delay
    }

    /// Run `op` under this policy. Returns the final result and the number
    /// of retries performed (0 if the first attempt settled it).
    pub fn run<T>(
        &self,
        key: u64,
        op: impl FnMut(u32) -> Result<T, PageError>,
    ) -> (Result<T, PageError>, u64) {
        self.run_observed(key, op, |_, _| {})
    }

    /// Like [`RetryPolicy::run`], but calls `on_retry(attempt, error)` for
    /// every attempt that is about to be retried (before the backoff
    /// sleep). Tracing hooks in here: a retry storm shows up in the trace
    /// as it happens, with the failing attempt's error, rather than as one
    /// summary count after the final attempt settles.
    pub fn run_observed<T>(
        &self,
        key: u64,
        mut op: impl FnMut(u32) -> Result<T, PageError>,
        mut on_retry: impl FnMut(u32, &PageError),
    ) -> (Result<T, PageError>, u64) {
        let mut retries = 0u64;
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return (Ok(v), retries),
                Err(e) if e.is_retryable() && attempt + 1 < self.max_attempts => {
                    on_retry(attempt, &e);
                    let delay = self.backoff_for(attempt, key);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                    retries += 1;
                }
                Err(e) => return (Err(e), retries),
            }
        }
    }
}

/// SplitMix64: cheap, high-quality 64-bit mixer (public-domain constants).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;
    use std::io;

    #[test]
    fn retries_transient_errors_up_to_budget() {
        let policy = RetryPolicy::attempts(3);
        let mut fails = 2;
        let (res, retries) = policy.run(0, |_| {
            if fails > 0 {
                fails -= 1;
                Err(PageError::io(PageId(0), io::ErrorKind::Other, "blip"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(res.unwrap(), 42);
        assert_eq!(retries, 2);
    }

    #[test]
    fn observer_sees_each_retried_error() {
        let policy = RetryPolicy::attempts(3);
        let mut fails = 2;
        let mut observed = Vec::new();
        let (res, retries) = policy.run_observed(
            7,
            |_| {
                if fails > 0 {
                    fails -= 1;
                    Err(PageError::io(PageId(7), io::ErrorKind::Other, "blip"))
                } else {
                    Ok(1)
                }
            },
            |attempt, err| observed.push((attempt, err.is_retryable())),
        );
        assert_eq!(res.unwrap(), 1);
        assert_eq!(retries, 2);
        assert_eq!(observed, vec![(0, true), (1, true)]);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let policy = RetryPolicy::attempts(3);
        let mut calls = 0;
        let (res, retries) = policy.run(0, |_| {
            calls += 1;
            Err::<(), _>(PageError::io(PageId(0), io::ErrorKind::Other, "blip"))
        });
        assert!(res.is_err());
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn corruption_is_never_retried() {
        let policy = RetryPolicy::attempts(5);
        let mut calls = 0;
        let (res, retries) = policy.run(0, |_| {
            calls += 1;
            Err::<(), _>(PageError::Corrupt {
                page: PageId(0),
                context: "bad".into(),
            })
        });
        assert!(res.unwrap_err().is_corrupt());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }

    #[test]
    fn none_policy_fails_fast() {
        let policy = RetryPolicy::none();
        let mut calls = 0;
        let (res, retries) = policy.run(0, |_| {
            calls += 1;
            Err::<(), _>(PageError::io(PageId(0), io::ErrorKind::Other, "blip"))
        });
        assert!(res.is_err());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(400),
            jitter: false,
        };
        assert_eq!(policy.backoff_for(0, 1), Duration::from_micros(100));
        assert_eq!(policy.backoff_for(1, 1), Duration::from_micros(200));
        assert_eq!(policy.backoff_for(2, 1), Duration::from_micros(400));
        assert_eq!(policy.backoff_for(6, 1), Duration::from_micros(400));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::backoff(4, Duration::from_micros(100), Duration::from_millis(1));
        let a = policy.backoff_for(1, 77);
        let b = policy.backoff_for(1, 77);
        assert_eq!(a, b);
        assert!(a >= Duration::from_micros(200));
        assert!(a < Duration::from_micros(300));
    }
}
