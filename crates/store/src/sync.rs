//! Poison-recovering lock helpers shared by the executor and cache crates.
//!
//! `std::sync::Mutex` poisons itself when a thread panics while holding the
//! guard, and every later `lock().unwrap()` then panics too — one crashed
//! worker wedges every queue, shard, and condvar it ever touched. All of the
//! mutex-protected state in this workspace (morsel queues, cache shards,
//! batch maps, condvar companions) stays structurally valid across a panic:
//! each critical section either completes its update or leaves the
//! collection as it was before the panic unwound through it. Recovering the
//! guard is therefore always safe here, and it turns a cascading abort into
//! a typed error surfaced by whoever observed the original panic.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`Condvar::wait`] that recovers a poisoned guard the same way.
pub fn wait_clean<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn lock_clean_recovers_poisoned_mutex() {
        let m = Mutex::new(vec![1, 2, 3]);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("holder dies");
        }));
        assert!(err.is_err());
        assert!(m.is_poisoned());
        let g = lock_clean(&m);
        assert_eq!(*g, vec![1, 2, 3], "state survives the poisoning panic");
    }
}
