//! Page storage, the simulated disk array, and the geometry cluster store.
//!
//! The paper's evaluation (§4.2) does not use a physical disk array; it
//! *simulates* one: every R\*-tree page is assigned to a disk by
//! `page_number mod d`, and a page read costs an average seek (9 ms) plus
//! rotational latency (6 ms) plus transfer (1 ms per 4 KB) — 16 ms per page.
//! Data pages additionally drag in the geometry *cluster* of their entries
//! (one cluster per data page, 26 KB on average, [BK 94]), for 37.5 ms total.
//!
//! This crate provides exactly that model:
//!
//! * [`Page`], [`PageId`] — fixed-size 4 KB pages with real bytes,
//! * [`PageStore`] — the master copy of all pages ("what is on disk"),
//! * [`DiskModel`] — the timing model and `mod d` placement function,
//! * [`ClusterStore`] — per-data-page geometry clusters with their sizes,
//! * [`timing`] — integer-nanosecond time arithmetic shared by the
//!   simulation crates.

#![warn(missing_docs)]

pub mod atomic;
pub mod checksum;
pub mod cluster;
pub mod disk;
pub mod error;
pub mod fault;
pub mod page;
pub mod pager;
pub mod retry;
pub mod sync;
pub mod timing;

pub use atomic::{atomic_write, tmp_path};
pub use checksum::{
    crc32, encode_record, page_footer, verify_record, PAGE_FOOTER_SIZE, PAGE_FORMAT_VERSION,
    PAGE_RECORD_SIZE,
};
pub use cluster::ClusterStore;
pub use disk::DiskModel;
pub use error::PageError;
pub use fault::FaultPlan;
pub use page::{Page, PageId, PageStore, PAGE_SIZE};
pub use pager::{FaultPager, FilePager, PagerIoStats};
pub use retry::RetryPolicy;
pub use sync::{lock_clean, wait_clean};
pub use timing::{Nanos, MICROS, MILLIS, SECS};
