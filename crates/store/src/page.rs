//! Fixed-size pages and the master page store.
//!
//! Pages are 4 KB, matching the paper's R\*-tree page size. The
//! [`PageStore`] holds the authoritative content of every page — what would
//! be on the disk array — while the buffer crate decides which of those
//! pages are currently "in memory" and what an access costs.

use serde::{Deserialize, Serialize};

/// Page size in bytes (4 KB, as in the paper).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page. Page numbers also determine disk placement via
/// `page mod d` (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl PageId {
    /// The raw page number.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A 4 KB page of raw bytes.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Read access to the raw bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Write access to the raw bytes.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page").field("len", &PAGE_SIZE).finish()
    }
}

/// The master copy of all pages of one file (one R\*-tree), indexed densely
/// by [`PageId`]. This models the contents of the simulated disk array; the
/// actual *cost* of getting a page into a processor's memory is accounted for
/// by the buffer and disk models, not here.
#[derive(Debug, Default)]
pub struct PageStore {
    pages: Vec<Page>,
}

impl PageStore {
    /// An empty store.
    pub fn new() -> Self {
        PageStore { pages: Vec::new() }
    }

    /// Allocates a fresh zeroed page, returning its id. Ids are dense and
    /// sequential, so `page mod d` spreads consecutive pages across disks.
    pub fn allocate(&mut self) -> PageId {
        let id = PageId(u32::try_from(self.pages.len()).expect("page id overflow"));
        self.pages.push(Page::zeroed());
        id
    }

    /// Number of pages in the store.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the store holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Read a page's content.
    ///
    /// # Panics
    ///
    /// Panics if the id was not allocated from this store.
    pub fn read(&self, id: PageId) -> &Page {
        &self.pages[id.index()]
    }

    /// Write access to a page's content.
    pub fn write(&mut self, id: PageId) -> &mut Page {
        &mut self.pages[id.index()]
    }

    /// Iterator over `(id, page)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &Page)> {
        self.pages
            .iter()
            .enumerate()
            .map(|(i, p)| (PageId(i as u32), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_is_dense_and_sequential() {
        let mut s = PageStore::new();
        assert!(s.is_empty());
        let a = s.allocate();
        let b = s.allocate();
        let c = s.allocate();
        assert_eq!((a, b, c), (PageId(0), PageId(1), PageId(2)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = PageStore::new();
        let id = s.allocate();
        s.write(id).bytes_mut()[0..4].copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&s.read(id).bytes()[0..4], &[1, 2, 3, 4]);
        assert_eq!(s.read(id).bytes()[4], 0, "rest stays zeroed");
    }

    #[test]
    fn pages_are_page_size() {
        let p = Page::zeroed();
        assert_eq!(p.bytes().len(), PAGE_SIZE);
        assert_eq!(PAGE_SIZE, 4096);
    }

    #[test]
    #[should_panic]
    fn read_unallocated_panics() {
        let s = PageStore::new();
        let _ = s.read(PageId(0));
    }

    #[test]
    fn iter_yields_all_pages_in_order() {
        let mut s = PageStore::new();
        for _ in 0..5 {
            s.allocate();
        }
        let ids: Vec<u32> = s.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
