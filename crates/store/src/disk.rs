//! The simulated disk array (paper §4.2).
//!
//! Pages are assigned to disks by `page_number mod d` — deliberately
//! *spatially oblivious* placement, as in the paper ("spatial aspects have no
//! impact on the selection of the disk"). A page read costs
//!
//! > average seek 9 ms + average rotational latency 6 ms + 1 ms transfer per
//! > 4 KB page = **16 ms**,
//!
//! and a *data* page access additionally reads the geometry cluster of its
//! entries from the same disk (one seek + latency + transfer of ~26 KB),
//! bringing the paper's quoted average to **37.5 ms**.
//!
//! Contention is modelled by the simulation layer: each disk serves one
//! request at a time, FCFS in virtual-time order (see `psj-desim`); this
//! module only computes service times and placement.

use crate::page::PageId;
use crate::timing::{millis_f, Nanos, MILLIS};
use serde::{Deserialize, Serialize};

/// Timing and placement model of the simulated disk array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskModel {
    /// Number of disks `d`.
    pub num_disks: usize,
    /// Average seek time.
    pub seek: Nanos,
    /// Average rotational latency.
    pub latency: Nanos,
    /// Transfer time for one 4 KB unit.
    pub transfer_per_4k: Nanos,
}

impl DiskModel {
    /// The paper's disk parameters with `d` disks: 9 ms seek, 6 ms latency,
    /// 1 ms per 4 KB.
    pub fn paper(num_disks: usize) -> Self {
        assert!(num_disks > 0, "need at least one disk");
        DiskModel {
            num_disks,
            seek: 9 * MILLIS,
            latency: 6 * MILLIS,
            transfer_per_4k: MILLIS,
        }
    }

    /// Disk on which `page` resides: `page mod d`.
    #[inline]
    pub fn disk_of(&self, page: PageId) -> usize {
        page.index() % self.num_disks
    }

    /// Service time for reading one 4 KB page: seek + latency + transfer.
    /// 16 ms with the paper's parameters.
    #[inline]
    pub fn page_read_time(&self) -> Nanos {
        self.seek + self.latency + self.transfer_per_4k
    }

    /// Service time for reading `bytes` of sequentially clustered data in a
    /// separate access (its own seek + latency), rounded up to whole 4 KB
    /// transfer units. For the paper's 26 KB average cluster this is
    /// 9 + 6 + 6.5 = 21.5 ms.
    #[inline]
    pub fn cluster_read_time(&self, bytes: u64) -> Nanos {
        let units_x2 = bytes.div_ceil(2048); // half-4K units for .5 precision
        self.seek + self.latency + units_x2 * self.transfer_per_4k / 2
    }

    /// Service time of a data-page access including its geometry cluster:
    /// page read plus cluster read. 37.5 ms for a 26 KB cluster.
    #[inline]
    pub fn data_page_read_time(&self, cluster_bytes: u64) -> Nanos {
        self.page_read_time() + self.cluster_read_time(cluster_bytes)
    }
}

/// Running statistics of disk activity, kept by the executors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiskStats {
    /// Completed page reads per disk.
    pub reads_per_disk: Vec<u64>,
    /// Total busy time per disk.
    pub busy_per_disk: Vec<Nanos>,
}

impl DiskStats {
    /// Empty statistics for `d` disks.
    pub fn new(num_disks: usize) -> Self {
        DiskStats {
            reads_per_disk: vec![0; num_disks],
            busy_per_disk: vec![0; num_disks],
        }
    }

    /// Records one read of duration `service` on `disk`.
    pub fn record(&mut self, disk: usize, service: Nanos) {
        self.reads_per_disk[disk] += 1;
        self.busy_per_disk[disk] += service;
    }

    /// Total number of disk accesses across all disks.
    pub fn total_reads(&self) -> u64 {
        self.reads_per_disk.iter().sum()
    }

    /// Total busy time across all disks.
    pub fn total_busy(&self) -> Nanos {
        self.busy_per_disk.iter().sum()
    }
}

/// Converts fractional milliseconds into the model's time unit; re-exported
/// for configuration code.
pub fn ms(v: f64) -> Nanos {
    millis_f(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_page_read_is_16ms() {
        let d = DiskModel::paper(8);
        assert_eq!(d.page_read_time(), 16 * MILLIS);
    }

    #[test]
    fn paper_cluster_read_26kb_is_21_5ms() {
        let d = DiskModel::paper(8);
        assert_eq!(d.cluster_read_time(26 * 1024), millis_f(21.5));
    }

    #[test]
    fn paper_data_page_access_is_37_5ms() {
        let d = DiskModel::paper(8);
        assert_eq!(d.data_page_read_time(26 * 1024), millis_f(37.5));
    }

    #[test]
    fn placement_is_modulo() {
        let d = DiskModel::paper(8);
        assert_eq!(d.disk_of(PageId(0)), 0);
        assert_eq!(d.disk_of(PageId(7)), 7);
        assert_eq!(d.disk_of(PageId(8)), 0);
        assert_eq!(d.disk_of(PageId(19)), 3);
        let one = DiskModel::paper(1);
        assert_eq!(one.disk_of(PageId(12345)), 0);
    }

    #[test]
    fn cluster_rounding_to_half_units() {
        let d = DiskModel::paper(1);
        // 1 byte still pays seek + latency + half a unit.
        assert_eq!(d.cluster_read_time(1), 9 * MILLIS + 6 * MILLIS + MILLIS / 2);
        // Exactly 4 KB: one unit.
        assert_eq!(d.cluster_read_time(4096), 16 * MILLIS);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = DiskStats::new(2);
        s.record(0, 16 * MILLIS);
        s.record(1, 16 * MILLIS);
        s.record(1, millis_f(37.5));
        assert_eq!(s.total_reads(), 3);
        assert_eq!(s.reads_per_disk, vec![1, 2]);
        assert_eq!(s.total_busy(), 32 * MILLIS + millis_f(37.5));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        let _ = DiskModel::paper(0);
    }
}
