//! A disk-backed page file: the out-of-core counterpart of [`PageStore`].
//!
//! [`PageStore`] keeps every page in memory — fine for the simulator, but
//! the native executor's shared buffer needs a source whose misses actually
//! leave the process. [`FilePager`] stores pages densely in a regular file
//! (page `n` at byte offset `n * PAGE_RECORD_SIZE`) and reads them back on
//! demand, so a cache running against it is genuinely out-of-core: only the
//! buffered subset of pages is resident.
//!
//! Every on-disk page is a checksummed *record* — the 4 KB payload followed
//! by a 16-byte footer (CRC32 + page-id echo + format version, see
//! [`crate::checksum`]). `read_page` verifies the footer on every read and
//! returns a typed [`PageError::Corrupt`] on mismatch instead of garbage
//! bytes.
//!
//! Reads are positioned (`pread`-style) and therefore need only `&self`:
//! any number of threads can fault pages in concurrently without
//! serializing on a shared file cursor. The pager itself never retries —
//! retry policy belongs to the caller (see [`crate::RetryPolicy`] and the
//! shared page cache), so retries are configured and counted in one place.
//!
//! [`FaultPager`] wraps a [`FilePager`] and applies a seeded
//! [`FaultPlan`] *below* checksum verification: bit flips and torn reads
//! mutate the raw record bytes and are then caught by the real CRC path,
//! exactly as hardware corruption would be.

use crate::checksum::{encode_record, verify_record, PAGE_RECORD_SIZE};
use crate::error::PageError;
use crate::fault::FaultPlan;
use crate::page::{Page, PageId, PageStore, PAGE_SIZE};
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative I/O counters of a pager (relaxed atomics, cheap enough to
/// update on every read). Observability wants device-level numbers — how
/// many reads actually left the process, how many failed — which the cache
/// layers above cannot see (a cache hit never reaches the pager).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerIoStats {
    /// Record reads issued against the backing file (including failed ones).
    pub reads: u64,
    /// Reads that returned an error (I/O, out-of-range, or checksum).
    pub errors: u64,
}

/// A read-only, thread-safe pager over a densely packed page-record file.
#[derive(Debug)]
pub struct FilePager {
    file: File,
    path: PathBuf,
    num_pages: usize,
    reads: AtomicU64,
    errors: AtomicU64,
}

impl FilePager {
    /// Opens an existing page file. The file must be non-empty and a whole
    /// number of page records long.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: empty page file (zero bytes)", path.display()),
            ));
        }
        if len % PAGE_RECORD_SIZE as u64 != 0 {
            let hint = if len % PAGE_SIZE as u64 == 0 {
                " (looks like a legacy unchecksummed page file; rebuild the index)"
            } else {
                ""
            };
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: page file length {len} is not a multiple of {PAGE_RECORD_SIZE}{hint}",
                    path.display()
                ),
            ));
        }
        let num_pages = usize::try_from(len / PAGE_RECORD_SIZE as u64).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: page file too large", path.display()),
            )
        })?;
        Ok(FilePager {
            file,
            path,
            num_pages,
            reads: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// Writes every page of `store` to `path` as checksummed records and
    /// opens a pager over the result.
    ///
    /// The write is crash-safe: records go to a sibling tmp file which is
    /// fsynced and atomically renamed into place, so a crash mid-write
    /// never leaves a partially written file at `path`.
    pub fn create_from_store<P: AsRef<Path>>(path: P, store: &PageStore) -> io::Result<Self> {
        let path = path.as_ref();
        crate::atomic_write(path, |out| {
            for (id, page) in store.iter() {
                io::Write::write_all(out, &encode_record(page.bytes(), id))?;
            }
            Ok(())
        })?;
        Self::open(path)
    }

    /// Number of pages in the file.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// The path this pager reads from (used for error context).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Cumulative I/O counters since this pager was opened.
    pub fn io_stats(&self) -> PagerIoStats {
        PagerIoStats {
            reads: self.reads.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Reads one raw record (payload + footer) without verification.
    ///
    /// This is the substrate for [`FaultPager`], which needs to corrupt
    /// bytes *before* verification, and for `fsck`-style scanners.
    pub fn read_record(&self, id: PageId) -> Result<Box<[u8; PAGE_RECORD_SIZE]>, PageError> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if id.index() >= self.num_pages {
            self.errors.fetch_add(1, Ordering::Relaxed);
            return Err(PageError::OutOfRange {
                page: id,
                num_pages: self.num_pages,
                context: self.path.display().to_string(),
            });
        }
        let mut record: Box<[u8; PAGE_RECORD_SIZE]> = vec![0u8; PAGE_RECORD_SIZE]
            .into_boxed_slice()
            .try_into()
            .unwrap();
        let offset = id.index() as u64 * PAGE_RECORD_SIZE as u64;
        self.file
            .read_exact_at(&mut record[..], offset)
            .map_err(|e| {
                self.errors.fetch_add(1, Ordering::Relaxed);
                PageError::io(id, e.kind(), format!("{}: {e}", self.path.display()))
            })?;
        Ok(record)
    }

    /// Reads and verifies one page from the file.
    ///
    /// An out-of-range `id`, a failed read (truncated or vanished backing
    /// file), or a checksum mismatch is reported as a typed [`PageError`],
    /// not a panic or garbage bytes: in a long-running server a bad read
    /// must degrade the one request that needed the page, not corrupt its
    /// answer or take down the process.
    pub fn read_page(&self, id: PageId) -> Result<Page, PageError> {
        let record = self.read_record(id)?;
        verify_record(&record, id, &self.path.display().to_string()).inspect_err(|_| {
            self.errors.fetch_add(1, Ordering::Relaxed);
        })?;
        let mut page = Page::zeroed();
        page.bytes_mut().copy_from_slice(&record[..PAGE_SIZE]);
        Ok(page)
    }
}

/// A fault-injecting decorator over [`FilePager`].
///
/// Driven by a seeded [`FaultPlan`]: injected latency and transient
/// `io::Error`s fire before the read; bit flips and torn reads mutate the
/// raw record bytes and are then caught by the *real* checksum
/// verification path — a flipped bit surfaces as [`PageError::Corrupt`]
/// because the CRC fails, not because the injector says so.
#[derive(Debug)]
pub struct FaultPager {
    inner: FilePager,
    plan: Arc<FaultPlan>,
}

impl FaultPager {
    /// Wrap `inner` with the fault plan.
    pub fn new(inner: FilePager, plan: Arc<FaultPlan>) -> Self {
        FaultPager { inner, plan }
    }

    /// The fault plan driving this pager.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// The wrapped pager.
    pub fn inner(&self) -> &FilePager {
        &self.inner
    }

    /// Number of pages in the file.
    pub fn num_pages(&self) -> usize {
        self.inner.num_pages()
    }

    /// Reads one page, applying the fault plan below verification.
    pub fn read_page(&self, id: PageId) -> Result<Page, PageError> {
        let attempt = self.plan.next_attempt(id);
        self.plan.inject_latency(id, attempt);
        if self.plan.check_transient(id, attempt) {
            return Err(PageError::io(
                id,
                io::ErrorKind::Other,
                format!(
                    "{}: injected transient I/O fault",
                    self.inner.path().display()
                ),
            ));
        }
        let mut record = self.inner.read_record(id)?;
        self.plan.corrupt_record(id, &mut record[..]);
        verify_record(&record, id, &self.inner.path().display().to_string())?;
        let mut page = Page::zeroed();
        page.bytes_mut().copy_from_slice(&record[..PAGE_SIZE]);
        Ok(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psj-pager-{}-{name}", std::process::id()));
        p
    }

    fn sample_store(pages: usize) -> PageStore {
        let mut store = PageStore::new();
        for n in 0..pages {
            let id = store.allocate();
            store.write(id).bytes_mut()[0..8].copy_from_slice(&(n as u64).to_le_bytes());
        }
        store
    }

    #[test]
    fn roundtrip_through_file() {
        let path = temp_path("roundtrip");
        let store = sample_store(7);
        let pager = FilePager::create_from_store(&path, &store).unwrap();
        assert_eq!(pager.num_pages(), 7);
        for n in 0..7u32 {
            let page = pager.read_page(PageId(n)).unwrap();
            assert_eq!(page.bytes(), store.read(PageId(n)).bytes());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_reads_share_the_pager() {
        let path = temp_path("concurrent");
        let store = sample_store(16);
        let pager = FilePager::create_from_store(&path, &store).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pager = &pager;
                scope.spawn(move || {
                    for n in 0..16u32 {
                        let page = pager.read_page(PageId(n)).unwrap();
                        let mut word = [0u8; 8];
                        word.copy_from_slice(&page.bytes()[0..8]);
                        assert_eq!(u64::from_le_bytes(word), n as u64);
                    }
                });
            }
        });
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn io_stats_count_reads_and_errors() {
        let path = temp_path("iostats");
        let pager = FilePager::create_from_store(&path, &sample_store(2)).unwrap();
        assert_eq!(pager.io_stats(), PagerIoStats::default());
        pager.read_page(PageId(0)).unwrap();
        pager.read_page(PageId(1)).unwrap();
        assert!(pager.read_page(PageId(9)).is_err());
        let stats = pager.io_stats();
        assert_eq!(stats.reads, 3);
        assert_eq!(stats.errors, 1);
        // A checksum failure counts as an error too.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[100] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(pager.read_page(PageId(0)).is_err());
        assert_eq!(pager.io_stats().errors, 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_partial_page_file() {
        let path = temp_path("partial");
        std::fs::write(&path, vec![0u8; PAGE_RECORD_SIZE + 1]).unwrap();
        assert!(FilePager::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_zero_length_file_with_path_in_error() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let err = FilePager::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("empty"), "{msg}");
        assert!(
            msg.contains(path.file_name().unwrap().to_str().unwrap()),
            "{msg}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_unchecksummed_file_gets_a_hint() {
        let path = temp_path("legacy");
        std::fs::write(&path, vec![0u8; PAGE_SIZE * 3]).unwrap();
        let err = FilePager::open(&path).unwrap_err();
        assert!(err.to_string().contains("legacy"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_range_read_is_an_error() {
        let path = temp_path("range");
        let pager = FilePager::create_from_store(&path, &sample_store(2)).unwrap();
        std::fs::remove_file(&path).ok();
        let err = pager.read_page(PageId(2)).unwrap_err();
        assert!(matches!(err, PageError::OutOfRange { .. }));
        assert!(err.to_string().contains("range"));
    }

    #[test]
    fn truncated_file_read_is_an_error_not_a_panic() {
        let path = temp_path("truncated");
        let pager = FilePager::create_from_store(&path, &sample_store(4)).unwrap();
        // Shrink the backing file under the pager's feet: reads of the
        // now-missing tail must surface as errors with the path attached.
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(PAGE_RECORD_SIZE as u64)
            .unwrap();
        assert!(pager.read_page(PageId(0)).is_ok());
        let err = pager.read_page(PageId(3)).unwrap_err();
        match &err {
            PageError::Io { kind, context, .. } => {
                assert_eq!(*kind, io::ErrorKind::UnexpectedEof);
                assert!(context.contains("truncated"), "{context}");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        assert!(!err.is_retryable());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flipped_bit_on_disk_is_detected_as_corrupt() {
        let path = temp_path("flip-on-disk");
        let pager = FilePager::create_from_store(&path, &sample_store(3)).unwrap();
        // Flip one payload bit of page 1 directly in the file.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[PAGE_RECORD_SIZE + 100] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        assert!(pager.read_page(PageId(0)).is_ok());
        let err = pager.read_page(PageId(1)).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
        assert!(err.to_string().contains("CRC"), "{err}");
        assert!(pager.read_page(PageId(2)).is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fault_pager_transient_then_recovers() {
        let path = temp_path("fault-transient");
        let store = sample_store(4);
        let pager = FilePager::create_from_store(&path, &store).unwrap();
        let plan = Arc::new(FaultPlan::new(5).with_transient(1.0, 1));
        let faulty = FaultPager::new(pager, plan.clone());
        for n in 0..4u32 {
            let err = faulty.read_page(PageId(n)).unwrap_err();
            assert!(err.is_retryable(), "{err}");
            let page = faulty.read_page(PageId(n)).unwrap();
            assert_eq!(page.bytes(), store.read(PageId(n)).bytes());
        }
        assert_eq!(plan.transient_injected(), 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fault_pager_flips_are_caught_by_real_checksums() {
        let path = temp_path("fault-flip");
        let pager = FilePager::create_from_store(&path, &sample_store(8)).unwrap();
        let plan = Arc::new(FaultPlan::new(6).with_flip(1.0));
        let faulty = FaultPager::new(pager, plan.clone());
        for n in 0..8u32 {
            let err = faulty.read_page(PageId(n)).unwrap_err();
            assert!(err.is_corrupt(), "page {n}: {err}");
        }
        assert_eq!(plan.corrupt_injected(), 8);
        std::fs::remove_file(path).ok();
    }
}
