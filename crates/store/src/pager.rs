//! A disk-backed page file: the out-of-core counterpart of [`PageStore`].
//!
//! [`PageStore`] keeps every page in memory — fine for the simulator, but
//! the native executor's shared buffer needs a source whose misses actually
//! leave the process. [`FilePager`] stores pages densely in a regular file
//! (page `n` at byte offset `n * 4096`) and reads them back on demand, so a
//! cache running against it is genuinely out-of-core: only the buffered
//! subset of pages is resident.
//!
//! Reads are positioned (`pread`-style) and therefore need only `&self`:
//! any number of threads can fault pages in concurrently without
//! serializing on a shared file cursor.

use crate::page::{Page, PageId, PageStore, PAGE_SIZE};
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// A read-only, thread-safe pager over a densely packed page file.
#[derive(Debug)]
pub struct FilePager {
    file: File,
    num_pages: usize,
}

impl FilePager {
    /// Opens an existing page file. The file length must be a whole number
    /// of 4 KB pages.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("page file length {len} is not a multiple of {PAGE_SIZE}"),
            ));
        }
        let num_pages = usize::try_from(len / PAGE_SIZE as u64)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "page file too large"))?;
        Ok(FilePager { file, num_pages })
    }

    /// Writes every page of `store` to `path` in id order and opens a pager
    /// over the result.
    pub fn create_from_store<P: AsRef<Path>>(path: P, store: &PageStore) -> io::Result<Self> {
        let mut out = File::create(&path)?;
        for (_, page) in store.iter() {
            io::Write::write_all(&mut out, page.bytes())?;
        }
        io::Write::flush(&mut out)?;
        drop(out);
        Self::open(path)
    }

    /// Number of pages in the file.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// How many times a failed positioned read is retried before the error
    /// is propagated. `read_exact_at` already resumes short reads and
    /// `ErrorKind::Interrupted` internally; the retries here cover transient
    /// whole-call failures (e.g. EIO from a flaky device) so one blip does
    /// not fail a request that would succeed a microsecond later.
    const READ_RETRIES: usize = 2;

    /// Reads one page from the file.
    ///
    /// An out-of-range `id` or a failed read (truncated or vanished backing
    /// file) is reported as an `Err`, not a panic: in a long-running server
    /// a bad read must degrade the one request that needed the page, not
    /// take down the process.
    pub fn read_page(&self, id: PageId) -> io::Result<Page> {
        if id.index() >= self.num_pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("page {id} out of range ({} pages)", self.num_pages),
            ));
        }
        let mut page = Page::zeroed();
        let offset = id.index() as u64 * PAGE_SIZE as u64;
        let mut attempt = 0;
        loop {
            match self.file.read_exact_at(page.bytes_mut(), offset) {
                Ok(()) => return Ok(page),
                // Truncation is permanent; anything else gets retried.
                Err(e)
                    if attempt < Self::READ_RETRIES && e.kind() != io::ErrorKind::UnexpectedEof =>
                {
                    attempt += 1;
                }
                Err(e) => {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("reading {id} (after {attempt} retries): {e}"),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psj-pager-{}-{name}", std::process::id()));
        p
    }

    fn sample_store(pages: usize) -> PageStore {
        let mut store = PageStore::new();
        for n in 0..pages {
            let id = store.allocate();
            store.write(id).bytes_mut()[0..8].copy_from_slice(&(n as u64).to_le_bytes());
        }
        store
    }

    #[test]
    fn roundtrip_through_file() {
        let path = temp_path("roundtrip");
        let store = sample_store(7);
        let pager = FilePager::create_from_store(&path, &store).unwrap();
        assert_eq!(pager.num_pages(), 7);
        for n in 0..7u32 {
            let page = pager.read_page(PageId(n)).unwrap();
            assert_eq!(page.bytes(), store.read(PageId(n)).bytes());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_reads_share_the_pager() {
        let path = temp_path("concurrent");
        let store = sample_store(16);
        let pager = FilePager::create_from_store(&path, &store).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pager = &pager;
                scope.spawn(move || {
                    for n in 0..16u32 {
                        let page = pager.read_page(PageId(n)).unwrap();
                        let mut word = [0u8; 8];
                        word.copy_from_slice(&page.bytes()[0..8]);
                        assert_eq!(u64::from_le_bytes(word), n as u64);
                    }
                });
            }
        });
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_partial_page_file() {
        let path = temp_path("partial");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 1]).unwrap();
        assert!(FilePager::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_range_read_is_an_error() {
        let path = temp_path("range");
        let pager = FilePager::create_from_store(&path, &sample_store(2)).unwrap();
        std::fs::remove_file(&path).ok();
        let err = pager.read_page(PageId(2)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn truncated_file_read_is_an_error_not_a_panic() {
        let path = temp_path("truncated");
        let pager = FilePager::create_from_store(&path, &sample_store(4)).unwrap();
        // Shrink the backing file under the pager's feet: reads of the
        // now-missing tail must surface as errors.
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(PAGE_SIZE as u64)
            .unwrap();
        assert!(pager.read_page(PageId(0)).is_ok());
        let err = pager.read_page(PageId(3)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(path).ok();
    }
}
