//! Deterministic fault injection for page reads.
//!
//! A [`FaultPlan`] is a seeded description of which pages misbehave and
//! how. Selection is a pure function of `(seed, fault class, page id)` via
//! SplitMix64, so two runs with the same plan inject exactly the same
//! faults regardless of thread interleaving — which is what lets the chaos
//! differential suite assert byte-identical results and exact retry
//! counts.
//!
//! Four fault classes, each with its own per-page probability:
//!
//! * **transient** — the first `burst` reads of a selected page fail with a
//!   retryable `io::Error`; subsequent reads succeed. Models EIO blips.
//! * **flip** — a selected page permanently has one bit flipped in its
//!   payload. Caught by the CRC footer → `PageError::Corrupt`.
//! * **torn** — a selected page permanently loses the tail of its record
//!   (zeroed), as if a write was interrupted mid-sector. Also caught by
//!   the footer.
//! * **latency** — a per-read chance of an injected sleep, for exercising
//!   deadline/backpressure paths without real slow disks.
//!
//! Two injection surfaces share one plan:
//! [`FaultPager`](crate::FaultPager) applies faults at the *byte* level
//! below checksum verification (real corruption detected by real CRCs),
//! while [`FaultPlan::before_fetch`] is a hook for decoded page sources
//! (e.g. cache fills that produce nodes, not bytes) where flip/torn faults
//! are synthesized directly as `Corrupt` errors — justified because the
//! byte-level tests prove the footer catches every such corruption.

use crate::error::PageError;
use crate::page::PageId;
use crate::retry::splitmix64;
use crate::sync::lock_clean;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const CLASS_TRANSIENT: u64 = 0x7472_616E; // "tran"
const CLASS_FLIP: u64 = 0x666C_6970; // "flip"
const CLASS_TORN: u64 = 0x746F_726E; // "torn"
const CLASS_LATENCY: u64 = 0x6C61_7465; // "late"
const CLASS_BURST: u64 = 0x6275_7273; // "burs"
const CLASS_OFFSET: u64 = 0x6F66_6673; // "offs"

/// A seeded, deterministic description of injected storage faults.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Probability a page is selected for a transient error burst.
    transient_p: f64,
    /// Maximum burst length; a selected page fails its first
    /// `1 + h % burst_max` reads (h deterministic per page).
    burst_max: u32,
    /// Probability a page is permanently bit-flipped.
    flip_p: f64,
    /// Probability a page is permanently torn (record tail zeroed).
    torn_p: f64,
    /// Per-read probability of injected latency.
    latency_p: f64,
    /// The injected latency duration.
    latency: Duration,

    /// Panic exactly once on the first fetch of this page (tests the
    /// executors' panic containment, not storage errors).
    panic_page: Option<u32>,

    /// Reads attempted so far per page; drives burst scheduling.
    attempts: Mutex<HashMap<u32, u32>>,
    transient_injected: AtomicU64,
    flips_injected: AtomicU64,
    torn_injected: AtomicU64,
    latency_injected: AtomicU64,
    panic_fired: AtomicBool,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            burst_max: 1,
            ..FaultPlan::default()
        }
    }

    /// Select `p` of all pages for transient bursts of up to `burst_max`
    /// consecutive failures (each followed by success).
    pub fn with_transient(mut self, p: f64, burst_max: u32) -> Self {
        self.transient_p = p.clamp(0.0, 1.0);
        self.burst_max = burst_max.max(1);
        self
    }

    /// Permanently bit-flip `p` of all pages.
    pub fn with_flip(mut self, p: f64) -> Self {
        self.flip_p = p.clamp(0.0, 1.0);
        self
    }

    /// Permanently tear `p` of all pages (zeroed record tail).
    pub fn with_torn(mut self, p: f64) -> Self {
        self.torn_p = p.clamp(0.0, 1.0);
        self
    }

    /// Inject `latency` on `p` of reads.
    pub fn with_latency(mut self, p: f64, latency: Duration) -> Self {
        self.latency_p = p.clamp(0.0, 1.0);
        self.latency = latency;
        self
    }

    /// Panic (once, on the first fetch) when `page` is read through
    /// [`FaultPlan::before_fetch`]. Unlike every other fault class this is
    /// not a storage error: it exercises the *executors'* panic
    /// containment — a worker thread must survive the unwind and the rest
    /// of the join must still complete.
    pub fn with_panic_page(mut self, page: u32) -> Self {
        self.panic_page = Some(page);
        self
    }

    /// Parse a fault spec string, e.g.
    /// `seed=42,transient=0.2,burst=2,flip=0.01,torn=0.005,latency-us=200,latency-p=0.05`.
    ///
    /// Keys (`-` and `_` interchangeable): `seed` (u64, default 0),
    /// `transient` (probability), `burst` (max burst length, default 1),
    /// `flip` (probability), `torn` (probability), `latency-us` (integer
    /// microseconds), `latency-p` (probability, defaults to 1.0 when
    /// `latency-us` is set without it).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut seed = 0u64;
        let mut transient = 0.0f64;
        let mut burst = 1u32;
        let mut flip = 0.0f64;
        let mut torn = 0.0f64;
        let mut latency_us = 0u64;
        let mut latency_p: Option<f64> = None;
        for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry '{part}' is not key=value"))?;
            let key = key.trim().replace('_', "-");
            let value = value.trim();
            let bad = |what: &str| format!("fault spec: invalid {what} '{value}'");
            match key.as_str() {
                "seed" => seed = value.parse().map_err(|_| bad("seed"))?,
                "transient" => transient = parse_prob(value)?,
                "burst" => burst = value.parse().map_err(|_| bad("burst"))?,
                "flip" => flip = parse_prob(value)?,
                "torn" => torn = parse_prob(value)?,
                "latency-us" => latency_us = value.parse().map_err(|_| bad("latency-us"))?,
                "latency-p" => latency_p = Some(parse_prob(value)?),
                other => return Err(format!("fault spec: unknown key '{other}'")),
            }
        }
        let mut plan = FaultPlan::new(seed)
            .with_transient(transient, burst)
            .with_flip(flip)
            .with_torn(torn);
        if latency_us > 0 {
            plan = plan.with_latency(latency_p.unwrap_or(1.0), Duration::from_micros(latency_us));
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.transient_p == 0.0
            && self.flip_p == 0.0
            && self.torn_p == 0.0
            && self.latency_p == 0.0
            && self.panic_page.is_none()
    }

    /// Deterministic per-(class, page) hash in [0, 1).
    fn frac(&self, class: u64, page: u32) -> f64 {
        let h = splitmix64(self.seed ^ class.rotate_left(32) ^ page as u64);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Burst length for a transient-selected page: 1..=burst_max.
    fn burst_len(&self, page: u32) -> u32 {
        if self.burst_max <= 1 {
            1
        } else {
            let h = splitmix64(self.seed ^ CLASS_BURST.rotate_left(32) ^ page as u64);
            1 + (h % self.burst_max as u64) as u32
        }
    }

    /// Record a read attempt on `page` and return its 0-based attempt
    /// number (monotonic across the plan's lifetime).
    pub fn next_attempt(&self, page: PageId) -> u32 {
        let mut attempts = lock_clean(&self.attempts);
        let n = attempts.entry(page.0).or_insert(0);
        let attempt = *n;
        *n = n.saturating_add(1);
        attempt
    }

    /// Whether read number `attempt` of `page` fails transiently.
    /// Counts the injection when it fires.
    pub fn check_transient(&self, page: PageId, attempt: u32) -> bool {
        if self.transient_p > 0.0
            && self.frac(CLASS_TRANSIENT, page.0) < self.transient_p
            && attempt < self.burst_len(page.0)
        {
            self.transient_injected.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The permanent corruption class of `page`, if any.
    pub fn permanent_class(&self, page: PageId) -> Option<&'static str> {
        if self.flip_p > 0.0 && self.frac(CLASS_FLIP, page.0) < self.flip_p {
            Some("bit flip")
        } else if self.torn_p > 0.0 && self.frac(CLASS_TORN, page.0) < self.torn_p {
            Some("torn read")
        } else {
            None
        }
    }

    /// Sleep if read number `attempt` of `page` draws injected latency.
    pub fn inject_latency(&self, page: PageId, attempt: u32) {
        if self.latency_p > 0.0 && !self.latency.is_zero() {
            let h = splitmix64(
                self.seed
                    ^ CLASS_LATENCY.rotate_left(32)
                    ^ page.0 as u64
                    ^ ((attempt as u64) << 40),
            );
            let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
            if frac < self.latency_p {
                self.latency_injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.latency);
            }
        }
    }

    /// Fault hook for *decoded* page sources (cache fills producing nodes
    /// rather than raw bytes): applies latency, transient, and permanent
    /// faults before the real fetch. Permanent flip/torn faults are
    /// synthesized as `Corrupt` errors — the byte-level path
    /// ([`FaultPager`](crate::FaultPager)) proves the CRC footer detects
    /// them, so modelling detection as certain is sound.
    pub fn before_fetch(&self, page: PageId) -> Result<(), PageError> {
        if self.panic_page == Some(page.0) && !self.panic_fired.swap(true, Ordering::AcqRel) {
            panic!("injected panic on fetch of {page:?}");
        }
        let attempt = self.next_attempt(page);
        self.inject_latency(page, attempt);
        if self.check_transient(page, attempt) {
            return Err(PageError::io(
                page,
                io::ErrorKind::Other,
                "injected transient I/O fault",
            ));
        }
        if let Some(class) = self.permanent_class(page) {
            self.flips_or_torn(class);
            return Err(PageError::Corrupt {
                page,
                context: format!("injected {class}"),
            });
        }
        Ok(())
    }

    fn flips_or_torn(&self, class: &str) {
        if class == "bit flip" {
            self.flips_injected.fetch_add(1, Ordering::Relaxed);
        } else {
            self.torn_injected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Apply this page's permanent byte-level fault (if any) to a raw
    /// on-disk record. Returns true when the record was modified.
    pub fn corrupt_record(&self, page: PageId, record: &mut [u8]) -> bool {
        match self.permanent_class(page) {
            Some("bit flip") => {
                let h = splitmix64(self.seed ^ CLASS_OFFSET.rotate_left(32) ^ page.0 as u64);
                let bit = (h % (record.len() as u64 * 8)) as usize;
                record[bit / 8] ^= 1 << (bit % 8);
                self.flips_injected.fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(_) => {
                let h = splitmix64(self.seed ^ CLASS_OFFSET.rotate_left(32) ^ page.0 as u64);
                // Keep at least one byte, zero at least one byte.
                let keep = 1 + (h % (record.len() as u64 - 1)) as usize;
                for b in record[keep..].iter_mut() {
                    *b = 0;
                }
                self.torn_injected.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Transient faults injected so far.
    pub fn transient_injected(&self) -> u64 {
        self.transient_injected.load(Ordering::Relaxed)
    }

    /// Corruptions injected so far (flips + torn reads).
    pub fn corrupt_injected(&self) -> u64 {
        self.flips_injected.load(Ordering::Relaxed) + self.torn_injected.load(Ordering::Relaxed)
    }

    /// Latency injections so far.
    pub fn latency_injected(&self) -> u64 {
        self.latency_injected.load(Ordering::Relaxed)
    }

    /// One-line human-readable summary of injected fault counts.
    pub fn summary(&self) -> String {
        format!(
            "transient={} flips={} torn={} latency={}",
            self.transient_injected(),
            self.flips_injected.load(Ordering::Relaxed),
            self.torn_injected.load(Ordering::Relaxed),
            self.latency_injected()
        )
    }
}

fn parse_prob(value: &str) -> Result<f64, String> {
    let p: f64 = value
        .parse()
        .map_err(|_| format!("fault spec: invalid probability '{value}'"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("fault spec: probability '{value}' not in [0, 1]"));
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "seed=42,transient=0.2,burst=2,flip=0.01,torn=0.005,latency-us=200,latency-p=0.05",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.burst_max, 2);
        assert!((plan.transient_p - 0.2).abs() < 1e-12);
        assert!((plan.flip_p - 0.01).abs() < 1e-12);
        assert!((plan.torn_p - 0.005).abs() < 1e-12);
        assert_eq!(plan.latency, Duration::from_micros(200));
        assert!((plan.latency_p - 0.05).abs() < 1e-12);
        assert!(!plan.is_noop());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("transient").is_err());
        assert!(FaultPlan::parse("flip=1.5").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        // Underscores accepted as dashes.
        assert!(FaultPlan::parse("latency_us=10,latency_p=0.5").is_ok());
    }

    #[test]
    fn empty_spec_is_noop() {
        assert!(FaultPlan::parse("").unwrap().is_noop());
        assert!(FaultPlan::parse("seed=7").unwrap().is_noop());
    }

    #[test]
    fn selection_is_deterministic() {
        let a = FaultPlan::new(1).with_flip(0.3);
        let b = FaultPlan::new(1).with_flip(0.3);
        for p in 0..200 {
            assert_eq!(a.permanent_class(PageId(p)), b.permanent_class(PageId(p)));
        }
        // A different seed must select a different set eventually.
        let c = FaultPlan::new(2).with_flip(0.3);
        assert!((0..200).any(|p| a.permanent_class(PageId(p)) != c.permanent_class(PageId(p))));
    }

    #[test]
    fn transient_bursts_then_recovers() {
        let plan = FaultPlan::new(9).with_transient(1.0, 3);
        let page = PageId(5);
        let burst = plan.burst_len(page.0);
        assert!((1..=3).contains(&burst));
        for i in 0..burst {
            let attempt = plan.next_attempt(page);
            assert_eq!(attempt, i);
            assert!(
                plan.check_transient(page, attempt),
                "attempt {i} should fail"
            );
        }
        let attempt = plan.next_attempt(page);
        assert!(!plan.check_transient(page, attempt));
        assert_eq!(plan.transient_injected(), burst as u64);
    }

    #[test]
    fn before_fetch_synthesizes_corrupt_for_flipped_pages() {
        let plan = FaultPlan::new(3).with_flip(1.0);
        let err = plan.before_fetch(PageId(0)).unwrap_err();
        assert!(err.is_corrupt());
        assert_eq!(plan.corrupt_injected(), 1);
    }

    #[test]
    fn corrupt_record_modifies_selected_pages_only() {
        let plan = FaultPlan::new(4).with_flip(1.0);
        let mut record = vec![0xAB; 64];
        assert!(plan.corrupt_record(PageId(1), &mut record));
        assert_ne!(record, vec![0xAB; 64]);

        let noop = FaultPlan::new(4);
        let mut clean = vec![0xAB; 64];
        assert!(!noop.corrupt_record(PageId(1), &mut clean));
        assert_eq!(clean, vec![0xAB; 64]);
    }

    #[test]
    fn torn_fault_zeroes_a_tail() {
        let plan = FaultPlan::new(8).with_torn(1.0);
        let mut record = vec![0xFF; 128];
        assert!(plan.corrupt_record(PageId(2), &mut record));
        assert_eq!(record.last(), Some(&0));
        assert_eq!(record[0], 0xFF);
    }

    #[test]
    fn probability_roughly_respected() {
        let plan = FaultPlan::new(11).with_flip(0.2);
        let hits = (0..2000)
            .filter(|&p| plan.permanent_class(PageId(p)).is_some())
            .count();
        // 20% of 2000 = 400; allow a generous deterministic band.
        assert!((250..=550).contains(&hits), "hits = {hits}");
    }
}
