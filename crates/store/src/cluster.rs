//! Geometry cluster store ([BK 94] clustering, paper §4.2).
//!
//! The exact geometry of the objects in one data page is clustered into one
//! contiguous region on the same disk — "there is a one-to-one relationship
//! between a data page and the cluster where the exact geometry
//! representations of the entries in the data page are stored". A data page
//! access therefore always includes the access to its cluster, and the
//! cluster's size determines the extra transfer time.

use crate::page::PageId;
use psj_geom::Polyline;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Exact geometry of the objects of one data page, plus its stored size.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cluster {
    geometries: Vec<Polyline>,
    bytes: u64,
}

impl Cluster {
    /// Number of objects in this cluster.
    pub fn len(&self) -> usize {
        self.geometries.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.geometries.is_empty()
    }

    /// Size of the cluster on disk in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The stored geometries, in data-page entry order.
    pub fn geometries(&self) -> &[Polyline] {
        &self.geometries
    }
}

/// Clusters of all data pages of one relation, keyed by data page id.
#[derive(Debug, Default)]
pub struct ClusterStore {
    clusters: HashMap<PageId, Cluster>,
}

impl ClusterStore {
    /// An empty store.
    pub fn new() -> Self {
        ClusterStore {
            clusters: HashMap::new(),
        }
    }

    /// Appends one object's exact geometry to the cluster of `page`.
    /// Returns the slot index of the geometry within the cluster.
    pub fn push(&mut self, page: PageId, geometry: Polyline) -> u32 {
        self.push_with_extra(page, geometry, 0)
    }

    /// As [`ClusterStore::push`], but accounts `extra_bytes` of additional
    /// stored payload (attribute data accompanying the exact representation,
    /// e.g. TIGER record fields). Only the cluster *size* grows; the extra
    /// bytes carry no structure.
    pub fn push_with_extra(&mut self, page: PageId, geometry: Polyline, extra_bytes: u64) -> u32 {
        let c = self.clusters.entry(page).or_default();
        c.bytes += geometry.stored_size() as u64 + extra_bytes;
        c.geometries.push(geometry);
        (c.geometries.len() - 1) as u32
    }

    /// The cluster of a data page, if any geometry was stored for it.
    pub fn get(&self, page: PageId) -> Option<&Cluster> {
        self.clusters.get(&page)
    }

    /// Size in bytes of the cluster of `page` (0 if absent).
    pub fn bytes_of(&self, page: PageId) -> u64 {
        self.clusters.get(&page).map_or(0, |c| c.bytes)
    }

    /// One geometry by `(page, slot)` reference, as stored in a data entry.
    pub fn geometry(&self, page: PageId, slot: u32) -> Option<&Polyline> {
        self.clusters
            .get(&page)
            .and_then(|c| c.geometries.get(slot as usize))
    }

    /// Number of clusters (== number of data pages with geometry).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Average cluster size in bytes (the paper reports 26 KB). 0 if empty.
    pub fn avg_bytes(&self) -> u64 {
        if self.clusters.is_empty() {
            0
        } else {
            self.clusters.values().map(|c| c.bytes).sum::<u64>() / self.clusters.len() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psj_geom::Point;

    fn line(n: usize) -> Polyline {
        Polyline::new((0..n.max(2)).map(|i| Point::new(i as f64, 0.0)).collect())
    }

    #[test]
    fn push_and_lookup() {
        let mut cs = ClusterStore::new();
        let p = PageId(3);
        let s0 = cs.push(p, line(2));
        let s1 = cs.push(p, line(5));
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(cs.get(p).unwrap().len(), 2);
        assert_eq!(cs.geometry(p, 1).unwrap().points().len(), 5);
        assert!(cs.geometry(p, 2).is_none());
        assert!(cs.geometry(PageId(9), 0).is_none());
    }

    #[test]
    fn bytes_accumulate() {
        let mut cs = ClusterStore::new();
        let p = PageId(0);
        cs.push(p, line(2)); // 4 + 32 = 36
        cs.push(p, line(3)); // 4 + 48 = 52
        assert_eq!(cs.bytes_of(p), 36 + 52);
        assert_eq!(cs.bytes_of(PageId(1)), 0);
    }

    #[test]
    fn avg_bytes_over_pages() {
        let mut cs = ClusterStore::new();
        cs.push(PageId(0), line(2)); // 36 bytes
        cs.push(PageId(1), line(2)); // 36 bytes
        cs.push(PageId(1), line(2)); // 72 total
        assert_eq!(cs.avg_bytes(), (36 + 72) / 2);
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn empty_store() {
        let cs = ClusterStore::new();
        assert!(cs.is_empty());
        assert_eq!(cs.avg_bytes(), 0);
    }
}
