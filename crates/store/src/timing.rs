//! Integer-nanosecond virtual time.
//!
//! All simulated clocks in the workspace use integer nanoseconds so that
//! event ordering is exact and runs are bit-for-bit reproducible — no
//! floating-point drift in the event queue.

/// Virtual time / durations in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECS: Nanos = 1_000_000_000;

/// Converts a duration in (possibly fractional) milliseconds to [`Nanos`].
#[inline]
pub fn millis_f(ms: f64) -> Nanos {
    debug_assert!(ms >= 0.0);
    (ms * MILLIS as f64).round() as Nanos
}

/// Converts [`Nanos`] to fractional seconds, for reporting.
#[inline]
pub fn to_secs(t: Nanos) -> f64 {
    t as f64 / SECS as f64
}

/// Converts [`Nanos`] to fractional milliseconds, for reporting.
#[inline]
pub fn to_millis(t: Nanos) -> f64 {
    t as f64 / MILLIS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_relationships() {
        assert_eq!(MILLIS, 1_000 * MICROS);
        assert_eq!(SECS, 1_000 * MILLIS);
    }

    #[test]
    fn millis_roundtrip() {
        assert_eq!(millis_f(16.0), 16 * MILLIS);
        assert_eq!(millis_f(37.5), 37 * MILLIS + 500 * MICROS);
        assert_eq!(to_millis(millis_f(2.25)), 2.25);
    }

    #[test]
    fn to_secs_scaling() {
        assert_eq!(to_secs(62 * SECS + 800 * MILLIS), 62.8);
    }
}
