//! Deletion with tree condensation (Guttman's `Delete`/`CondenseTree`,
//! adapted to the R\*-tree).
//!
//! Spatial relations are not append-only; a production index needs removal.
//! Deletion locates the leaf holding the entry, removes it, and walks the
//! path back up: nodes that fall below their minimum fill are dissolved and
//! their entries reinserted at their original level (which re-optimizes
//! placement, in the spirit of the R\*-tree's forced reinsertion). A root
//! with a single child is collapsed.

use crate::entry::DataEntry;
use crate::node::NodeKind;
use crate::tree::RTree;
use psj_geom::Rect;

impl RTree {
    /// Removes the data entry with the given `oid` whose MBR equals `mbr`.
    /// Returns the removed entry, or `None` if no such entry exists.
    ///
    /// `mbr` guides the search; if several entries share `oid` and `mbr`,
    /// one of them is removed.
    pub fn delete(&mut self, mbr: &Rect, oid: u64) -> Option<DataEntry> {
        // Find the path root → leaf containing the entry.
        let path = self.find_leaf(mbr, oid)?;
        let leaf = *path.last().expect("path is never empty");

        // Remove the entry from the leaf.
        let removed = {
            let entries = self.node_mut(leaf).data_entries_mut();
            let pos = entries
                .iter()
                .position(|e| e.oid == oid && e.mbr == *mbr)
                .expect("find_leaf returned a leaf without the entry");
            entries.swap_remove(pos)
        };
        self.dec_items();

        // Condense: dissolve underfull nodes bottom-up, collect orphans.
        let mut orphans: Vec<(u32, bool)> = Vec::new(); // (node idx, is_leaf)
        for i in (1..path.len()).rev() {
            let node_idx = path[i];
            let parent_idx = path[i - 1];
            let len = self.node(node_idx).len();
            if len < self.node(node_idx).min_fill() {
                // Remove the entry pointing to node_idx from the parent and
                // orphan the node.
                let entries = self.node_mut(parent_idx).dir_entries_mut();
                let pos = entries
                    .iter()
                    .position(|e| e.child == node_idx)
                    .expect("parent lost its child entry");
                entries.swap_remove(pos);
                orphans.push((node_idx, self.node(node_idx).is_leaf()));
            } else {
                // Tighten the parent entry's MBR.
                let new_mbr = self.node(node_idx).mbr();
                let entries = self.node_mut(parent_idx).dir_entries_mut();
                if let Some(e) = entries.iter_mut().find(|e| e.child == node_idx) {
                    e.mbr = new_mbr;
                }
            }
        }
        // Tighten remaining ancestors root-down (cheap: path is short).
        for i in (1..path.len()).rev() {
            let node_idx = path[i];
            let parent_idx = path[i - 1];
            let new_mbr = self.node(node_idx).mbr();
            let entries = self.node_mut(parent_idx).dir_entries_mut();
            if let Some(e) = entries.iter_mut().find(|e| e.child == node_idx) {
                e.mbr = new_mbr;
            }
        }

        // Reinsert the orphans' entries at their original levels.
        for (node_idx, is_leaf) in orphans {
            if is_leaf {
                let entries = std::mem::take(self.node_mut(node_idx).data_entries_mut());
                for e in entries {
                    self.reinsert_data(e);
                }
            } else {
                let entries = std::mem::take(self.node_mut(node_idx).dir_entries_mut());
                for e in entries {
                    self.reinsert_dir(e);
                }
            }
        }

        // Collapse a root that has a single directory child.
        loop {
            let root = self.root();
            let collapse = match &self.node(root).kind {
                NodeKind::Dir(entries) if entries.len() == 1 => Some(entries[0].child),
                NodeKind::Dir(entries) if entries.is_empty() => None, // impossible unless empty tree
                _ => None,
            };
            match collapse {
                Some(child) => self.set_root(child),
                None => break,
            }
        }
        // An empty directory root (everything deleted) degenerates to an
        // empty leaf.
        if self.is_empty() && !self.node(self.root()).is_leaf() {
            let empty = self.push_node(crate::node::Node::new_leaf());
            self.set_root(empty);
        }

        Some(removed)
    }

    /// Path from the root to a leaf containing `(mbr, oid)`.
    fn find_leaf(&self, mbr: &Rect, oid: u64) -> Option<Vec<u32>> {
        let mut stack: Vec<Vec<u32>> = vec![vec![self.root()]];
        while let Some(p) = stack.pop() {
            let node = self.node(*p.last().unwrap());
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    if entries.iter().any(|e| e.oid == oid && e.mbr == *mbr) {
                        return Some(p);
                    }
                }
                NodeKind::Dir(entries) => {
                    for e in entries {
                        if e.mbr.contains(mbr) {
                            let mut q = p.clone();
                            q.push(e.child);
                            stack.push(q);
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect_at(i: usize) -> Rect {
        let x = (i % 40) as f64;
        let y = (i / 40) as f64;
        Rect::new(x, y, x + 0.9, y + 0.9)
    }

    fn build(n: usize) -> RTree {
        let mut t = RTree::new();
        for i in 0..n {
            t.insert(rect_at(i), i as u64);
        }
        t
    }

    #[test]
    fn delete_single_entry() {
        let mut t = build(50);
        let removed = t.delete(&rect_at(7), 7);
        assert_eq!(removed.map(|e| e.oid), Some(7));
        assert_eq!(t.len(), 49);
        assert!(t.window_query(&rect_at(7)).iter().all(|e| e.oid != 7));
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_missing_entry_returns_none() {
        let mut t = build(50);
        assert!(t.delete(&rect_at(7), 999).is_none());
        assert!(t
            .delete(&Rect::new(500.0, 500.0, 501.0, 501.0), 7)
            .is_none());
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn delete_everything() {
        let mut t = build(300);
        for i in 0..300 {
            assert!(t.delete(&rect_at(i), i as u64).is_some(), "delete {i}");
            t.check_invariants()
                .unwrap_or_else(|e| panic!("after delete {i}: {e}"));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.window_query(&Rect::new(-1e9, -1e9, 1e9, 1e9)).is_empty());
    }

    #[test]
    fn delete_everything_reverse_order() {
        let mut t = build(300);
        for i in (0..300).rev() {
            assert!(t.delete(&rect_at(i), i as u64).is_some());
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn root_collapses_after_mass_deletion() {
        let mut t = build(2000);
        let h = t.height();
        assert!(h >= 2);
        for i in 0..1950 {
            t.delete(&rect_at(i), i as u64).unwrap();
        }
        assert!(t.height() <= h);
        assert_eq!(t.len(), 50);
        t.check_invariants().unwrap();
        // Remaining entries still retrievable.
        for i in 1950..2000 {
            let hits = t.window_query(&rect_at(i));
            assert!(hits.iter().any(|e| e.oid == i as u64), "lost entry {i}");
        }
    }

    #[test]
    fn interleaved_insert_delete() {
        let mut t = RTree::new();
        for round in 0..6 {
            for i in 0..200 {
                t.insert(rect_at(i + round * 7), (round * 1000 + i) as u64);
            }
            for i in 0..100 {
                assert!(
                    t.delete(&rect_at(i + round * 7), (round * 1000 + i) as u64)
                        .is_some(),
                    "round {round}, item {i}"
                );
            }
            t.check_invariants()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
        assert_eq!(t.len(), 6 * 100);
    }

    #[test]
    fn delete_one_of_duplicates() {
        let mut t = RTree::new();
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        for i in 0..40 {
            t.insert(r, i);
        }
        assert!(t.delete(&r, 13).is_some());
        assert!(t.delete(&r, 13).is_none(), "already deleted");
        assert_eq!(t.len(), 39);
        let hits = t.window_query(&r);
        assert_eq!(hits.len(), 39);
        assert!(hits.iter().all(|e| e.oid != 13));
    }
}
