//! The R\*-tree split algorithm (Beckmann et al., SIGMOD '90, §4.2).
//!
//! Splitting an overflowing node proceeds in two steps:
//!
//! 1. **ChooseSplitAxis** — for each axis, sort the entries by their lower
//!    and by their upper bound; over all legal distributions of both sorts,
//!    sum the margins of the two group MBRs. The axis with the minimum total
//!    margin wins (margin ≈ perimeter: minimizing it yields square-ish
//!    nodes).
//! 2. **ChooseSplitIndex** — along the winning axis, pick the distribution
//!    with minimum overlap between the two group MBRs, ties broken by
//!    minimum total area.
//!
//! A *distribution* assigns the first `m - 1 + k` entries (in sorted order)
//! to the first group and the rest to the second, for
//! `k = 1 .. M - 2m + 2`, so both groups respect the minimum fill `m`.

use psj_geom::Rect;

/// Anything with an MBR can be split; implemented by both entry kinds.
pub trait HasMbr {
    /// The entry's minimum bounding rectangle.
    fn mbr(&self) -> Rect;
}

impl HasMbr for crate::entry::DirEntry {
    fn mbr(&self) -> Rect {
        self.mbr
    }
}

impl HasMbr for crate::entry::DataEntry {
    fn mbr(&self) -> Rect {
        self.mbr
    }
}

/// Splits `entries` (an overflowing set of `M + 1` entries) into two groups,
/// each holding at least `min_fill` entries. Returns `(first, second)`.
pub fn rstar_split<E: HasMbr + Clone>(mut entries: Vec<E>, min_fill: usize) -> (Vec<E>, Vec<E>) {
    let total = entries.len();
    assert!(
        total >= 2 * min_fill,
        "cannot split {total} entries with min fill {min_fill}"
    );

    // --- ChooseSplitAxis -------------------------------------------------
    // For each axis and each sort (by lower / by upper bound), accumulate the
    // margin sum over all legal distributions.
    let mut best_axis = 0usize;
    let mut best_margin = f64::INFINITY;
    for axis in 0..2 {
        let mut margin_sum = 0.0;
        for lower in [true, false] {
            sort_entries(&mut entries, axis, lower);
            let (prefix, suffix) = group_mbrs(&entries);
            for k in distributions(total, min_fill) {
                margin_sum += prefix[k - 1].margin() + suffix[k].margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // --- ChooseSplitIndex ------------------------------------------------
    // Along the winning axis, examine both sorts again and take the
    // distribution with minimal overlap (ties: minimal total area).
    let mut best: Option<(bool, usize, f64, f64)> = None; // (lower, split, overlap, area)
    for lower in [true, false] {
        sort_entries(&mut entries, best_axis, lower);
        let (prefix, suffix) = group_mbrs(&entries);
        for k in distributions(total, min_fill) {
            let a = prefix[k - 1];
            let b = suffix[k];
            let overlap = a.overlap_area(&b);
            let area = a.area() + b.area();
            let better = match &best {
                None => true,
                Some((_, _, bo, ba)) => {
                    let (bo, ba) = (*bo, *ba);
                    overlap < bo || (overlap == bo && area < ba)
                }
            };
            if better {
                best = Some((lower, k, overlap, area));
            }
        }
    }
    let (lower, split, _, _) = best.expect("at least one distribution exists");
    sort_entries(&mut entries, best_axis, lower);
    let second = entries.split_off(split);
    (entries, second)
}

fn sort_entries<E: HasMbr>(entries: &mut [E], axis: usize, lower: bool) {
    entries.sort_by(|a, b| {
        let (ka, kb) = match (axis, lower) {
            (0, true) => (a.mbr().xl, b.mbr().xl),
            (0, false) => (a.mbr().xu, b.mbr().xu),
            (1, true) => (a.mbr().yl, b.mbr().yl),
            _ => (a.mbr().yu, b.mbr().yu),
        };
        ka.partial_cmp(&kb).expect("NaN coordinate")
    });
}

/// Legal split points: the first group takes entries `[0, k)`.
fn distributions(total: usize, min_fill: usize) -> impl Iterator<Item = usize> {
    min_fill..=(total - min_fill)
}

/// `prefix[i]` = MBR of entries `[0, i]`; `suffix[i]` = MBR of entries
/// `[i, total)`. Lets every distribution's group MBRs be read in O(1).
fn group_mbrs<E: HasMbr>(entries: &[E]) -> (Vec<Rect>, Vec<Rect>) {
    let n = entries.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Rect::empty();
    for e in entries {
        acc = acc.union(&e.mbr());
        prefix.push(acc);
    }
    let mut suffix = vec![Rect::empty(); n];
    let mut acc = Rect::empty();
    for i in (0..n).rev() {
        acc = acc.union(&entries[i].mbr());
        suffix[i] = acc;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{DataEntry, GeomRef};

    fn entry(xl: f64, yl: f64, xu: f64, yu: f64) -> DataEntry {
        DataEntry {
            mbr: Rect::new(xl, yl, xu, yu),
            oid: 0,
            geom: GeomRef::UNSET,
        }
    }

    #[test]
    fn split_respects_min_fill() {
        let entries: Vec<_> = (0..27)
            .map(|i| entry(i as f64, 0.0, i as f64 + 0.5, 1.0))
            .collect();
        let (a, b) = rstar_split(entries, 10);
        assert!(a.len() >= 10 && b.len() >= 10);
        assert_eq!(a.len() + b.len(), 27);
    }

    #[test]
    fn split_preserves_all_entries() {
        let entries: Vec<_> = (0..30)
            .map(|i| {
                entry(
                    (i % 5) as f64,
                    (i / 5) as f64,
                    (i % 5) as f64 + 1.0,
                    (i / 5) as f64 + 1.0,
                )
            })
            .collect();
        let oids: Vec<u64> = (0..30).collect();
        let entries: Vec<_> = entries
            .into_iter()
            .zip(&oids)
            .map(|(mut e, &o)| {
                e.oid = o;
                e
            })
            .collect();
        let (a, b) = rstar_split(entries, 10);
        let mut got: Vec<u64> = a.iter().chain(b.iter()).map(|e| e.oid).collect();
        got.sort_unstable();
        assert_eq!(got, oids);
    }

    #[test]
    fn split_separates_two_obvious_clusters() {
        // Two clusters far apart along x: the split must not mix them.
        let mut entries = Vec::new();
        for i in 0..10 {
            entries.push(entry(i as f64 * 0.1, 0.0, i as f64 * 0.1 + 0.05, 1.0));
        }
        for i in 0..10 {
            entries.push(entry(
                100.0 + i as f64 * 0.1,
                0.0,
                100.0 + i as f64 * 0.1 + 0.05,
                1.0,
            ));
        }
        let (a, b) = rstar_split(entries, 10);
        let mbr_a = a.iter().fold(Rect::empty(), |r, e| r.union(&e.mbr));
        let mbr_b = b.iter().fold(Rect::empty(), |r, e| r.union(&e.mbr));
        assert_eq!(
            mbr_a.overlap_area(&mbr_b),
            0.0,
            "clusters must separate cleanly"
        );
        assert!(!mbr_a.intersects(&mbr_b));
    }

    #[test]
    fn split_chooses_good_axis_vertically() {
        // Same picture rotated 90°: clusters separated along y.
        let mut entries = Vec::new();
        for i in 0..10 {
            entries.push(entry(0.0, i as f64 * 0.1, 1.0, i as f64 * 0.1 + 0.05));
        }
        for i in 0..10 {
            entries.push(entry(
                0.0,
                50.0 + i as f64 * 0.1,
                1.0,
                50.0 + i as f64 * 0.1 + 0.05,
            ));
        }
        let (a, b) = rstar_split(entries, 10);
        let mbr_a = a.iter().fold(Rect::empty(), |r, e| r.union(&e.mbr));
        let mbr_b = b.iter().fold(Rect::empty(), |r, e| r.union(&e.mbr));
        assert!(!mbr_a.intersects(&mbr_b));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_few_entries_panics() {
        let entries: Vec<_> = (0..5)
            .map(|i| entry(i as f64, 0.0, i as f64 + 1.0, 1.0))
            .collect();
        let _ = rstar_split(entries, 10);
    }
}
