//! An R\*-tree implementation with the page layout of the paper.
//!
//! The filter step of the spatial join operates on R\*-trees
//! (Beckmann/Kriegel/Schneider/Seeger, SIGMOD '90) over the objects' MBRs.
//! This crate provides:
//!
//! * [`RTree`] — the dynamic in-memory tree: ChooseSubtree, R\* split
//!   (axis + distribution selection by margin/overlap), and forced
//!   reinsertion;
//! * [`bulk::bulk_load_str`] — Sort-Tile-Recursive bulk loading, used as an
//!   ablation baseline against dynamic insertion;
//! * [`PagedTree`] — the frozen, paged form of a tree: nodes serialized into
//!   4 KB pages (40-byte directory entries, 156-byte data entries — the
//!   paper's Table 1 layout), entries sorted by their lower x bound so join
//!   tasks can plane-sweep without re-sorting;
//! * window queries on both forms, and [`TreeStats`] which regenerates
//!   Table 1.
//!
//! Levels are counted from the leaves: level 0 = data (leaf) nodes. The
//! *height* is the number of levels including the root (the paper's trees
//! have height 3: root → directory → data).

#![warn(missing_docs)]

pub mod access;
pub mod bulk;
pub mod delete;
pub mod entry;
pub mod hilbert;
pub mod nn;
pub mod node;
pub mod paged;
pub mod persist;
pub mod split;
pub mod stats;
pub mod tree;

pub use access::{window_query_via, NodeAccess};
pub use entry::{DataEntry, DirEntry, GeomRef, DATA_ENTRY_BYTES, DIR_ENTRY_BYTES};
pub use nn::nearest_neighbors_via;
pub use node::{Node, NodeKind, DATA_FANOUT, DATA_MIN_FILL, DIR_FANOUT, DIR_MIN_FILL};
pub use paged::PagedTree;
pub use persist::{
    fsck_file, generation_path, manifest_path, FsckReport, LenientLoad, Manifest, MANIFEST_FORMAT,
};
pub use stats::TreeStats;
pub use tree::RTree;
