//! The dynamic in-memory R\*-tree: insertion with ChooseSubtree, R\* split
//! and forced reinsertion (Beckmann et al., SIGMOD '90).

use crate::entry::{DataEntry, DirEntry, GeomRef};
use crate::node::{Node, NodeKind};
use crate::split::rstar_split;
use psj_geom::Rect;

/// Number of ChooseSubtree candidates examined with the exact
/// overlap-enlargement criterion when the node is large (the BKSS '90
/// "determine the nearly minimum overlap cost" optimization).
const CHOOSE_SUBTREE_CANDIDATES: usize = 32;

/// Fraction of entries removed by forced reinsertion (30 % of `M + 1`).
const REINSERT_FRACTION: f64 = 0.3;

/// A dynamic R\*-tree over data rectangles.
///
/// Nodes live in an arena ([`Vec<Node>`]); directory entries reference
/// children by arena index until the tree is frozen into pages
/// ([`crate::PagedTree`]). Levels count from the leaves (level 0).
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: u32,
    num_items: u64,
}

enum EntryUnion {
    Dir(DirEntry),
    Data(DataEntry),
}

impl EntryUnion {
    fn mbr(&self) -> Rect {
        match self {
            EntryUnion::Dir(e) => e.mbr,
            EntryUnion::Data(e) => e.mbr,
        }
    }

    fn level(&self, nodes: &[Node]) -> u32 {
        match self {
            EntryUnion::Dir(e) => nodes[e.child as usize].level + 1,
            EntryUnion::Data(_) => 0,
        }
    }
}

impl RTree {
    /// An empty tree (a single empty leaf as root).
    pub fn new() -> Self {
        RTree {
            nodes: vec![Node::new_leaf()],
            root: 0,
            num_items: 0,
        }
    }

    /// Assembles a tree from pre-built parts; callers guarantee structural
    /// consistency (used by bulk loading).
    pub(crate) fn assemble(nodes: Vec<Node>, root: u32, num_items: u64) -> Self {
        RTree {
            nodes,
            root,
            num_items,
        }
    }

    /// Number of data entries.
    pub fn len(&self) -> u64 {
        self.num_items
    }

    /// Whether the tree holds no data entries.
    pub fn is_empty(&self) -> bool {
        self.num_items == 0
    }

    /// Height of the tree: number of levels including the root. An empty
    /// tree has height 1.
    pub fn height(&self) -> u32 {
        self.nodes[self.root as usize].level + 1
    }

    /// The arena index of the root node.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The node arena (read-only).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by arena index.
    pub fn node(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    /// Mutable node access (crate-internal: deletion/condensation).
    pub(crate) fn node_mut(&mut self, idx: u32) -> &mut Node {
        &mut self.nodes[idx as usize]
    }

    /// Decrements the item counter (crate-internal: deletion).
    pub(crate) fn dec_items(&mut self) {
        self.num_items -= 1;
    }

    /// Replaces the root (crate-internal: root collapse on deletion).
    pub(crate) fn set_root(&mut self, idx: u32) {
        self.root = idx;
    }

    /// Appends a node to the arena, returning its index (crate-internal).
    pub(crate) fn push_node(&mut self, node: Node) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        idx
    }

    /// Reinserts a data entry (crate-internal: condensation).
    pub(crate) fn reinsert_data(&mut self, entry: DataEntry) {
        let mut flags = vec![false; self.height() as usize + 1];
        self.insert_entry(EntryUnion::Data(entry), &mut flags);
    }

    /// Reinserts a directory entry at its subtree's level (crate-internal:
    /// condensation).
    pub(crate) fn reinsert_dir(&mut self, entry: DirEntry) {
        let mut flags = vec![false; self.height() as usize + 1];
        self.insert_entry(EntryUnion::Dir(entry), &mut flags);
    }

    /// MBR of the whole tree.
    pub fn mbr(&self) -> Rect {
        self.nodes[self.root as usize].mbr()
    }

    /// Inserts an object with the given MBR and id.
    pub fn insert(&mut self, mbr: Rect, oid: u64) {
        let entry = DataEntry {
            mbr,
            oid,
            geom: GeomRef::UNSET,
        };
        let mut reinserted = vec![false; self.height() as usize + 1];
        self.insert_entry(EntryUnion::Data(entry), &mut reinserted);
        self.num_items += 1;
    }

    /// Window query: all data entries whose MBR intersects `window`.
    pub fn window_query(&self, window: &Rect) -> Vec<DataEntry> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx as usize].kind {
                NodeKind::Dir(entries) => {
                    for e in entries {
                        if e.mbr.intersects(window) {
                            stack.push(e.child);
                        }
                    }
                }
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        if e.mbr.intersects(window) {
                            out.push(*e);
                        }
                    }
                }
            }
        }
        out
    }

    // --- insertion machinery ---------------------------------------------

    fn insert_entry(&mut self, entry: EntryUnion, reinserted: &mut Vec<bool>) {
        let target_level = entry.level(&self.nodes);
        // Find the insertion path root → node at target_level.
        let mut path = Vec::with_capacity(self.height() as usize);
        let mut cur = self.root;
        while self.nodes[cur as usize].level > target_level {
            let slot = self.choose_subtree(cur, &entry.mbr());
            path.push((cur, slot));
            cur = self.nodes[cur as usize].dir_entries()[slot].child;
        }
        debug_assert_eq!(self.nodes[cur as usize].level, target_level);

        // Insert the entry.
        match entry {
            EntryUnion::Data(e) => self.nodes[cur as usize].data_entries_mut().push(e),
            EntryUnion::Dir(e) => self.nodes[cur as usize].dir_entries_mut().push(e),
        }

        // Tighten MBRs along the path (overflow handling re-tightens below).
        self.adjust_path_mbrs(&path, cur);

        // Handle overflow bottom-up.
        let mut node_idx = cur;
        while self.nodes[node_idx as usize].len() > self.nodes[node_idx as usize].fanout() {
            let level = self.nodes[node_idx as usize].level as usize;
            let is_root = node_idx == self.root;
            if !is_root && !reinserted[level] {
                reinserted[level] = true;
                self.force_reinsert(node_idx, &path, reinserted);
                return; // reinsertions have completed the structural work
            }
            // Split.
            let sibling_idx = self.split_node(node_idx);
            if is_root {
                self.grow_root(node_idx, sibling_idx);
                return;
            }
            // Add sibling entry to the parent and fix the node's own entry.
            let (parent, slot) = *path
                .iter()
                .rev()
                .find(|(p, _)| {
                    self.nodes[*p as usize].level == self.nodes[node_idx as usize].level + 1
                })
                .expect("non-root node must have a parent on the path");
            let node_mbr = self.nodes[node_idx as usize].mbr();
            let sib_mbr = self.nodes[sibling_idx as usize].mbr();
            {
                let pe = self.nodes[parent as usize].dir_entries_mut();
                pe[slot].mbr = node_mbr;
                pe.push(DirEntry {
                    mbr: sib_mbr,
                    child: sibling_idx,
                });
            }
            self.adjust_path_mbrs(&path, parent);
            node_idx = parent;
        }
    }

    /// ChooseSubtree: pick the child of directory node `idx` that should
    /// receive an entry with MBR `r`.
    fn choose_subtree(&self, idx: u32, r: &Rect) -> usize {
        let node = &self.nodes[idx as usize];
        let entries = node.dir_entries();
        debug_assert!(!entries.is_empty());
        let children_are_leaves = node.level == 1;
        if children_are_leaves {
            // Minimum overlap enlargement; ties → min area enlargement, then
            // min area. For big nodes, restrict the exact O(M²) criterion to
            // the CHOOSE_SUBTREE_CANDIDATES entries of least area
            // enlargement (BKSS '90).
            let mut order: Vec<usize> = (0..entries.len()).collect();
            if entries.len() > CHOOSE_SUBTREE_CANDIDATES {
                order.sort_by(|&a, &b| {
                    entries[a]
                        .mbr
                        .enlargement(r)
                        .partial_cmp(&entries[b].mbr.enlargement(r))
                        .expect("NaN enlargement")
                });
                order.truncate(CHOOSE_SUBTREE_CANDIDATES);
            }
            let mut best = order[0];
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for &cand in &order {
                let enlarged = entries[cand].mbr.union(r);
                let mut overlap_enl = 0.0;
                for (j, other) in entries.iter().enumerate() {
                    if j != cand {
                        overlap_enl += enlarged.overlap_area(&other.mbr)
                            - entries[cand].mbr.overlap_area(&other.mbr);
                    }
                }
                let key = (
                    overlap_enl,
                    entries[cand].mbr.enlargement(r),
                    entries[cand].mbr.area(),
                );
                if key < best_key {
                    best_key = key;
                    best = cand;
                }
            }
            best
        } else {
            // Minimum area enlargement; ties → min area.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let key = (e.mbr.enlargement(r), e.mbr.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    /// Forced reinsertion: remove the 30 % of entries farthest from the
    /// node's center and insert them again at the same level, closest first
    /// ("close reinsert").
    fn force_reinsert(&mut self, node_idx: u32, path: &[(u32, usize)], reinserted: &mut Vec<bool>) {
        let center = self.nodes[node_idx as usize].mbr().center();
        let count = self.nodes[node_idx as usize].len();
        let p = ((count as f64) * REINSERT_FRACTION).ceil() as usize;
        let p = p.clamp(1, count - self.nodes[node_idx as usize].min_fill());

        let mut removed: Vec<EntryUnion> = Vec::with_capacity(p);
        {
            let node = &mut self.nodes[node_idx as usize];
            match &mut node.kind {
                NodeKind::Leaf(v) => {
                    let mut order: Vec<usize> = (0..v.len()).collect();
                    order.sort_by(|&a, &b| {
                        let da = v[a].mbr.center().distance_sq(&center);
                        let db = v[b].mbr.center().distance_sq(&center);
                        db.partial_cmp(&da).expect("NaN distance")
                    });
                    let far: Vec<usize> = order.into_iter().take(p).collect();
                    let mut far_sorted = far.clone();
                    far_sorted.sort_unstable_by(|a, b| b.cmp(a));
                    for i in far_sorted {
                        removed.push(EntryUnion::Data(v.swap_remove(i)));
                    }
                }
                NodeKind::Dir(v) => {
                    let mut order: Vec<usize> = (0..v.len()).collect();
                    order.sort_by(|&a, &b| {
                        let da = v[a].mbr.center().distance_sq(&center);
                        let db = v[b].mbr.center().distance_sq(&center);
                        db.partial_cmp(&da).expect("NaN distance")
                    });
                    let far: Vec<usize> = order.into_iter().take(p).collect();
                    let mut far_sorted = far.clone();
                    far_sorted.sort_unstable_by(|a, b| b.cmp(a));
                    for i in far_sorted {
                        removed.push(EntryUnion::Dir(v.swap_remove(i)));
                    }
                }
            }
        }
        // Tighten the path after shrinking the node.
        self.adjust_path_mbrs(path, node_idx);

        // Close reinsert: nearest to the old center first.
        removed.sort_by(|a, b| {
            let da = a.mbr().center().distance_sq(&center);
            let db = b.mbr().center().distance_sq(&center);
            da.partial_cmp(&db).expect("NaN distance")
        });
        for e in removed {
            self.insert_entry(e, reinserted);
        }
    }

    fn split_node(&mut self, node_idx: u32) -> u32 {
        let level = self.nodes[node_idx as usize].level;
        let min_fill = self.nodes[node_idx as usize].min_fill();
        let sibling = match &mut self.nodes[node_idx as usize].kind {
            NodeKind::Leaf(v) => {
                let (a, b) = rstar_split(std::mem::take(v), min_fill);
                *v = a;
                Node::from_parts(level, NodeKind::Leaf(b))
            }
            NodeKind::Dir(v) => {
                let (a, b) = rstar_split(std::mem::take(v), min_fill);
                *v = a;
                Node::from_parts(level, NodeKind::Dir(b))
            }
        };
        let sibling_idx = self.nodes.len() as u32;
        self.nodes.push(sibling);
        sibling_idx
    }

    fn grow_root(&mut self, old_root: u32, sibling: u32) {
        let level = self.nodes[old_root as usize].level + 1;
        let mut new_root = Node::new_dir(level);
        new_root.dir_entries_mut().push(DirEntry {
            mbr: self.nodes[old_root as usize].mbr(),
            child: old_root,
        });
        new_root.dir_entries_mut().push(DirEntry {
            mbr: self.nodes[sibling as usize].mbr(),
            child: sibling,
        });
        let idx = self.nodes.len() as u32;
        self.nodes.push(new_root);
        self.root = idx;
    }

    /// Recomputes the MBRs stored in the parents along `path` for the
    /// subtree that ends at `below` (and everything above it).
    fn adjust_path_mbrs(&mut self, path: &[(u32, usize)], below: u32) {
        let mut child = below;
        for &(parent, slot) in path.iter().rev() {
            if self.nodes[parent as usize].level <= self.nodes[child as usize].level {
                continue;
            }
            // Only touch parents that actually lie above `child` on the path.
            if self.nodes[parent as usize].dir_entries()[slot].child != child {
                continue;
            }
            let mbr = self.nodes[child as usize].mbr();
            self.nodes[parent as usize].dir_entries_mut()[slot].mbr = mbr;
            child = parent;
        }
    }

    /// Verifies the structural invariants; used by tests and debug builds.
    ///
    /// Checks: parent MBRs contain (exactly bound) child MBRs, fanout limits,
    /// uniform leaf depth, and the entry count.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen_items = 0u64;
        let mut stack = vec![(self.root, None::<Rect>)];
        let root_level = self.nodes[self.root as usize].level;
        while let Some((idx, expected_mbr)) = stack.pop() {
            let node = &self.nodes[idx as usize];
            if let Some(m) = expected_mbr {
                if node.mbr() != m {
                    return Err(format!(
                        "node {idx}: parent entry MBR {:?} != node MBR {:?}",
                        m,
                        node.mbr()
                    ));
                }
            }
            if idx != self.root && node.len() < node.min_fill() {
                return Err(format!("node {idx} underfull: {} entries", node.len()));
            }
            if node.len() > node.fanout() {
                return Err(format!("node {idx} overflows: {} entries", node.len()));
            }
            match &node.kind {
                NodeKind::Dir(entries) => {
                    if node.level == 0 {
                        return Err(format!("directory node {idx} at level 0"));
                    }
                    for e in entries {
                        let child = &self.nodes[e.child as usize];
                        if child.level + 1 != node.level {
                            return Err(format!(
                                "node {idx} level {} has child at level {}",
                                node.level, child.level
                            ));
                        }
                        stack.push((e.child, Some(e.mbr)));
                    }
                }
                NodeKind::Leaf(entries) => {
                    if node.level != 0 {
                        return Err(format!("leaf {idx} at level {}", node.level));
                    }
                    let _ = root_level;
                    seen_items += entries.len() as u64;
                }
            }
        }
        if seen_items != self.num_items {
            return Err(format!(
                "tree claims {} items, found {}",
                self.num_items, seen_items
            ));
        }
        Ok(())
    }
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DATA_FANOUT;

    fn rect_at(i: usize) -> Rect {
        let x = (i % 100) as f64 * 2.0;
        let y = (i / 100) as f64 * 2.0;
        Rect::new(x, y, x + 1.5, y + 1.5)
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.window_query(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_within_one_leaf() {
        let mut t = RTree::new();
        for i in 0..DATA_FANOUT {
            t.insert(rect_at(i), i as u64);
        }
        assert_eq!(t.height(), 1);
        assert_eq!(t.len(), DATA_FANOUT as u64);
        t.check_invariants().unwrap();
    }

    #[test]
    fn first_split_grows_root() {
        let mut t = RTree::new();
        for i in 0..=DATA_FANOUT {
            t.insert(rect_at(i), i as u64);
        }
        assert_eq!(t.height(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn thousand_inserts_keep_invariants() {
        let mut t = RTree::new();
        for i in 0..1000 {
            t.insert(rect_at(i), i as u64);
        }
        assert_eq!(t.len(), 1000);
        assert!(t.height() >= 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn window_query_equals_linear_scan() {
        let mut t = RTree::new();
        let rects: Vec<Rect> = (0..500).map(rect_at).collect();
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        for window in [
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(50.0, 0.0, 80.0, 6.0),
            Rect::new(-5.0, -5.0, -1.0, -1.0),
            Rect::new(0.0, 0.0, 500.0, 500.0),
        ] {
            let mut got: Vec<u64> = t.window_query(&window).iter().map(|e| e.oid).collect();
            got.sort_unstable();
            let want: Vec<u64> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&window))
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(got, want, "window {window:?}");
        }
    }

    #[test]
    fn duplicate_rects_are_kept() {
        let mut t = RTree::new();
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        for i in 0..100 {
            t.insert(r, i);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.window_query(&r).len(), 100);
        t.check_invariants().unwrap();
    }

    #[test]
    fn mbr_covers_everything() {
        let mut t = RTree::new();
        for i in 0..300 {
            t.insert(rect_at(i), i as u64);
        }
        let m = t.mbr();
        for e in t.window_query(&m) {
            assert!(m.contains(&e.mbr));
        }
    }
}
