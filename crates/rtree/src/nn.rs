//! Nearest-neighbor queries (best-first branch and bound, Hjaltason &
//! Samet style).
//!
//! The paper's future work names neighbor queries as the next operator to
//! integrate with parallel spatial query processing; the sequential
//! building block is provided here for both tree forms.

use crate::access::NodeAccess;
use crate::entry::DataEntry;
use crate::node::NodeKind;
use crate::paged::PagedTree;
use crate::tree::RTree;
use psj_geom::{Point, Rect};
use psj_store::PageId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Minimum distance between a point and a rectangle (0 when inside).
pub fn min_dist(p: &Point, r: &Rect) -> f64 {
    let dx = (r.xl - p.x).max(0.0).max(p.x - r.xu);
    let dy = (r.yl - p.y).max(0.0).max(p.y - r.yu);
    (dx * dx + dy * dy).sqrt()
}

/// Heap element ordered by ascending distance.
struct HeapItem<T> {
    dist: f64,
    item: T,
}

impl<T> PartialEq for HeapItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T> Eq for HeapItem<T> {}
impl<T> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapItem<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on distance. `total_cmp` keeps Eq/Ord
        // consistent even for NaN distances (possible when a corrupt or
        // adversarial rectangle carries NaN coordinates): NaN sorts after
        // every finite distance, so such candidates drain last instead of
        // corrupting the heap's ordering invariant.
        other.dist.total_cmp(&self.dist)
    }
}

enum Candidate {
    Node(u32),
    Entry(DataEntry),
}

impl RTree {
    /// The `k` data entries whose MBRs are nearest to `query`, ascending by
    /// distance (ties in arbitrary order). Returns fewer than `k` when the
    /// tree is smaller.
    pub fn nearest_neighbors(&self, query: &Point, k: usize) -> Vec<(f64, DataEntry)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapItem<Candidate>> = BinaryHeap::new();
        heap.push(HeapItem {
            dist: 0.0,
            item: Candidate::Node(self.root()),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(HeapItem { dist, item }) = heap.pop() {
            match item {
                Candidate::Node(idx) => match &self.node(idx).kind {
                    NodeKind::Dir(entries) => {
                        for e in entries {
                            heap.push(HeapItem {
                                dist: min_dist(query, &e.mbr),
                                item: Candidate::Node(e.child),
                            });
                        }
                    }
                    NodeKind::Leaf(entries) => {
                        for e in entries {
                            heap.push(HeapItem {
                                dist: min_dist(query, &e.mbr),
                                item: Candidate::Entry(*e),
                            });
                        }
                    }
                },
                Candidate::Entry(e) => {
                    out.push((dist, e));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }
}

enum PagedCandidate {
    Node(PageId),
    Entry(DataEntry),
}

/// Best-first k-NN descent over any [`NodeAccess`]: identical candidate
/// order to [`RTree::nearest_neighbors`], so the in-memory delegation in
/// [`PagedTree::nearest_neighbors`] and any cache-backed accessor produce
/// the same distance sequence. Each node borrow is dropped before the next
/// page is read, so pin-guard accessors hold at most one pin at a time.
pub fn nearest_neighbors_via<A: NodeAccess>(
    access: &mut A,
    root: PageId,
    query: &Point,
    k: usize,
) -> Result<Vec<(f64, DataEntry)>, psj_store::PageError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut heap: BinaryHeap<HeapItem<PagedCandidate>> = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        item: PagedCandidate::Node(root),
    });
    let mut out = Vec::with_capacity(k);
    while let Some(HeapItem { dist, item }) = heap.pop() {
        match item {
            PagedCandidate::Node(page) => {
                let node = access.read(page)?;
                match &node.kind {
                    NodeKind::Dir(entries) => {
                        for e in entries {
                            heap.push(HeapItem {
                                dist: min_dist(query, &e.mbr),
                                item: PagedCandidate::Node(PageId(e.child)),
                            });
                        }
                    }
                    NodeKind::Leaf(entries) => {
                        for e in entries {
                            heap.push(HeapItem {
                                dist: min_dist(query, &e.mbr),
                                item: PagedCandidate::Entry(*e),
                            });
                        }
                    }
                }
            }
            PagedCandidate::Entry(e) => {
                out.push((dist, e));
                if out.len() == k {
                    break;
                }
            }
        }
    }
    Ok(out)
}

impl PagedTree {
    /// The `k` data entries whose MBRs are nearest to `query`; see
    /// [`RTree::nearest_neighbors`]. Delegates to [`nearest_neighbors_via`]
    /// over the infallible in-memory accessor.
    pub fn nearest_neighbors(&self, query: &Point, k: usize) -> Vec<(f64, DataEntry)> {
        if self.is_empty() {
            return Vec::new();
        }
        nearest_neighbors_via(&mut &*self, self.root(), query, k)
            .expect("in-memory node access is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> RTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 40) as f64;
            let y = (i / 40) as f64;
            t.insert(Rect::new(x, y, x + 0.5, y + 0.5), i as u64);
        }
        t
    }

    #[test]
    fn min_dist_basics() {
        let r = Rect::new(1.0, 1.0, 3.0, 3.0);
        assert_eq!(min_dist(&Point::new(2.0, 2.0), &r), 0.0); // inside
        assert_eq!(min_dist(&Point::new(0.0, 2.0), &r), 1.0); // left
        assert_eq!(min_dist(&Point::new(4.0, 2.0), &r), 1.0); // right
        assert_eq!(min_dist(&Point::new(0.0, 0.0), &r), 2.0_f64.sqrt()); // corner
    }

    #[test]
    fn nn_matches_linear_scan() {
        let t = build(500);
        let queries = [
            Point::new(0.0, 0.0),
            Point::new(20.3, 6.1),
            Point::new(-5.0, 100.0),
            Point::new(39.9, 12.0),
        ];
        for q in queries {
            for k in [1usize, 5, 17] {
                let got: Vec<u64> = t
                    .nearest_neighbors(&q, k)
                    .iter()
                    .map(|(_, e)| e.oid)
                    .collect();
                // Linear-scan oracle.
                let mut all: Vec<(f64, u64)> = t
                    .window_query(&t.mbr())
                    .iter()
                    .map(|e| (min_dist(&q, &e.mbr), e.oid))
                    .collect();
                all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                // Distances must match exactly (ids may tie).
                let want_dists: Vec<f64> = all.iter().take(k).map(|(d, _)| *d).collect();
                let got_dists: Vec<f64> =
                    t.nearest_neighbors(&q, k).iter().map(|(d, _)| *d).collect();
                assert_eq!(got_dists, want_dists, "q={q:?} k={k}");
                assert_eq!(got.len(), k);
            }
        }
    }

    #[test]
    fn nn_results_are_sorted_by_distance() {
        let t = build(300);
        let res = t.nearest_neighbors(&Point::new(11.5, 3.2), 20);
        assert!(res.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn nn_k_larger_than_tree() {
        let t = build(10);
        let res = t.nearest_neighbors(&Point::new(0.0, 0.0), 50);
        assert_eq!(res.len(), 10);
    }

    #[test]
    fn nn_zero_k_and_empty_tree() {
        let t = build(10);
        assert!(t.nearest_neighbors(&Point::new(0.0, 0.0), 0).is_empty());
        let empty = RTree::new();
        assert!(empty.nearest_neighbors(&Point::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn heap_item_order_is_total_and_consistent_with_eq_under_nan() {
        // Regression: `Ord` used `partial_cmp(..).unwrap_or(Equal)` while
        // `PartialEq` compared the raw f64s, so a NaN distance made
        // `a == b` disagree with `a.cmp(&b) == Equal` and silently broke
        // the BinaryHeap ordering invariant.
        let nan = HeapItem {
            dist: f64::NAN,
            item: (),
        };
        let fin = HeapItem {
            dist: 1.0,
            item: (),
        };
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(nan == nan, "Eq must agree with Ord for NaN");
        assert_ne!(nan.cmp(&fin), Ordering::Equal);
        assert!(nan != fin);
        // Min-heap order: NaN sorts after every finite distance, so it is
        // the *smallest* element of the max-heap encoding.
        assert_eq!(nan.cmp(&fin), Ordering::Less);

        let mut heap: BinaryHeap<HeapItem<u32>> = BinaryHeap::new();
        for (d, i) in [(2.0, 0), (f64::NAN, 1), (0.5, 2), (f64::NAN, 3), (1.5, 4)] {
            heap.push(HeapItem { dist: d, item: i });
        }
        let drained: Vec<f64> = std::iter::from_fn(|| heap.pop().map(|h| h.dist)).collect();
        assert_eq!(&drained[..3], &[0.5, 1.5, 2.0], "finite dists ascend");
        assert!(drained[3..].iter().all(|d| d.is_nan()), "NaNs drain last");
    }

    #[test]
    fn nan_coordinate_survives_freeze_and_nn() {
        // A NaN rectangle (planted directly in a leaf, as a corrupt decode
        // would produce — `Rect::new` debug-asserts, and the insert path
        // would reject it earlier) must neither panic the freeze-time
        // `sort_entries_by_xl` nor wedge the k-NN heap.
        let mut t = build(100);
        let nan_rect = Rect {
            xl: f64::NAN,
            yl: 0.0,
            xu: f64::NAN,
            yu: 0.5,
        };
        let leaf = (0..t.nodes().len() as u32)
            .find(|&i| matches!(t.node(i).kind, NodeKind::Leaf(_)))
            .expect("built tree has a leaf");
        match &mut t.node_mut(leaf).kind {
            NodeKind::Leaf(entries) => entries[0].mbr = nan_rect,
            NodeKind::Dir(_) => unreachable!(),
        }
        let p = crate::paged::PagedTree::freeze(&t, |_| None);
        for tree_nn in [t.nearest_neighbors(&Point::new(3.0, 3.0), 12), {
            p.nearest_neighbors(&Point::new(3.0, 3.0), 12)
        }] {
            assert_eq!(tree_nn.len(), 12);
            let finite: Vec<f64> = tree_nn
                .iter()
                .map(|(d, _)| *d)
                .filter(|d| d.is_finite())
                .collect();
            assert!(
                finite.windows(2).all(|w| w[0] <= w[1]),
                "finite results stay sorted: {finite:?}"
            );
        }
    }

    #[test]
    fn paged_nn_agrees_with_in_memory() {
        let t = build(400);
        let p = crate::paged::PagedTree::freeze(&t, |_| None);
        for q in [Point::new(5.0, 5.0), Point::new(33.3, 1.1)] {
            let a: Vec<(u64,)> = t
                .nearest_neighbors(&q, 8)
                .iter()
                .map(|(_, e)| (e.oid,))
                .collect();
            let b: Vec<(u64,)> = p
                .nearest_neighbors(&q, 8)
                .iter()
                .map(|(_, e)| (e.oid,))
                .collect();
            // Distances equal; compare distance sequences to dodge ties.
            let da: Vec<f64> = t.nearest_neighbors(&q, 8).iter().map(|(d, _)| *d).collect();
            let db: Vec<f64> = p.nearest_neighbors(&q, 8).iter().map(|(d, _)| *d).collect();
            assert_eq!(da, db);
            assert_eq!(a.len(), b.len());
        }
    }
}
