//! Tree nodes and their 4 KB page serialization.

use crate::entry::{DataEntry, DirEntry, DATA_ENTRY_BYTES, DIR_ENTRY_BYTES};
use bytes::{Buf, BufMut};
use psj_geom::{Rect, SoaMbrs};
use psj_store::{Page, PAGE_SIZE};
use std::sync::OnceLock;

/// Bytes reserved for the node header (level, kind, entry count).
pub const NODE_HEADER_BYTES: usize = 16;

/// Maximum entries in a directory page: `(4096 - 16) / 40 = 102`.
pub const DIR_FANOUT: usize = (PAGE_SIZE - NODE_HEADER_BYTES) / DIR_ENTRY_BYTES;

/// Maximum entries in a data page: `(4096 - 16) / 156 = 26`.
pub const DATA_FANOUT: usize = (PAGE_SIZE - NODE_HEADER_BYTES) / DATA_ENTRY_BYTES;

/// Minimum fill of a directory page (40 % of the maximum, the R\*-tree's
/// recommended `m`).
pub const DIR_MIN_FILL: usize = DIR_FANOUT * 2 / 5;

/// Minimum fill of a data page (40 % of the maximum).
pub const DATA_MIN_FILL: usize = DATA_FANOUT * 2 / 5;

/// Entries of a node: directory entries above level 0, data entries at
/// level 0.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// An internal (directory) node.
    Dir(Vec<DirEntry>),
    /// A leaf (data) node.
    Leaf(Vec<DataEntry>),
}

/// One R\*-tree node. `level` counts from the leaves (0 = leaf).
#[derive(Debug, Clone)]
pub struct Node {
    /// Level of the node; leaves are level 0.
    pub level: u32,
    /// The node's entries.
    pub kind: NodeKind,
    /// Frozen struct-of-arrays view of the entry MBRs, built once per node
    /// (eagerly at freeze/decode, lazily otherwise) and reused by every
    /// plane-sweep that restricts this node. Invalidated by the `&mut`
    /// entry accessors; not part of the node's identity or page encoding.
    pub(crate) soa: OnceLock<SoaMbrs>,
}

/// Node equality is entry equality: the cached SoA view is derived state and
/// deliberately ignored (a freshly decoded node must compare equal to the
/// node it was encoded from).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.level == other.level && self.kind == other.kind
    }
}

impl Node {
    /// An empty leaf.
    pub fn new_leaf() -> Self {
        Node {
            level: 0,
            kind: NodeKind::Leaf(Vec::with_capacity(DATA_FANOUT + 1)),
            soa: OnceLock::new(),
        }
    }

    /// An empty directory node at `level`.
    pub fn new_dir(level: u32) -> Self {
        Node {
            level,
            kind: NodeKind::Dir(Vec::with_capacity(DIR_FANOUT + 1)),
            soa: OnceLock::new(),
        }
    }

    /// Builds a node from a level and entry set.
    pub fn from_parts(level: u32, kind: NodeKind) -> Self {
        Node {
            level,
            kind,
            soa: OnceLock::new(),
        }
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Dir(v) => v.len(),
            NodeKind::Leaf(v) => v.len(),
        }
    }

    /// Whether the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entry count for this node's kind.
    pub fn fanout(&self) -> usize {
        if self.is_leaf() {
            DATA_FANOUT
        } else {
            DIR_FANOUT
        }
    }

    /// Minimum fill for this node's kind.
    pub fn min_fill(&self) -> usize {
        if self.is_leaf() {
            DATA_MIN_FILL
        } else {
            DIR_MIN_FILL
        }
    }

    /// Whether one more entry would overflow the page.
    pub fn is_full(&self) -> bool {
        self.len() >= self.fanout()
    }

    /// MBR of entry `i`.
    pub fn mbr_of(&self, i: usize) -> Rect {
        match &self.kind {
            NodeKind::Dir(v) => v[i].mbr,
            NodeKind::Leaf(v) => v[i].mbr,
        }
    }

    /// Union of all entry MBRs ([`Rect::empty`] for an empty node).
    pub fn mbr(&self) -> Rect {
        let mut r = Rect::empty();
        match &self.kind {
            NodeKind::Dir(v) => {
                for e in v {
                    r = r.union(&e.mbr);
                }
            }
            NodeKind::Leaf(v) => {
                for e in v {
                    r = r.union(&e.mbr);
                }
            }
        }
        r
    }

    /// The directory entries.
    ///
    /// # Panics
    ///
    /// Panics on a leaf node.
    pub fn dir_entries(&self) -> &[DirEntry] {
        match &self.kind {
            NodeKind::Dir(v) => v,
            NodeKind::Leaf(_) => panic!("dir_entries on a leaf"),
        }
    }

    /// The data entries.
    ///
    /// # Panics
    ///
    /// Panics on a directory node.
    pub fn data_entries(&self) -> &[DataEntry] {
        match &self.kind {
            NodeKind::Leaf(v) => v,
            NodeKind::Dir(_) => panic!("data_entries on a directory node"),
        }
    }

    /// Mutable directory entries; see [`Node::dir_entries`].
    pub fn dir_entries_mut(&mut self) -> &mut Vec<DirEntry> {
        self.soa.take();
        match &mut self.kind {
            NodeKind::Dir(v) => v,
            NodeKind::Leaf(_) => panic!("dir_entries_mut on a leaf"),
        }
    }

    /// Mutable data entries; see [`Node::data_entries`].
    pub fn data_entries_mut(&mut self) -> &mut Vec<DataEntry> {
        self.soa.take();
        match &mut self.kind {
            NodeKind::Leaf(v) => v,
            NodeKind::Dir(_) => panic!("data_entries_mut on a directory node"),
        }
    }

    /// MBRs of all entries, in entry order (used by the join's plane sweep).
    pub fn entry_mbrs(&self) -> Vec<Rect> {
        match &self.kind {
            NodeKind::Dir(v) => v.iter().map(|e| e.mbr).collect(),
            NodeKind::Leaf(v) => v.iter().map(|e| e.mbr).collect(),
        }
    }

    /// Frozen struct-of-arrays view of the entry MBRs (same entry order as
    /// [`Node::entry_mbrs`]), built on first use and cached for the node's
    /// lifetime. The join kernel filters restriction windows over this view
    /// instead of copying `Rect`s per call.
    pub fn soa_mbrs(&self) -> &SoaMbrs {
        self.soa.get_or_init(|| match &self.kind {
            NodeKind::Dir(v) => SoaMbrs::from_iter(v.iter().map(|e| e.mbr)),
            NodeKind::Leaf(v) => SoaMbrs::from_iter(v.iter().map(|e| e.mbr)),
        })
    }

    /// Eagerly builds the SoA view so the join never pays construction cost
    /// on the hot path. Called at freeze and decode time.
    pub fn prime_soa(&self) {
        let _ = self.soa_mbrs();
    }

    /// Sorts the entries by their lower x bound, the precondition of the
    /// plane-sweep join. Called when the tree is frozen into pages.
    /// `total_cmp` gives a total order even for NaN coordinates (which sort
    /// after every finite bound), so a degenerate rectangle degrades to a
    /// deterministic order instead of a freeze-time panic.
    pub fn sort_entries_by_xl(&mut self) {
        self.soa.take();
        match &mut self.kind {
            NodeKind::Dir(v) => v.sort_by(|a, b| a.mbr.xl.total_cmp(&b.mbr.xl)),
            NodeKind::Leaf(v) => v.sort_by(|a, b| a.mbr.xl.total_cmp(&b.mbr.xl)),
        }
    }

    /// Serializes the node into a 4 KB page.
    ///
    /// # Panics
    ///
    /// Panics if the node overflows its fanout (cannot happen for nodes
    /// produced by the insertion/split algorithms).
    pub fn encode(&self, page: &mut Page) {
        assert!(self.len() <= self.fanout(), "node overflows page");
        let buf = &mut page.bytes_mut()[..];
        let mut w = &mut buf[..];
        w.put_u32_le(self.level);
        w.put_u8(if self.is_leaf() { 0 } else { 1 });
        w.put_bytes(0, 3);
        w.put_u32_le(self.len() as u32);
        w.put_bytes(0, 4);
        match &self.kind {
            NodeKind::Dir(v) => {
                for e in v {
                    e.encode(&mut w);
                }
            }
            NodeKind::Leaf(v) => {
                for e in v {
                    e.encode(&mut w);
                }
            }
        }
    }

    /// Deserializes a node from a 4 KB page.
    pub fn decode(page: &Page) -> Self {
        let mut r = &page.bytes()[..];
        let level = r.get_u32_le();
        let kind_tag = r.get_u8();
        r.advance(3);
        let count = r.get_u32_le() as usize;
        r.advance(4);
        let kind = if kind_tag == 0 {
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(DataEntry::decode(&mut r));
            }
            NodeKind::Leaf(v)
        } else {
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(DirEntry::decode(&mut r));
            }
            NodeKind::Dir(v)
        };
        let node = Node {
            level,
            kind,
            soa: OnceLock::new(),
        };
        // Decode is how pages enter the join (load and cache miss paths):
        // prime here so the SoA view is "persisted alongside" every page —
        // deterministically rebuilt from the page bytes it mirrors.
        node.prime_soa();
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::GeomRef;

    fn leaf_with(n: usize) -> Node {
        let mut node = Node::new_leaf();
        for i in 0..n {
            node.data_entries_mut().push(DataEntry {
                mbr: Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
                oid: i as u64,
                geom: GeomRef::UNSET,
            });
        }
        node
    }

    #[test]
    fn fanouts_match_paper() {
        assert_eq!(DIR_FANOUT, 102);
        assert_eq!(DATA_FANOUT, 26);
        assert_eq!(DIR_MIN_FILL, 40);
        assert_eq!(DATA_MIN_FILL, 10);
    }

    #[test]
    fn leaf_page_roundtrip() {
        let node = leaf_with(DATA_FANOUT);
        let mut page = Page::zeroed();
        node.encode(&mut page);
        assert_eq!(Node::decode(&page), node);
    }

    #[test]
    fn dir_page_roundtrip() {
        let mut node = Node::new_dir(2);
        for i in 0..DIR_FANOUT {
            node.dir_entries_mut().push(DirEntry {
                mbr: Rect::new(0.0, i as f64, 1.0, i as f64 + 2.0),
                child: i as u32,
            });
        }
        let mut page = Page::zeroed();
        node.encode(&mut page);
        let back = Node::decode(&page);
        assert_eq!(back, node);
        assert_eq!(back.level, 2);
        assert!(!back.is_leaf());
    }

    #[test]
    fn empty_node_roundtrip() {
        let node = Node::new_leaf();
        let mut page = Page::zeroed();
        node.encode(&mut page);
        let back = Node::decode(&page);
        assert!(back.is_empty());
        assert!(back.mbr().is_empty());
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_encode_panics() {
        let node = leaf_with(DATA_FANOUT + 1);
        let mut page = Page::zeroed();
        node.encode(&mut page);
    }

    #[test]
    fn mbr_is_union_of_entries() {
        let node = leaf_with(3);
        assert_eq!(node.mbr(), Rect::new(0.0, 0.0, 3.0, 1.0));
    }

    #[test]
    fn soa_view_tracks_entries_through_mutation() {
        let mut node = leaf_with(3);
        assert_eq!(node.soa_mbrs().len(), 3);
        assert_eq!(node.soa_mbrs().rect(1), node.mbr_of(1));
        // Mutation through the accessor invalidates the cached view.
        node.data_entries_mut().pop();
        assert_eq!(node.soa_mbrs().len(), 2);
        node.sort_entries_by_xl();
        for i in 0..node.len() {
            assert_eq!(node.soa_mbrs().rect(i), node.mbr_of(i));
        }
    }

    #[test]
    fn decode_primes_soa_and_roundtrip_equality_ignores_it() {
        let node = leaf_with(5);
        let mut page = Page::zeroed();
        node.encode(&mut page);
        let back = Node::decode(&page);
        // `back` has a primed SoA, `node` does not — they still compare equal.
        assert_eq!(back, node);
        assert_eq!(back.soa_mbrs(), node.soa_mbrs());
    }

    #[test]
    fn sort_entries_by_xl_sorts() {
        let mut node = Node::new_leaf();
        for &x in &[5.0, 1.0, 3.0] {
            node.data_entries_mut().push(DataEntry {
                mbr: Rect::new(x, 0.0, x + 1.0, 1.0),
                oid: x as u64,
                geom: GeomRef::UNSET,
            });
        }
        node.sort_entries_by_xl();
        let xs: Vec<f64> = node.data_entries().iter().map(|e| e.mbr.xl).collect();
        assert_eq!(xs, vec![1.0, 3.0, 5.0]);
    }
}
