//! Frozen, paged R\*-trees.
//!
//! After building (dynamic insertion or bulk loading) a tree is *frozen*:
//! nodes are assigned page numbers in depth-first order, child pointers are
//! rewritten to page numbers, entries are sorted by their lower x bound
//! (the plane-sweep precondition, so join tasks never re-sort), data entries
//! receive their geometry pointers, and every node is serialized into a real
//! 4 KB page. The exact geometries are grouped into per-data-page clusters
//! ([BK 94]) whose sizes drive the simulated cluster I/O time.

use crate::entry::GeomRef;
use crate::node::{Node, NodeKind};
use crate::stats::TreeStats;
use crate::tree::RTree;
use psj_geom::{Polyline, Rect};
use psj_store::{ClusterStore, PageId, PageStore};
use std::collections::BTreeSet;

/// A read-only paged R\*-tree: decoded nodes indexed by page number plus the
/// authoritative serialized pages and geometry clusters.
///
/// Trees loaded leniently from a partially corrupt file carry a *poisoned*
/// page set: those slots hold placeholder nodes (their on-disk bytes failed
/// checksum verification) and must never be descended into. Fault-aware
/// readers (the serve executor, `fsck`) consult [`PagedTree::is_poisoned`];
/// direct traversal of a poisoned tree is a caller bug.
#[derive(Debug)]
pub struct PagedTree {
    nodes: Vec<Node>,
    root: PageId,
    height: u32,
    num_items: u64,
    pages: PageStore,
    clusters: ClusterStore,
    poisoned: BTreeSet<u32>,
}

impl PagedTree {
    /// Freezes `tree` into pages. `geometry` supplies the exact geometry of
    /// each object id; objects without geometry get [`GeomRef::UNSET`] and
    /// contribute nothing to their page's cluster.
    pub fn freeze<F>(tree: &RTree, geometry: F) -> Self
    where
        F: FnMut(u64) -> Option<Polyline>,
    {
        Self::freeze_with_attrs(tree, geometry, 0)
    }

    /// As [`PagedTree::freeze`], additionally accounting `attr_bytes` of
    /// stored attribute payload per object in its geometry cluster. The
    /// paper's TIGER records average ~26 KB per data-page cluster — far more
    /// than bare segment coordinates — because each record carries address
    /// ranges, names and classification codes; `attr_bytes` models that.
    pub fn freeze_with_attrs<F>(tree: &RTree, mut geometry: F, attr_bytes: u64) -> Self
    where
        F: FnMut(u64) -> Option<Polyline>,
    {
        let height = tree.height();
        let num_nodes = tree.nodes().len();

        // Depth-first page numbering from the root.
        let mut page_of = vec![u32::MAX; num_nodes];
        let mut order = Vec::with_capacity(num_nodes);
        let mut stack = vec![tree.root()];
        while let Some(idx) = stack.pop() {
            if page_of[idx as usize] != u32::MAX {
                continue;
            }
            page_of[idx as usize] = order.len() as u32;
            order.push(idx);
            if let NodeKind::Dir(entries) = &tree.node(idx).kind {
                // Push in reverse so children are numbered in entry order.
                for e in entries.iter().rev() {
                    stack.push(e.child);
                }
            }
        }

        // Clone reachable nodes in page order, remap children, sort entries.
        let mut nodes: Vec<Node> = Vec::with_capacity(order.len());
        let mut clusters = ClusterStore::new();
        for &idx in &order {
            let mut node = tree.node(idx).clone();
            if let NodeKind::Dir(entries) = &mut node.kind {
                for e in entries.iter_mut() {
                    e.child = page_of[e.child as usize];
                }
            }
            node.sort_entries_by_xl();
            let page = PageId(nodes.len() as u32);
            if let NodeKind::Leaf(entries) = &mut node.kind {
                for e in entries.iter_mut() {
                    e.geom = match geometry(e.oid) {
                        Some(g) => GeomRef {
                            page,
                            slot: clusters.push_with_extra(page, g, attr_bytes),
                        },
                        None => GeomRef::UNSET,
                    };
                }
            }
            node.prime_soa();
            nodes.push(node);
        }

        // Serialize.
        let mut pages = PageStore::new();
        for node in &nodes {
            let id = pages.allocate();
            node.encode(pages.write(id));
        }

        PagedTree {
            nodes,
            root: PageId(0),
            height,
            num_items: tree.len(),
            pages,
            clusters,
            poisoned: BTreeSet::new(),
        }
    }

    /// Assembles a tree from parts loaded from disk (crate-internal; the
    /// loader verifies structure afterwards).
    pub(crate) fn from_loaded_parts(
        nodes: Vec<Node>,
        root: PageId,
        height: u32,
        num_items: u64,
        pages: PageStore,
        clusters: ClusterStore,
    ) -> Self {
        PagedTree {
            nodes,
            root,
            height,
            num_items,
            pages,
            clusters,
            poisoned: BTreeSet::new(),
        }
    }

    /// Marks pages whose on-disk bytes failed verification (lenient load).
    pub(crate) fn set_poisoned(&mut self, poisoned: BTreeSet<u32>) {
        self.poisoned = poisoned;
    }

    /// Whether `page` holds a placeholder for corrupt on-disk bytes.
    pub fn is_poisoned(&self, page: PageId) -> bool {
        self.poisoned.contains(&page.0)
    }

    /// Number of poisoned pages (0 for any strictly loaded or frozen tree).
    pub fn poisoned_count(&self) -> usize {
        self.poisoned.len()
    }

    /// The poisoned page ids, ascending.
    pub fn poisoned_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.poisoned.iter().map(|&p| PageId(p))
    }

    /// Page number of the root (always page 0 of this tree's file).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Tree height (number of levels including the root).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of data entries.
    pub fn len(&self) -> u64 {
        self.num_items
    }

    /// Whether the tree holds no data entries.
    pub fn is_empty(&self) -> bool {
        self.num_items == 0
    }

    /// The decoded node stored on `page`.
    pub fn node(&self, page: PageId) -> &Node {
        &self.nodes[page.index()]
    }

    /// Total number of pages.
    pub fn num_pages(&self) -> usize {
        self.nodes.len()
    }

    /// The serialized pages.
    pub fn pages(&self) -> &PageStore {
        &self.pages
    }

    /// The geometry clusters.
    pub fn clusters(&self) -> &ClusterStore {
        &self.clusters
    }

    /// MBR of the whole tree.
    pub fn mbr(&self) -> Rect {
        self.node(self.root).mbr()
    }

    /// Window query over the paged form. Delegates to
    /// [`crate::access::window_query_via`] over the infallible in-memory
    /// accessor, so the traversal order is shared with cache-backed readers.
    pub fn window_query(&self, window: &Rect) -> Vec<crate::entry::DataEntry> {
        crate::access::window_query_via(&mut &*self, self.root, window)
            .expect("in-memory node access is infallible")
    }

    /// Table 1 statistics for this tree.
    pub fn stats(&self) -> TreeStats {
        let data_pages = self.nodes.iter().filter(|n| n.is_leaf()).count();
        TreeStats {
            height: self.height,
            num_data_entries: self.num_items,
            num_data_pages: data_pages,
            num_dir_pages: self.nodes.len() - data_pages,
            avg_cluster_bytes: self.clusters.avg_bytes(),
        }
    }

    /// Verifies that every in-memory node round-trips through its serialized
    /// page, that entries are xl-sorted, and that directory MBRs exactly
    /// bound their children. Used by tests and by loading.
    ///
    /// Poisoned pages (lenient load) are skipped entirely, and directory
    /// entries pointing at a poisoned child skip the MBR/level checks —
    /// the placeholder node there has no meaningful contents.
    pub fn verify(&self) -> Result<(), String> {
        for (page, node) in self.nodes.iter().enumerate() {
            if self.poisoned.contains(&(page as u32)) {
                continue;
            }
            let decoded = Node::decode(self.pages.read(PageId(page as u32)));
            if &decoded != node {
                return Err(format!("page {page}: decode mismatch"));
            }
            let mbrs = node.entry_mbrs();
            if !mbrs.windows(2).all(|w| w[0].xl <= w[1].xl) {
                return Err(format!("page {page}: entries not xl-sorted"));
            }
            if let NodeKind::Dir(entries) = &node.kind {
                for e in entries {
                    if e.child as usize >= self.nodes.len() {
                        return Err(format!("page {page}: child {} out of range", e.child));
                    }
                    if self.poisoned.contains(&e.child) {
                        continue;
                    }
                    let child = self.node(PageId(e.child));
                    if child.mbr() != e.mbr {
                        return Err(format!("page {page}: stale child MBR"));
                    }
                    if child.level + 1 != node.level {
                        return Err(format!("page {page}: level mismatch"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::bulk_load_str_with_fanout;
    use psj_geom::Point;

    fn build_tree(n: usize) -> RTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 40) as f64;
            let y = (i / 40) as f64;
            t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
        }
        t
    }

    fn geom_for(oid: u64) -> Option<Polyline> {
        let x = (oid % 40) as f64;
        let y = (oid / 40) as f64;
        Some(Polyline::new(vec![
            Point::new(x, y),
            Point::new(x + 0.9, y + 0.9),
        ]))
    }

    #[test]
    fn freeze_assigns_root_page_zero() {
        let t = build_tree(200);
        let p = PagedTree::freeze(&t, geom_for);
        assert_eq!(p.root(), PageId(0));
        assert_eq!(p.height(), t.height());
        assert_eq!(p.len(), 200);
        p.verify().unwrap();
    }

    #[test]
    fn page_count_equals_node_count() {
        let t = build_tree(500);
        let p = PagedTree::freeze(&t, geom_for);
        assert_eq!(p.num_pages(), p.pages().len());
        let s = p.stats();
        assert_eq!(s.num_data_pages + s.num_dir_pages, p.num_pages());
        assert!(s.num_data_pages > 0 && s.num_dir_pages > 0);
    }

    #[test]
    fn queries_survive_freezing() {
        let t = build_tree(700);
        let p = PagedTree::freeze(&t, geom_for);
        let w = Rect::new(3.0, 2.0, 12.0, 9.0);
        let mut got: Vec<u64> = p.window_query(&w).iter().map(|e| e.oid).collect();
        let mut want: Vec<u64> = t.window_query(&w).iter().map(|e| e.oid).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn geometry_refs_resolve() {
        let t = build_tree(300);
        let p = PagedTree::freeze(&t, geom_for);
        let all = p.window_query(&p.mbr());
        assert_eq!(all.len(), 300);
        for e in &all {
            let g = p
                .clusters()
                .geometry(e.geom.page, e.geom.slot)
                .expect("geometry present");
            // The geometry's MBR is the entry's MBR by construction.
            assert_eq!(g.mbr(), e.mbr);
        }
        assert!(p.clusters().avg_bytes() > 0);
    }

    #[test]
    fn missing_geometry_leaves_unset_ref() {
        let t = build_tree(50);
        let p = PagedTree::freeze(&t, |_| None);
        for e in p.window_query(&p.mbr()) {
            assert_eq!(e.geom, GeomRef::UNSET);
        }
        assert_eq!(p.clusters().avg_bytes(), 0);
    }

    #[test]
    fn bulk_loaded_tree_freezes_too() {
        let items: Vec<(Rect, u64)> = (0..400)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                (Rect::new(x, y, x + 0.5, y + 0.5), i as u64)
            })
            .collect();
        let t = bulk_load_str_with_fanout(&items, 8, 8);
        let p = PagedTree::freeze(&t, |_| None);
        p.verify().unwrap();
        assert!(p.height() >= 3);
        assert_eq!(p.len(), 400);
    }
}
