//! Hilbert-curve packed bulk loading (Kamel & Faloutsos style).
//!
//! The third tree-construction strategy next to dynamic R\*-tree insertion
//! and STR: entries are sorted by the Hilbert value of their MBR center and
//! packed into full pages. Hilbert packing preserves locality better than a
//! simple x/y tiling for some workloads; the `ablation` experiment can
//! compare all three under the same join and cost model.

use crate::entry::{DataEntry, DirEntry, GeomRef};
use crate::node::{Node, DATA_FANOUT, DIR_FANOUT};
use crate::tree::RTree;
use psj_geom::Rect;

/// Resolution of the Hilbert grid (bits per axis).
const HILBERT_ORDER: u32 = 16;

/// Maps grid cell `(x, y)` (each in `0 .. 2^order`) to its one-dimensional
/// Hilbert index. Standard bit-rotation formulation.
pub fn hilbert_index(order: u32, mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << order;
    debug_assert!(x < n && y < n);
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (n - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (n - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Hilbert value of a rectangle's center within `world`.
pub fn hilbert_of_rect(world: &Rect, r: &Rect) -> u64 {
    let n = (1u32 << HILBERT_ORDER) as f64;
    let c = r.center();
    let fx = if world.width() > 0.0 {
        (c.x - world.xl) / world.width()
    } else {
        0.0
    };
    let fy = if world.height() > 0.0 {
        (c.y - world.yl) / world.height()
    } else {
        0.0
    };
    let gx = ((fx * n) as u32).min((1 << HILBERT_ORDER) - 1);
    let gy = ((fy * n) as u32).min((1 << HILBERT_ORDER) - 1);
    hilbert_index(HILBERT_ORDER, gx, gy)
}

/// Bulk loads a tree by Hilbert-sorting the items and packing full pages,
/// with configurable capacities (pass [`DATA_FANOUT`]/[`DIR_FANOUT`] for the
/// paper layout).
pub fn bulk_load_hilbert_with_fanout(
    items: &[(Rect, u64)],
    leaf_capacity: usize,
    dir_capacity: usize,
) -> RTree {
    assert!(
        leaf_capacity >= 2 && dir_capacity >= 2,
        "capacities must be at least 2"
    );
    if items.is_empty() {
        return RTree::new();
    }
    let world = items.iter().fold(Rect::empty(), |w, (r, _)| w.union(r));

    let mut entries: Vec<DataEntry> = items
        .iter()
        .map(|&(mbr, oid)| DataEntry {
            mbr,
            oid,
            geom: GeomRef::UNSET,
        })
        .collect();
    entries.sort_by_key(|e| hilbert_of_rect(&world, &e.mbr));

    // Pack leaves.
    let mut nodes: Vec<Node> = Vec::new();
    let mut level_nodes: Vec<(u32, Rect)> = Vec::new();
    for chunk in entries.chunks(leaf_capacity) {
        let mut node = Node::new_leaf();
        *node.data_entries_mut() = chunk.to_vec();
        let mbr = node.mbr();
        level_nodes.push((nodes.len() as u32, mbr));
        nodes.push(node);
    }

    // Pack directory levels; node order already follows the curve.
    let mut level = 1u32;
    while level_nodes.len() > 1 {
        let mut next = Vec::with_capacity(level_nodes.len() / dir_capacity + 1);
        for chunk in level_nodes.chunks(dir_capacity) {
            let mut node = Node::new_dir(level);
            *node.dir_entries_mut() = chunk
                .iter()
                .map(|&(idx, mbr)| DirEntry { mbr, child: idx })
                .collect();
            let mbr = node.mbr();
            next.push((nodes.len() as u32, mbr));
            nodes.push(node);
        }
        level_nodes = next;
        level += 1;
    }
    let root = level_nodes[0].0;
    RTree::from_parts(nodes, root, items.len() as u64)
}

/// Hilbert bulk loading with the paper's page capacities.
pub fn bulk_load_hilbert(items: &[(Rect, u64)]) -> RTree {
    bulk_load_hilbert_with_fanout(items, DATA_FANOUT, DIR_FANOUT)
}

/// Average pairwise-leaf overlap, a rough quality metric used by tests and
/// the ablation bench to compare packing strategies (lower = better).
pub fn leaf_overlap_score(tree: &RTree) -> f64 {
    let leaves: Vec<Rect> = tree
        .nodes()
        .iter()
        .filter(|n| n.is_leaf() && !n.is_empty())
        .map(|n| n.mbr())
        .collect();
    if leaves.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..leaves.len() {
        for j in i + 1..leaves.len() {
            total += leaves[i].overlap_area(&leaves[j]);
        }
    }
    total / leaves.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::bulk_load_str;

    fn items(n: usize) -> Vec<(Rect, u64)> {
        (0..n)
            .map(|i| {
                let x = (i % 60) as f64;
                let y = (i / 60) as f64;
                (Rect::new(x, y, x + 0.7, y + 0.7), i as u64)
            })
            .collect()
    }

    #[test]
    fn hilbert_index_is_a_bijection_on_small_grid() {
        let order = 3;
        let n = 1u32 << order;
        let mut seen = vec![false; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_index(order, x, y) as usize;
                assert!(d < seen.len(), "index {d} out of range");
                assert!(!seen[d], "duplicate index {d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hilbert_neighbors_are_adjacent_cells() {
        // Consecutive Hilbert indices map to 4-adjacent grid cells.
        let order = 4;
        let n = 1u32 << order;
        let mut by_d = vec![(0u32, 0u32); (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                by_d[hilbert_index(order, x, y) as usize] = (x, y);
            }
        }
        for w in by_d.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "curve jumps from ({x0},{y0}) to ({x1},{y1})");
        }
    }

    #[test]
    fn bulk_load_preserves_all_items_and_queries() {
        let data = items(1500);
        let t = bulk_load_hilbert(&data);
        assert_eq!(t.len(), 1500);
        t.check_invariants_bulk().unwrap();
        let w = Rect::new(5.0, 3.0, 22.0, 14.0);
        let mut got: Vec<u64> = t.window_query(&w).iter().map(|e| e.oid).collect();
        got.sort_unstable();
        let want: Vec<u64> = data
            .iter()
            .filter(|(r, _)| r.intersects(&w))
            .map(|&(_, o)| o)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_single() {
        assert!(bulk_load_hilbert(&[]).is_empty());
        let t = bulk_load_hilbert(&items(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn packing_is_full() {
        let data = items(2600); // 100 exactly-full leaves
        let t = bulk_load_hilbert(&data);
        let leaves = t.nodes().iter().filter(|n| n.is_leaf()).count();
        assert_eq!(leaves, 100);
    }

    #[test]
    fn hilbert_leaf_quality_is_reasonable() {
        // On a uniform grid, Hilbert packing should not be wildly worse than
        // STR in leaf overlap (both should be near zero here).
        let data = items(2000);
        let h = leaf_overlap_score(&bulk_load_hilbert(&data));
        let s = leaf_overlap_score(&bulk_load_str(&data));
        assert!(h.is_finite() && s.is_finite());
        assert!(h <= (s + 1.0) * 10.0, "hilbert {h} vs str {s}");
    }

    #[test]
    fn degenerate_world_single_column() {
        // All centers on a vertical line: world width 0 must not divide by 0.
        let data: Vec<(Rect, u64)> = (0..100)
            .map(|i| (Rect::new(5.0, i as f64, 5.0, i as f64 + 0.5), i as u64))
            .collect();
        let t = bulk_load_hilbert(&data);
        assert_eq!(t.len(), 100);
        t.check_invariants_bulk().unwrap();
    }
}
