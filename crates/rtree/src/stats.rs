//! Tree statistics — regenerates the rows of the paper's Table 1.

use serde::{Deserialize, Serialize};

/// Parameters of one R\*-tree as reported in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Number of levels including the root.
    pub height: u32,
    /// Number of data entries (objects).
    pub num_data_entries: u64,
    /// Number of data (leaf) pages.
    pub num_data_pages: usize,
    /// Number of directory pages (root included).
    pub num_dir_pages: usize,
    /// Average geometry cluster size in bytes (paper: ~26 KB).
    pub avg_cluster_bytes: u64,
}

impl TreeStats {
    /// Average data-page fill factor relative to the 26-entry capacity.
    pub fn data_utilization(&self) -> f64 {
        if self.num_data_pages == 0 {
            0.0
        } else {
            self.num_data_entries as f64
                / (self.num_data_pages as f64 * crate::node::DATA_FANOUT as f64)
        }
    }
}

impl std::fmt::Display for TreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "height                     {:>10}", self.height)?;
        writeln!(
            f,
            "number of data entries     {:>10}",
            self.num_data_entries
        )?;
        writeln!(f, "number of data pages       {:>10}", self.num_data_pages)?;
        writeln!(f, "number of directory pages  {:>10}", self.num_dir_pages)?;
        writeln!(
            f,
            "data page utilization      {:>9.1}%",
            self.data_utilization() * 100.0
        )?;
        write!(
            f,
            "avg cluster size           {:>8} KB",
            self.avg_cluster_bytes / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_formula() {
        let s = TreeStats {
            height: 3,
            num_data_entries: 2600,
            num_data_pages: 200,
            num_dir_pages: 10,
            avg_cluster_bytes: 0,
        };
        // 2600 / (200 * 26) = 0.5
        assert_eq!(s.data_utilization(), 0.5);
    }

    #[test]
    fn utilization_zero_pages() {
        let s = TreeStats {
            height: 1,
            num_data_entries: 0,
            num_data_pages: 0,
            num_dir_pages: 1,
            avg_cluster_bytes: 0,
        };
        assert_eq!(s.data_utilization(), 0.0);
    }

    #[test]
    fn display_contains_fields() {
        let s = TreeStats {
            height: 3,
            num_data_entries: 131_443,
            num_data_pages: 6_968,
            num_dir_pages: 95,
            avg_cluster_bytes: 26 * 1024,
        };
        let text = s.to_string();
        assert!(text.contains("131443"));
        assert!(text.contains("6968"));
        assert!(text.contains("26 KB"));
    }
}
