//! Borrow-generic node access for paged-tree traversals.
//!
//! The window and nearest-neighbor descents only need to *look at* one node
//! at a time. [`NodeAccess`] abstracts where that look comes from: an
//! in-memory [`PagedTree`] hands out plain `&Node` borrows, while a
//! cache-backed reader (the serve executor) hands out pin-guarded borrows
//! from a shared page cache — same traversal, zero Arc clones either way.
//! The associated `Ref` type only has to deref to [`Node`]; each borrow is
//! dropped before the next page is read, so guard-style accessors never hold
//! more than one pin per traversal step.

use crate::entry::DataEntry;
use crate::node::{Node, NodeKind};
use crate::paged::PagedTree;
use psj_geom::Rect;
use psj_store::{PageError, PageId};
use std::ops::Deref;

/// A source of read-only node borrows, keyed by page number.
///
/// `read` takes `&mut self` so implementations can carry per-traversal state
/// (an optimistic coupling token, per-worker statistics) without interior
/// mutability.
pub trait NodeAccess {
    /// The borrowed form a node read returns; dropped before the traversal
    /// reads its next page.
    type Ref<'a>: Deref<Target = Node>
    where
        Self: 'a;

    /// Reads the node stored at `page`.
    fn read(&mut self, page: PageId) -> Result<Self::Ref<'_>, PageError>;
}

/// Direct in-memory access: infallible borrows out of the decoded node
/// array.
impl NodeAccess for &PagedTree {
    type Ref<'a>
        = &'a Node
    where
        Self: 'a;

    fn read(&mut self, page: PageId) -> Result<&Node, PageError> {
        Ok(self.node(page))
    }
}

/// Window query over any [`NodeAccess`]: depth-first, children pushed in
/// entry order — byte-identical output to [`PagedTree::window_query`]
/// (which delegates here).
pub fn window_query_via<A: NodeAccess>(
    access: &mut A,
    root: PageId,
    window: &Rect,
) -> Result<Vec<DataEntry>, PageError> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(page) = stack.pop() {
        let node = access.read(page)?;
        match &node.kind {
            NodeKind::Dir(entries) => {
                for e in entries {
                    if e.mbr.intersects(window) {
                        stack.push(PageId(e.child));
                    }
                }
            }
            NodeKind::Leaf(entries) => {
                for e in entries {
                    if e.mbr.intersects(window) {
                        out.push(*e);
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTree;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn build(n: usize) -> PagedTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 25) as f64;
            let y = (i / 25) as f64;
            t.insert(Rect::new(x, y, x + 0.8, y + 0.8), i as u64);
        }
        PagedTree::freeze(&t, |_| None)
    }

    /// Counts reads and delegates to the tree, proving the traversal goes
    /// through the accessor — and that output order matches the direct path.
    struct Counting<'t> {
        tree: &'t PagedTree,
        reads: AtomicUsize,
    }

    impl NodeAccess for Counting<'_> {
        type Ref<'a>
            = &'a Node
        where
            Self: 'a;

        fn read(&mut self, page: PageId) -> Result<&Node, PageError> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            Ok(self.tree.node(page))
        }
    }

    #[test]
    fn custom_access_matches_direct_window_query() {
        let p = build(300);
        let w = Rect::new(3.0, 2.0, 14.5, 9.5);
        let direct = p.window_query(&w);
        let mut acc = Counting {
            tree: &p,
            reads: AtomicUsize::new(0),
        };
        let via = window_query_via(&mut acc, p.root(), &w).unwrap();
        assert_eq!(via, direct, "accessor path must be byte-identical");
        assert!(acc.reads.load(Ordering::Relaxed) > 0, "reads went through");
    }

    #[test]
    fn error_from_access_propagates() {
        struct Failing;
        impl NodeAccess for Failing {
            type Ref<'a> = &'a Node;
            fn read(&mut self, page: PageId) -> Result<&'static Node, PageError> {
                Err(PageError::OutOfRange {
                    page,
                    num_pages: 0,
                    context: "test".into(),
                })
            }
        }
        let err = window_query_via(&mut Failing, PageId(7), &Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(matches!(err, Err(PageError::OutOfRange { .. })));
    }
}
