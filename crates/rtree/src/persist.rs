//! On-disk persistence for frozen trees.
//!
//! A [`PagedTree`] serializes to a single file: a fixed header, the page
//! *records* (each 4 KB payload followed by its 16-byte CRC32 footer, see
//! [`psj_store::checksum`]), and the geometry clusters, the whole file
//! additionally protected by an FNV-1a checksum. Buffered I/O throughout;
//! loading re-decodes every node from its page bytes (the same code path
//! the in-memory freeze uses), so a loaded tree is verified against its
//! page images by construction.
//!
//! ```text
//! +------------------+ magic "PSJT2\n", root u32, height u32,
//! | header           | num_items u64, num_pages u32, num_clusters u32
//! +------------------+
//! | page records     | num_pages × 4112 bytes (payload + CRC footer)
//! +------------------+
//! | clusters         | per cluster: page u32, extra_bytes u64,
//! |                  |   count u32, then per geometry:
//! |                  |   vertex count u32 + count × (f64, f64)
//! +------------------+
//! | checksum         | FNV-1a 64 over everything above
//! +------------------+
//! ```
//!
//! Files written by the previous format (`PSJT1`, raw unchecksummed pages)
//! are still readable; new files are always `PSJT2`.
//!
//! **Crash safety.** [`PagedTree::save_to`] writes through
//! [`psj_store::atomic_write`] (tmp file + fsync + atomic rename + dir
//! fsync), so a crash mid-save never clobbers an existing index. On top of
//! that, [`PagedTree::save_generation`] / [`PagedTree::load_latest`]
//! maintain a *versioned manifest* (`<base>.manifest` pointing at
//! `<base>.g<n>`): a new generation is written beside the old one and the
//! manifest flips over atomically, so readers always find a complete file.
//!
//! **Degradation.** [`PagedTree::load_from_lenient`] salvages a corrupt
//! `PSJT2` file: pages whose CRC footer fails are replaced by placeholder
//! nodes and reported as *poisoned* ([`PagedTree::is_poisoned`]) instead of
//! failing the whole load — the serving layer can then answer queries that
//! avoid the poisoned subtrees and return typed errors for the rest.
//! [`fsck_file`] reuses the same verification to produce a report.

use crate::node::Node;
use crate::paged::PagedTree;
use psj_geom::{Point, Polyline};
use psj_store::{
    atomic_write, encode_record, verify_record, ClusterStore, PageId, PageStore, PAGE_RECORD_SIZE,
    PAGE_SIZE,
};
use std::collections::BTreeSet;
use std::io::{self, BufReader, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC_V1: &[u8; 6] = b"PSJT1\n";
const MAGIC_V2: &[u8; 6] = b"PSJT2\n";

/// Sanity bound on the page count in a header (16 M pages = 64 GB of
/// payload); a corrupt header must not drive allocation.
const MAX_PAGES: usize = 1 << 24;

/// FNV-1a 64-bit, incrementally updatable.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
}

/// Writer that checksums everything it passes through.
struct HashWriter<W: Write> {
    inner: W,
    hash: Fnv,
}

impl<W: Write> HashWriter<W> {
    fn write_all_hashed(&mut self, buf: &[u8]) -> io::Result<()> {
        self.hash.update(buf);
        self.inner.write_all(buf)
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.write_all_hashed(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.write_all_hashed(&v.to_le_bytes())
    }
    fn f64(&mut self, v: f64) -> io::Result<()> {
        self.write_all_hashed(&v.to_le_bytes())
    }
}

/// Reader that checksums everything it passes through.
struct HashReader<R: Read> {
    inner: R,
    hash: Fnv,
}

impl<R: Read> HashReader<R> {
    fn read_exact_hashed(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.hash.update(buf);
        Ok(())
    }
    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact_hashed(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact_hashed(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.read_exact_hashed(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// The result of a lenient load: the salvaged tree plus what was wrong.
#[derive(Debug)]
pub struct LenientLoad {
    /// The tree; pages in `corrupt_pages` hold placeholders and are marked
    /// poisoned ([`PagedTree::is_poisoned`]).
    pub tree: PagedTree,
    /// Pages whose CRC footer failed verification, ascending.
    pub corrupt_pages: Vec<PageId>,
    /// Whether the whole-file FNV checksum matched (false whenever any page
    /// is corrupt, and also on cluster-section damage).
    pub checksum_ok: bool,
    /// Whether the geometry cluster section parsed (joins need it; window
    /// and nearest-neighbor queries do not).
    pub clusters_ok: bool,
}

/// Everything parsed out of a tree file, before structural verification.
struct RawLoad {
    root: PageId,
    height: u32,
    num_items: u64,
    nodes: Vec<Node>,
    pages: PageStore,
    clusters: ClusterStore,
    corrupt_pages: Vec<PageId>,
    checksum_ok: bool,
    clusters_ok: bool,
}

fn read_header<R: Read>(r: &mut HashReader<R>) -> io::Result<(PageId, u32, u64, usize, usize)> {
    let root = PageId(r.u32()?);
    let height = r.u32()?;
    let num_items = r.u64()?;
    let num_pages = r.u32()? as usize;
    let num_clusters = r.u32()? as usize;
    if num_pages == 0 || num_pages > MAX_PAGES {
        return Err(corrupt(&format!("implausible page count {num_pages}")));
    }
    if root.index() >= num_pages {
        return Err(corrupt("root page out of range"));
    }
    if num_clusters > num_pages {
        return Err(corrupt("more clusters than pages"));
    }
    Ok((root, height, num_items, num_pages, num_clusters))
}

fn read_clusters<R: Read>(
    r: &mut HashReader<R>,
    num_pages: usize,
    num_clusters: usize,
) -> io::Result<ClusterStore> {
    let mut clusters = ClusterStore::new();
    for _ in 0..num_clusters {
        let pid = PageId(r.u32()?);
        if pid.index() >= num_pages {
            return Err(corrupt("cluster page out of range"));
        }
        let extra_total = r.u64()?;
        let count = r.u32()? as usize;
        if count == 0 {
            return Err(corrupt("empty cluster"));
        }
        let extra_each = extra_total / count as u64;
        let mut extra_rem = extra_total % count as u64;
        for _ in 0..count {
            let nv = r.u32()? as usize;
            if !(2..=1_000_000).contains(&nv) {
                return Err(corrupt("implausible vertex count"));
            }
            let mut pts = Vec::with_capacity(nv);
            for _ in 0..nv {
                let x = r.f64()?;
                let y = r.f64()?;
                pts.push(Point::new(x, y));
            }
            let extra = extra_each
                + if extra_rem > 0 {
                    extra_rem -= 1;
                    1
                } else {
                    0
                };
            clusters.push_with_extra(pid, Polyline::new(pts), extra);
        }
    }
    Ok(clusters)
}

/// Verify the trailing FNV checksum and end-of-file position.
fn read_trailer<R: Read>(r: &mut HashReader<R>) -> io::Result<()> {
    let computed = r.hash.0;
    let mut cs = [0u8; 8];
    r.inner.read_exact(&mut cs)?;
    if u64::from_le_bytes(cs) != computed {
        return Err(corrupt("checksum mismatch"));
    }
    let mut extra = [0u8; 1];
    if r.inner.read(&mut extra)? != 0 {
        return Err(corrupt("trailing bytes after checksum"));
    }
    Ok(())
}

/// Parse a tree file. In strict mode any page-footer failure aborts the
/// load; in lenient mode (v2 only) failed pages become placeholders and
/// cluster/checksum damage is recorded instead of fatal.
fn read_tree_file(path: &Path, lenient: bool) -> io::Result<RawLoad> {
    let context = path.display().to_string();
    let file = std::fs::File::open(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{context}: {e}")))?;
    let mut r = HashReader {
        inner: BufReader::new(file),
        hash: Fnv::new(),
    };

    let mut magic = [0u8; 6];
    r.read_exact_hashed(&mut magic)?;
    let v2 = match &magic {
        m if m == MAGIC_V2 => true,
        m if m == MAGIC_V1 => false,
        _ => {
            return Err(corrupt(&format!(
                "{context}: bad magic: not a psj tree file"
            )))
        }
    };
    let (root, height, num_items, num_pages, num_clusters) = read_header(&mut r)?;

    let mut pages = PageStore::new();
    let mut nodes = Vec::with_capacity(num_pages);
    let mut corrupt_pages = Vec::new();
    if v2 {
        let mut record = vec![0u8; PAGE_RECORD_SIZE];
        for n in 0..num_pages {
            r.read_exact_hashed(&mut record)?;
            let id = pages.allocate();
            let fixed: &[u8; PAGE_RECORD_SIZE] = record[..].try_into().unwrap();
            match verify_record(fixed, PageId(n as u32), &context) {
                Ok(()) => {
                    pages
                        .write(id)
                        .bytes_mut()
                        .copy_from_slice(&record[..PAGE_SIZE]);
                    nodes.push(Node::decode(pages.read(id)));
                }
                Err(_) if lenient => {
                    // Placeholder: never decoded, never descended into.
                    corrupt_pages.push(PageId(n as u32));
                    nodes.push(Node::new_leaf());
                }
                Err(e) => return Err(e.into()),
            }
        }
    } else {
        let mut buf = vec![0u8; PAGE_SIZE];
        for _ in 0..num_pages {
            r.read_exact_hashed(&mut buf)?;
            let id = pages.allocate();
            pages.write(id).bytes_mut().copy_from_slice(&buf);
            nodes.push(Node::decode(pages.read(id)));
        }
    }

    let (clusters, clusters_ok, checksum_ok) = if lenient {
        match read_clusters(&mut r, num_pages, num_clusters) {
            Ok(c) => {
                let checksum_ok = read_trailer(&mut r).is_ok();
                (c, true, checksum_ok)
            }
            // Cluster section unparseable: salvage the index structure
            // alone. Without a parse we cannot locate the trailer either.
            Err(_) => (ClusterStore::new(), false, false),
        }
    } else {
        let c = read_clusters(&mut r, num_pages, num_clusters)?;
        read_trailer(&mut r)?;
        (c, true, true)
    };

    Ok(RawLoad {
        root,
        height,
        num_items,
        nodes,
        pages,
        clusters,
        corrupt_pages,
        checksum_ok,
        clusters_ok,
    })
}

impl PagedTree {
    /// Writes the tree to `path` crash-safely (tmp + fsync + atomic
    /// rename), overwriting any existing file only once the new one is
    /// complete and durable.
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, |out| {
            let mut w = HashWriter {
                inner: out,
                hash: Fnv::new(),
            };

            w.write_all_hashed(MAGIC_V2)?;
            w.u32(self.root().0)?;
            w.u32(self.height())?;
            w.u64(self.len())?;
            w.u32(self.num_pages() as u32)?;

            // Clusters: collect page ids in ascending order for determinism.
            let mut cluster_pages: Vec<PageId> = (0..self.num_pages() as u32)
                .map(PageId)
                .filter(|p| self.clusters().get(*p).is_some())
                .collect();
            cluster_pages.sort_unstable();
            w.u32(cluster_pages.len() as u32)?;

            for (id, page) in self.pages().iter() {
                w.write_all_hashed(&encode_record(page.bytes(), id))?;
            }

            for pid in cluster_pages {
                let c = self
                    .clusters()
                    .get(pid)
                    .expect("filtered to existing clusters");
                w.u32(pid.0)?;
                // Extra (attribute) bytes beyond the raw geometry.
                let geo_bytes: u64 = c.geometries().iter().map(|g| g.stored_size() as u64).sum();
                w.u64(c.bytes() - geo_bytes)?;
                w.u32(c.len() as u32)?;
                for g in c.geometries() {
                    w.u32(g.points().len() as u32)?;
                    for p in g.points() {
                        w.f64(p.x)?;
                        w.f64(p.y)?;
                    }
                }
            }

            let checksum = w.hash.0;
            w.inner.write_all(&checksum.to_le_bytes())
        })
    }

    /// Reads a tree previously written by [`PagedTree::save_to`] (either
    /// format version), rejecting any corruption.
    pub fn load_from(path: &Path) -> io::Result<PagedTree> {
        let raw = read_tree_file(path, false)?;
        debug_assert!(raw.corrupt_pages.is_empty());
        let tree = PagedTree::from_loaded_parts(
            raw.nodes,
            raw.root,
            raw.height,
            raw.num_items,
            raw.pages,
            raw.clusters,
        );
        tree.verify().map_err(|e| {
            corrupt(&format!(
                "{}: structural verification failed: {e}",
                path.display()
            ))
        })?;
        Ok(tree)
    }

    /// Loads a (possibly damaged) `PSJT2` tree, salvaging what verifies:
    /// pages with failed CRC footers become poisoned placeholders, a
    /// damaged cluster section yields an index without geometry, and the
    /// whole-file checksum result is reported rather than enforced.
    ///
    /// Fails only if the header is unusable or the *surviving* structure is
    /// inconsistent. A clean file loads with no poisoned pages and
    /// `checksum_ok == true` — identical to [`PagedTree::load_from`].
    pub fn load_from_lenient(path: &Path) -> io::Result<LenientLoad> {
        let raw = read_tree_file(path, true)?;
        let mut tree = PagedTree::from_loaded_parts(
            raw.nodes,
            raw.root,
            raw.height,
            raw.num_items,
            raw.pages,
            raw.clusters,
        );
        tree.set_poisoned(
            raw.corrupt_pages
                .iter()
                .map(|p| p.0)
                .collect::<BTreeSet<u32>>(),
        );
        tree.verify().map_err(|e| {
            corrupt(&format!(
                "{}: surviving structure inconsistent: {e}",
                path.display()
            ))
        })?;
        Ok(LenientLoad {
            tree,
            corrupt_pages: raw.corrupt_pages,
            checksum_ok: raw.checksum_ok,
            clusters_ok: raw.clusters_ok,
        })
    }
}

// ---------------------------------------------------------------------------
// Versioned manifest: generational index files with atomic flip-over.
// ---------------------------------------------------------------------------

/// The manifest format version written by this build.
pub const MANIFEST_FORMAT: u32 = 1;

/// A versioned pointer to the current generation of an index.
///
/// Stored as `<base>.manifest`, a small JSON file naming the current
/// generation file `<base>.g<n>`. Writers create the next generation beside
/// the current one and flip the manifest atomically; a crash at any point
/// leaves the manifest pointing at a complete previous generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Manifest format version ([`MANIFEST_FORMAT`]).
    pub format: u32,
    /// Current generation number (starts at 1).
    pub generation: u64,
    /// File name (relative to the manifest's directory) of the current
    /// generation.
    pub file: String,
}

/// Path of the manifest for index base path `base`.
pub fn manifest_path(base: &Path) -> PathBuf {
    let mut name = base.file_name().unwrap_or_default().to_os_string();
    name.push(".manifest");
    base.with_file_name(name)
}

/// File name of generation `generation` for `base`.
fn generation_file_name(base: &Path, generation: u64) -> String {
    format!(
        "{}.g{generation}",
        base.file_name().unwrap_or_default().to_string_lossy()
    )
}

/// Path of generation `generation` for `base`.
pub fn generation_path(base: &Path, generation: u64) -> PathBuf {
    base.with_file_name(generation_file_name(base, generation))
}

impl Manifest {
    fn to_json(&self) -> String {
        format!(
            "{{\"format\":{},\"generation\":{},\"file\":\"{}\"}}",
            self.format,
            self.generation,
            self.file.replace('\\', "\\\\").replace('"', "\\\"")
        )
    }

    fn parse(text: &str) -> Result<Manifest, String> {
        let format = json_u64(text, "format").ok_or("manifest: missing 'format'")? as u32;
        let generation = json_u64(text, "generation").ok_or("manifest: missing 'generation'")?;
        let file = json_str(text, "file").ok_or("manifest: missing 'file'")?;
        if format != MANIFEST_FORMAT {
            return Err(format!("manifest: unsupported format {format}"));
        }
        if file.contains('/') || file.contains("..") {
            return Err("manifest: file name must be a plain sibling name".into());
        }
        Ok(Manifest {
            format,
            generation,
            file,
        })
    }

    /// Loads the manifest for `base`, if one exists.
    pub fn load(base: &Path) -> io::Result<Option<Manifest>> {
        let path = manifest_path(base);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io::Error::new(e.kind(), format!("{}: {e}", path.display()))),
        };
        Manifest::parse(&text)
            .map(Some)
            .map_err(|e| corrupt(&format!("{}: {e}", path.display())))
    }

    /// Writes the manifest for `base` atomically.
    pub fn store(&self, base: &Path) -> io::Result<()> {
        let path = manifest_path(base);
        let json = self.to_json();
        atomic_write(&path, |w| w.write_all(json.as_bytes()))
    }
}

/// Minimal JSON field extraction (numbers and plain strings) — enough for
/// the manifest's flat schema without a JSON dependency.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_str(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

impl PagedTree {
    /// Saves this tree as the next generation of `base` and flips the
    /// manifest to it. Returns the new generation number.
    ///
    /// The sequence is crash-safe at every step: the new generation file is
    /// written atomically beside the old one, then the manifest flips
    /// atomically. Only after the flip is the *previous* previous
    /// generation pruned; the immediately preceding generation is kept as a
    /// rollback target.
    pub fn save_generation(&self, base: &Path) -> io::Result<u64> {
        let current = Manifest::load(base)?;
        let prev_gen = current.as_ref().map(|m| m.generation).unwrap_or(0);
        let next_gen = prev_gen + 1;
        self.save_to(&generation_path(base, next_gen))?;
        Manifest {
            format: MANIFEST_FORMAT,
            generation: next_gen,
            file: generation_file_name(base, next_gen),
        }
        .store(base)?;
        // Prune generations older than the one we just superseded.
        for old in (1..prev_gen).rev() {
            let p = generation_path(base, old);
            if p.exists() {
                let _ = std::fs::remove_file(p);
            } else {
                break;
            }
        }
        Ok(next_gen)
    }

    /// Loads the current generation of `base` per its manifest.
    pub fn load_latest(base: &Path) -> io::Result<(PagedTree, u64)> {
        let manifest = Manifest::load(base)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}: no manifest", manifest_path(base).display()),
            )
        })?;
        let path = base.with_file_name(&manifest.file);
        let tree = PagedTree::load_from(&path)?;
        Ok((tree, manifest.generation))
    }
}

// ---------------------------------------------------------------------------
// fsck: offline integrity scan.
// ---------------------------------------------------------------------------

/// The result of scanning an index file with [`fsck_file`].
#[derive(Debug)]
pub struct FsckReport {
    /// The file actually scanned.
    pub path: String,
    /// Tree format version (1 or 2), when the magic was readable.
    pub format: Option<u32>,
    /// Manifest generation, when `path` (or its base) has a manifest.
    pub manifest_generation: Option<u64>,
    /// Pages scanned.
    pub pages_scanned: u64,
    /// Pages whose CRC footer failed (always empty for v1 files, which
    /// have no per-page checksums).
    pub corrupt_pages: Vec<u32>,
    /// Whether the whole-file checksum matched.
    pub file_checksum_ok: bool,
    /// Whether the (surviving) structure verified.
    pub structure_ok: bool,
    /// Fatal problem that prevented scanning, if any.
    pub error: Option<String>,
}

impl FsckReport {
    /// Whether the file is fully healthy.
    pub fn ok(&self) -> bool {
        self.error.is_none()
            && self.corrupt_pages.is_empty()
            && self.file_checksum_ok
            && self.structure_ok
    }

    /// JSON rendering for the `psj fsck` CLI.
    pub fn to_json(&self) -> String {
        let pages = self
            .corrupt_pages
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"path\":\"{}\",\"ok\":{},\"format\":{},\"manifest_generation\":{},\"pages_scanned\":{},\"corrupt_pages\":[{}],\"file_checksum_ok\":{},\"structure_ok\":{},\"error\":{}}}",
            self.path.replace('\\', "\\\\").replace('"', "\\\""),
            self.ok(),
            self.format.map_or("null".into(), |v| v.to_string()),
            self.manifest_generation
                .map_or("null".into(), |v| v.to_string()),
            self.pages_scanned,
            pages,
            self.file_checksum_ok,
            self.structure_ok,
            self.error.as_ref().map_or("null".into(), |e| format!(
                "\"{}\"",
                e.replace('\\', "\\\\").replace('"', "\\\"")
            )),
        )
    }
}

/// Scans an index file, verifying every page checksum, the whole-file
/// checksum, and the structure. `path` may be either a tree file or an
/// index *base* whose manifest names the current generation.
pub fn fsck_file(path: &Path) -> FsckReport {
    let mut report = FsckReport {
        path: path.display().to_string(),
        format: None,
        manifest_generation: None,
        pages_scanned: 0,
        corrupt_pages: Vec::new(),
        file_checksum_ok: false,
        structure_ok: false,
        error: None,
    };

    // Resolve through the manifest when present (path given as a base, or
    // a tree file that also has a sibling manifest).
    let mut target = path.to_path_buf();
    match Manifest::load(path) {
        Ok(Some(m)) => {
            report.manifest_generation = Some(m.generation);
            if !target.exists() {
                target = path.with_file_name(&m.file);
                report.path = target.display().to_string();
            }
        }
        Ok(None) => {}
        Err(e) => {
            report.error = Some(format!("manifest unreadable: {e}"));
            return report;
        }
    }

    // Peek the magic to report the format even for corrupt files.
    match std::fs::File::open(&target) {
        Ok(mut f) => {
            let mut magic = [0u8; 6];
            if f.read_exact(&mut magic).is_ok() {
                report.format = match &magic {
                    m if m == MAGIC_V2 => Some(2),
                    m if m == MAGIC_V1 => Some(1),
                    _ => None,
                };
            }
        }
        Err(e) => {
            report.error = Some(format!("{}: {e}", target.display()));
            return report;
        }
    }

    match report.format {
        Some(2) => match read_tree_file(&target, true) {
            Ok(raw) => {
                report.pages_scanned = raw.nodes.len() as u64;
                report.corrupt_pages = raw.corrupt_pages.iter().map(|p| p.0).collect();
                report.file_checksum_ok = raw.checksum_ok;
                let mut tree = PagedTree::from_loaded_parts(
                    raw.nodes,
                    raw.root,
                    raw.height,
                    raw.num_items,
                    raw.pages,
                    raw.clusters,
                );
                tree.set_poisoned(report.corrupt_pages.iter().copied().collect());
                report.structure_ok = tree.verify().is_ok();
            }
            Err(e) => report.error = Some(e.to_string()),
        },
        Some(1) => match PagedTree::load_from(&target) {
            // v1 has no per-page checksums: the whole-file hash is the only
            // integrity signal, so a failure cannot name specific pages.
            Ok(tree) => {
                report.pages_scanned = tree.num_pages() as u64;
                report.file_checksum_ok = true;
                report.structure_ok = true;
            }
            Err(e) => report.error = Some(e.to_string()),
        },
        _ => report.error = Some("not a psj tree file (bad magic)".into()),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTree;
    use psj_geom::Rect;

    fn sample_tree(n: usize) -> PagedTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 40) as f64;
            let y = (i / 40) as f64;
            t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
        }
        PagedTree::freeze_with_attrs(
            &t,
            |oid| {
                let x = (oid % 40) as f64;
                let y = (oid / 40) as f64;
                Some(Polyline::new(vec![
                    Point::new(x, y),
                    Point::new(x + 0.9, y + 0.9),
                ]))
            },
            100,
        )
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psj-test-{}-{}", std::process::id(), name));
        p
    }

    /// Byte offset of page `n`'s record in a v2 file.
    fn record_offset(n: usize) -> usize {
        // magic 6 + root 4 + height 4 + items 8 + pages 4 + clusters 4
        30 + n * PAGE_RECORD_SIZE
    }

    #[test]
    fn save_load_roundtrip() {
        let tree = sample_tree(500);
        let path = tmpfile("roundtrip");
        tree.save_to(&path).unwrap();
        let loaded = PagedTree::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.len(), tree.len());
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.num_pages(), tree.num_pages());
        assert_eq!(loaded.stats(), tree.stats());
        assert_eq!(loaded.poisoned_count(), 0);
        // Queries agree.
        let w = Rect::new(3.0, 2.0, 17.0, 9.0);
        let a: Vec<u64> = tree.window_query(&w).iter().map(|e| e.oid).collect();
        let b: Vec<u64> = loaded.window_query(&w).iter().map(|e| e.oid).collect();
        assert_eq!(a, b);
        // Geometry survives.
        for e in loaded.window_query(&w) {
            assert!(loaded
                .clusters()
                .geometry(e.geom.page, e.geom.slot)
                .is_some());
        }
    }

    #[test]
    fn corrupted_file_rejected() {
        let tree = sample_tree(100);
        let path = tmpfile("corrupt");
        tree.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = PagedTree::load_from(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn flipped_page_bit_names_the_page() {
        let tree = sample_tree(200);
        let path = tmpfile("flip-named");
        tree.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in page 2's payload.
        bytes[record_offset(2) + 77] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = PagedTree::load_from(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("p2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lenient_load_salvages_around_corrupt_pages() {
        let tree = sample_tree(400);
        let path = tmpfile("lenient");
        tree.save_to(&path).unwrap();
        // Corrupt a *leaf* page (not the root) so structure survives.
        let victim = (0..tree.num_pages())
            .rev()
            .find(|&n| tree.node(PageId(n as u32)).is_leaf())
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[record_offset(victim) + 500] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let loaded = PagedTree::load_from_lenient(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.corrupt_pages, vec![PageId(victim as u32)]);
        assert!(!loaded.checksum_ok, "file checksum must fail");
        assert!(loaded.clusters_ok);
        assert_eq!(loaded.tree.poisoned_count(), 1);
        assert!(loaded.tree.is_poisoned(PageId(victim as u32)));
        assert!(!loaded.tree.is_poisoned(PageId(0)));
    }

    #[test]
    fn lenient_load_of_clean_file_matches_strict() {
        let tree = sample_tree(300);
        let path = tmpfile("lenient-clean");
        tree.save_to(&path).unwrap();
        let loaded = PagedTree::load_from_lenient(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.corrupt_pages.is_empty());
        assert!(loaded.checksum_ok);
        assert!(loaded.clusters_ok);
        assert_eq!(loaded.tree.poisoned_count(), 0);
        assert_eq!(loaded.tree.len(), tree.len());
    }

    #[test]
    fn truncated_file_rejected() {
        let tree = sample_tree(100);
        let path = tmpfile("truncate");
        tree.save_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(PagedTree::load_from(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"not a tree file at all").unwrap();
        let err = PagedTree::load_from(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn save_leaves_no_tmp_file() {
        let tree = sample_tree(50);
        let path = tmpfile("no-tmp");
        tree.save_to(&path).unwrap();
        assert!(!psj_store::tmp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cluster_sizes_preserved() {
        let tree = sample_tree(300);
        let path = tmpfile("clusters");
        tree.save_to(&path).unwrap();
        let loaded = PagedTree::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for pid in (0..tree.num_pages() as u32).map(PageId) {
            assert_eq!(
                tree.clusters().bytes_of(pid),
                loaded.clusters().bytes_of(pid),
                "cluster size of {pid}"
            );
        }
    }

    #[test]
    fn manifest_generations_flip_atomically() {
        let base = tmpfile("genbase");
        let tree = sample_tree(120);
        let g1 = tree.save_generation(&base).unwrap();
        assert_eq!(g1, 1);
        let (loaded, gen) = PagedTree::load_latest(&base).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(loaded.len(), tree.len());

        let tree2 = sample_tree(240);
        let g2 = tree2.save_generation(&base).unwrap();
        assert_eq!(g2, 2);
        let (loaded2, gen2) = PagedTree::load_latest(&base).unwrap();
        assert_eq!(gen2, 2);
        assert_eq!(loaded2.len(), 240);
        // Previous generation is kept as a rollback target.
        assert!(generation_path(&base, 1).exists());

        // A third save prunes generation 1.
        let g3 = sample_tree(60).save_generation(&base).unwrap();
        assert_eq!(g3, 3);
        assert!(!generation_path(&base, 1).exists());
        assert!(generation_path(&base, 2).exists());

        for g in 1..=3 {
            std::fs::remove_file(generation_path(&base, g)).ok();
        }
        std::fs::remove_file(manifest_path(&base)).ok();
    }

    #[test]
    fn manifest_rejects_path_traversal() {
        assert!(Manifest::parse("{\"format\":1,\"generation\":2,\"file\":\"../evil\"}").is_err());
        assert!(Manifest::parse("{\"format\":9,\"generation\":2,\"file\":\"x.g2\"}").is_err());
        let m = Manifest::parse("{\"format\":1,\"generation\":2,\"file\":\"x.g2\"}").unwrap();
        assert_eq!(m.generation, 2);
        assert_eq!(m.file, "x.g2");
    }

    #[test]
    fn fsck_clean_file_reports_ok() {
        let tree = sample_tree(150);
        let path = tmpfile("fsck-clean");
        tree.save_to(&path).unwrap();
        let report = fsck_file(&path);
        std::fs::remove_file(&path).ok();
        assert!(report.ok(), "{}", report.to_json());
        assert_eq!(report.format, Some(2));
        assert_eq!(report.pages_scanned, tree.num_pages() as u64);
        assert!(report.corrupt_pages.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"ok\":true"), "{json}");
    }

    #[test]
    fn fsck_flags_corrupt_pages() {
        let tree = sample_tree(400);
        let path = tmpfile("fsck-corrupt");
        tree.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[record_offset(1) + 9] ^= 0x40;
        bytes[record_offset(3) + 2048] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let report = fsck_file(&path);
        std::fs::remove_file(&path).ok();
        assert!(!report.ok());
        assert_eq!(report.corrupt_pages, vec![1, 3]);
        assert!(!report.file_checksum_ok);
        let json = report.to_json();
        assert!(json.contains("\"corrupt_pages\":[1,3]"), "{json}");
    }

    #[test]
    fn fsck_resolves_manifest_base() {
        let base = tmpfile("fsck-base");
        let tree = sample_tree(80);
        tree.save_generation(&base).unwrap();
        let report = fsck_file(&base);
        assert!(report.ok(), "{}", report.to_json());
        assert_eq!(report.manifest_generation, Some(1));
        std::fs::remove_file(generation_path(&base, 1)).ok();
        std::fs::remove_file(manifest_path(&base)).ok();
    }
}
