//! On-disk persistence for frozen trees.
//!
//! A [`PagedTree`] serializes to a single file: a fixed header, the raw
//! 4 KB pages, and the geometry clusters, protected by an FNV-1a checksum.
//! Buffered I/O throughout; loading re-decodes every node from its page
//! bytes (the same code path the in-memory freeze uses), so a loaded tree
//! is verified against its page images by construction.
//!
//! ```text
//! +------------------+ magic "PSJT1\n", root u32, height u32,
//! | header           | num_items u64, num_pages u32, num_clusters u32
//! +------------------+
//! | pages            | num_pages × 4096 raw bytes
//! +------------------+
//! | clusters         | per cluster: page u32, extra_bytes u64,
//! |                  |   count u32, then per geometry:
//! |                  |   vertex count u32 + count × (f64, f64)
//! +------------------+
//! | checksum         | FNV-1a 64 over everything above
//! +------------------+
//! ```

use crate::node::Node;
use crate::paged::PagedTree;
use psj_geom::{Point, Polyline};
use psj_store::{ClusterStore, PageId, PageStore, PAGE_SIZE};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 6] = b"PSJT1\n";

/// FNV-1a 64-bit, incrementally updatable.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
}

/// Writer that checksums everything it passes through.
struct HashWriter<W: Write> {
    inner: W,
    hash: Fnv,
}

impl<W: Write> HashWriter<W> {
    fn write_all_hashed(&mut self, buf: &[u8]) -> io::Result<()> {
        self.hash.update(buf);
        self.inner.write_all(buf)
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.write_all_hashed(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.write_all_hashed(&v.to_le_bytes())
    }
    fn f64(&mut self, v: f64) -> io::Result<()> {
        self.write_all_hashed(&v.to_le_bytes())
    }
}

/// Reader that checksums everything it passes through.
struct HashReader<R: Read> {
    inner: R,
    hash: Fnv,
}

impl<R: Read> HashReader<R> {
    fn read_exact_hashed(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.hash.update(buf);
        Ok(())
    }
    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact_hashed(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact_hashed(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.read_exact_hashed(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl PagedTree {
    /// Writes the tree to `path`, overwriting any existing file.
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = HashWriter {
            inner: BufWriter::new(file),
            hash: Fnv::new(),
        };

        w.write_all_hashed(MAGIC)?;
        w.u32(self.root().0)?;
        w.u32(self.height())?;
        w.u64(self.len())?;
        w.u32(self.num_pages() as u32)?;

        // Clusters: collect page ids in ascending order for determinism.
        let mut cluster_pages: Vec<PageId> = (0..self.num_pages() as u32)
            .map(PageId)
            .filter(|p| self.clusters().get(*p).is_some())
            .collect();
        cluster_pages.sort_unstable();
        w.u32(cluster_pages.len() as u32)?;

        for (_, page) in self.pages().iter() {
            w.write_all_hashed(page.bytes())?;
        }

        for pid in cluster_pages {
            let c = self
                .clusters()
                .get(pid)
                .expect("filtered to existing clusters");
            w.u32(pid.0)?;
            // Extra (attribute) bytes beyond the raw geometry.
            let geo_bytes: u64 = c.geometries().iter().map(|g| g.stored_size() as u64).sum();
            w.u64(c.bytes() - geo_bytes)?;
            w.u32(c.len() as u32)?;
            for g in c.geometries() {
                w.u32(g.points().len() as u32)?;
                for p in g.points() {
                    w.f64(p.x)?;
                    w.f64(p.y)?;
                }
            }
        }

        let checksum = w.hash.0;
        w.inner.write_all(&checksum.to_le_bytes())?;
        w.inner.flush()
    }

    /// Reads a tree previously written by [`PagedTree::save_to`].
    pub fn load_from(path: &Path) -> io::Result<PagedTree> {
        let file = std::fs::File::open(path)?;
        let mut r = HashReader {
            inner: BufReader::new(file),
            hash: Fnv::new(),
        };

        let mut magic = [0u8; 6];
        r.read_exact_hashed(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("bad magic: not a psj tree file"));
        }
        let root = PageId(r.u32()?);
        let height = r.u32()?;
        let num_items = r.u64()?;
        let num_pages = r.u32()? as usize;
        let num_clusters = r.u32()? as usize;
        if root.index() >= num_pages.max(1) {
            return Err(corrupt("root page out of range"));
        }

        let mut pages = PageStore::new();
        let mut nodes = Vec::with_capacity(num_pages);
        let mut buf = vec![0u8; PAGE_SIZE];
        for _ in 0..num_pages {
            r.read_exact_hashed(&mut buf)?;
            let id = pages.allocate();
            pages.write(id).bytes_mut().copy_from_slice(&buf);
            nodes.push(Node::decode(pages.read(id)));
        }

        let mut clusters = ClusterStore::new();
        for _ in 0..num_clusters {
            let pid = PageId(r.u32()?);
            if pid.index() >= num_pages {
                return Err(corrupt("cluster page out of range"));
            }
            let extra_total = r.u64()?;
            let count = r.u32()? as usize;
            if count == 0 {
                return Err(corrupt("empty cluster"));
            }
            let extra_each = extra_total / count as u64;
            let mut extra_rem = extra_total % count as u64;
            for _ in 0..count {
                let nv = r.u32()? as usize;
                if !(2..=1_000_000).contains(&nv) {
                    return Err(corrupt("implausible vertex count"));
                }
                let mut pts = Vec::with_capacity(nv);
                for _ in 0..nv {
                    let x = r.f64()?;
                    let y = r.f64()?;
                    pts.push(Point::new(x, y));
                }
                let extra = extra_each
                    + if extra_rem > 0 {
                        extra_rem -= 1;
                        1
                    } else {
                        0
                    };
                clusters.push_with_extra(pid, Polyline::new(pts), extra);
            }
        }

        let computed = r.hash.0;
        let mut cs = [0u8; 8];
        r.inner.read_exact(&mut cs)?;
        if u64::from_le_bytes(cs) != computed {
            return Err(corrupt("checksum mismatch"));
        }
        // Must be at end of file.
        let mut extra = [0u8; 1];
        if r.inner.read(&mut extra)? != 0 {
            return Err(corrupt("trailing bytes after checksum"));
        }

        let tree = PagedTree::from_loaded_parts(nodes, root, height, num_items, pages, clusters);
        tree.verify()
            .map_err(|e| corrupt(&format!("structural verification failed: {e}")))?;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTree;
    use psj_geom::Rect;

    fn sample_tree(n: usize) -> PagedTree {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 40) as f64;
            let y = (i / 40) as f64;
            t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
        }
        PagedTree::freeze_with_attrs(
            &t,
            |oid| {
                let x = (oid % 40) as f64;
                let y = (oid / 40) as f64;
                Some(Polyline::new(vec![
                    Point::new(x, y),
                    Point::new(x + 0.9, y + 0.9),
                ]))
            },
            100,
        )
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psj-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let tree = sample_tree(500);
        let path = tmpfile("roundtrip");
        tree.save_to(&path).unwrap();
        let loaded = PagedTree::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.len(), tree.len());
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.num_pages(), tree.num_pages());
        assert_eq!(loaded.stats(), tree.stats());
        // Queries agree.
        let w = Rect::new(3.0, 2.0, 17.0, 9.0);
        let a: Vec<u64> = tree.window_query(&w).iter().map(|e| e.oid).collect();
        let b: Vec<u64> = loaded.window_query(&w).iter().map(|e| e.oid).collect();
        assert_eq!(a, b);
        // Geometry survives.
        for e in loaded.window_query(&w) {
            assert!(loaded
                .clusters()
                .geometry(e.geom.page, e.geom.slot)
                .is_some());
        }
    }

    #[test]
    fn corrupted_file_rejected() {
        let tree = sample_tree(100);
        let path = tmpfile("corrupt");
        tree.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = PagedTree::load_from(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_rejected() {
        let tree = sample_tree(100);
        let path = tmpfile("truncate");
        tree.save_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(PagedTree::load_from(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"not a tree file at all").unwrap();
        let err = PagedTree::load_from(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn cluster_sizes_preserved() {
        let tree = sample_tree(300);
        let path = tmpfile("clusters");
        tree.save_to(&path).unwrap();
        let loaded = PagedTree::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for pid in (0..tree.num_pages() as u32).map(PageId) {
            assert_eq!(
                tree.clusters().bytes_of(pid),
                loaded.clusters().bytes_of(pid),
                "cluster size of {pid}"
            );
        }
    }
}
