//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Used as an ablation baseline against dynamic R\*-tree insertion: STR
//! produces near-100 % full pages (fewer pages, fewer tasks), while dynamic
//! insertion yields the ~70 % storage utilization the paper's Table 1 trees
//! exhibit. The parallel join works on either.

use crate::entry::{DataEntry, DirEntry, GeomRef};
use crate::node::{Node, NodeKind, DATA_FANOUT, DIR_FANOUT};
use crate::tree::RTree;
use psj_geom::Rect;

/// Bulk loads a tree from `(mbr, oid)` items using STR with the given page
/// capacities (pass [`DATA_FANOUT`]/[`DIR_FANOUT`] for paper-layout pages, or
/// smaller values to force taller trees in tests).
pub fn bulk_load_str_with_fanout(
    items: &[(Rect, u64)],
    leaf_capacity: usize,
    dir_capacity: usize,
) -> RTree {
    assert!(
        leaf_capacity >= 2 && dir_capacity >= 2,
        "capacities must be at least 2"
    );
    if items.is_empty() {
        return RTree::new();
    }

    // --- leaf level -------------------------------------------------------
    let mut entries: Vec<DataEntry> = items
        .iter()
        .map(|&(mbr, oid)| DataEntry {
            mbr,
            oid,
            geom: GeomRef::UNSET,
        })
        .collect();
    let leaves = str_tile(&mut entries, leaf_capacity, |e| e.mbr);

    let mut nodes: Vec<Node> = Vec::new();
    let mut level_nodes: Vec<(u32, Rect)> = Vec::new(); // (arena idx, mbr)
    for group in leaves {
        let mut node = Node::new_leaf();
        *node.data_entries_mut() = group;
        let mbr = node.mbr();
        level_nodes.push((nodes.len() as u32, mbr));
        nodes.push(node);
    }

    // --- directory levels ---------------------------------------------------
    let mut level = 1u32;
    while level_nodes.len() > 1 {
        let mut dir_entries: Vec<DirEntry> = level_nodes
            .iter()
            .map(|&(idx, mbr)| DirEntry { mbr, child: idx })
            .collect();
        let groups = str_tile(&mut dir_entries, dir_capacity, |e| e.mbr);
        let mut next_level = Vec::with_capacity(groups.len());
        for group in groups {
            let mut node = Node::new_dir(level);
            *node.dir_entries_mut() = group;
            let mbr = node.mbr();
            next_level.push((nodes.len() as u32, mbr));
            nodes.push(node);
        }
        level_nodes = next_level;
        level += 1;
    }

    let root = level_nodes[0].0;
    RTree::from_parts(nodes, root, items.len() as u64)
}

/// Bulk loads with the paper's page capacities.
pub fn bulk_load_str(items: &[(Rect, u64)]) -> RTree {
    bulk_load_str_with_fanout(items, DATA_FANOUT, DIR_FANOUT)
}

/// STR tiling: sort by center x, cut into vertical slabs of
/// `ceil(sqrt(n / cap))` tiles, sort each slab by center y, and chop into
/// groups of `cap`.
fn str_tile<E: Clone>(entries: &mut [E], cap: usize, mbr: impl Fn(&E) -> Rect) -> Vec<Vec<E>> {
    let n = entries.len();
    let num_groups = n.div_ceil(cap);
    let num_slabs = (num_groups as f64).sqrt().ceil() as usize;
    let slab_size = n.div_ceil(num_slabs);

    entries.sort_by(|a, b| {
        mbr(a)
            .center()
            .x
            .partial_cmp(&mbr(b).center().x)
            .expect("NaN coordinate")
    });
    let mut out = Vec::with_capacity(num_groups);
    for slab in entries.chunks_mut(slab_size) {
        slab.sort_by(|a, b| {
            mbr(a)
                .center()
                .y
                .partial_cmp(&mbr(b).center().y)
                .expect("NaN coordinate")
        });
        for group in slab.chunks(cap) {
            out.push(group.to_vec());
        }
    }
    out
}

impl RTree {
    /// Assembles a tree from pre-built parts (used by bulk loading).
    pub(crate) fn from_parts(nodes: Vec<Node>, root: u32, num_items: u64) -> Self {
        let tree = RTree::assemble(nodes, root, num_items);
        debug_assert!(tree.check_invariants_bulk().is_ok());
        tree
    }

    /// Invariant check relaxed for bulk-loaded trees: STR may produce one
    /// underfull node per level (the remainder group), so only fanout,
    /// levels and MBR exactness are verified.
    pub fn check_invariants_bulk(&self) -> Result<(), String> {
        let mut stack = vec![(self.root(), None::<Rect>)];
        while let Some((idx, expected)) = stack.pop() {
            let node = self.node(idx);
            if let Some(m) = expected {
                if node.mbr() != m {
                    return Err(format!("node {idx}: stale parent MBR"));
                }
            }
            if node.len() > node.fanout() {
                return Err(format!("node {idx} overflows"));
            }
            if let NodeKind::Dir(entries) = &node.kind {
                for e in entries {
                    if self.node(e.child).level + 1 != node.level {
                        return Err(format!("node {idx}: level mismatch"));
                    }
                    stack.push((e.child, Some(e.mbr)));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<(Rect, u64)> {
        (0..n)
            .map(|i| {
                let x = (i % 50) as f64;
                let y = (i / 50) as f64;
                (Rect::new(x, y, x + 0.8, y + 0.8), i as u64)
            })
            .collect()
    }

    #[test]
    fn empty_bulk_load() {
        let t = bulk_load_str(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn single_item() {
        let t = bulk_load_str(&items(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn exact_capacity_stays_one_leaf() {
        let t = bulk_load_str(&items(DATA_FANOUT));
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn query_matches_scan() {
        let data = items(1000);
        let t = bulk_load_str(&data);
        assert_eq!(t.len(), 1000);
        t.check_invariants_bulk().unwrap();
        let w = Rect::new(10.0, 5.0, 20.0, 12.0);
        let mut got: Vec<u64> = t.window_query(&w).iter().map(|e| e.oid).collect();
        got.sort_unstable();
        let want: Vec<u64> = data
            .iter()
            .filter(|(r, _)| r.intersects(&w))
            .map(|&(_, o)| o)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn forced_height_with_small_fanout() {
        let t = bulk_load_str_with_fanout(&items(64), 4, 4);
        assert!(t.height() >= 3, "height was {}", t.height());
        t.check_invariants_bulk().unwrap();
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn str_utilization_is_high() {
        let t = bulk_load_str(&items(2600));
        // 2600 items at 26/leaf = 100 leaves exactly.
        let leaves = t.nodes().iter().filter(|n| n.is_leaf()).count();
        assert_eq!(leaves, 100);
    }
}
