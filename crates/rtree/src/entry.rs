//! Directory and data entries with the paper's on-page byte layout.
//!
//! "For the representation of an entry in a directory page, 40 bytes are
//! used and for an entry in a data page, 156 bytes are reserved (including
//! the MBR and a pointer to the exact object representation)." (§4.1)

use bytes::{Buf, BufMut};
use psj_geom::Rect;
use psj_store::PageId;
use serde::{Deserialize, Serialize};

/// Stored size of one directory entry: 4×f64 MBR + u32 child + 4 pad.
pub const DIR_ENTRY_BYTES: usize = 40;

/// Stored size of one data entry: 4×f64 MBR + u64 object id + geometry
/// pointer + reserved attribute payload, padded to the paper's 156 bytes.
pub const DATA_ENTRY_BYTES: usize = 156;

/// Pointer to an object's exact geometry: the cluster of a data page plus a
/// slot within it ([BK 94] clustering: cluster id == data page id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GeomRef {
    /// Data page whose cluster stores the geometry.
    pub page: PageId,
    /// Slot within the cluster.
    pub slot: u32,
}

impl GeomRef {
    /// A placeholder reference used while the tree is still in memory and
    /// pages have not been assigned yet.
    pub const UNSET: GeomRef = GeomRef {
        page: PageId(u32::MAX),
        slot: u32::MAX,
    };
}

/// An entry of a directory node: the MBR of a subtree and its page.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Minimum bounding rectangle of everything below `child`.
    pub mbr: Rect,
    /// Child node (arena index while in memory, page number once paged).
    pub child: u32,
}

/// An entry of a data (leaf) node: an object's MBR, id, and geometry pointer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataEntry {
    /// Minimum bounding rectangle of the object.
    pub mbr: Rect,
    /// Application object identifier.
    pub oid: u64,
    /// Pointer to the exact geometry.
    pub geom: GeomRef,
}

impl DirEntry {
    /// Serializes into exactly [`DIR_ENTRY_BYTES`] bytes.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64_le(self.mbr.xl);
        buf.put_f64_le(self.mbr.yl);
        buf.put_f64_le(self.mbr.xu);
        buf.put_f64_le(self.mbr.yu);
        buf.put_u32_le(self.child);
        buf.put_bytes(0, DIR_ENTRY_BYTES - 36);
    }

    /// Deserializes from exactly [`DIR_ENTRY_BYTES`] bytes.
    pub fn decode<B: Buf>(buf: &mut B) -> Self {
        let xl = buf.get_f64_le();
        let yl = buf.get_f64_le();
        let xu = buf.get_f64_le();
        let yu = buf.get_f64_le();
        let child = buf.get_u32_le();
        buf.advance(DIR_ENTRY_BYTES - 36);
        DirEntry {
            mbr: Rect::new(xl, yl, xu, yu),
            child,
        }
    }
}

impl DataEntry {
    /// Serializes into exactly [`DATA_ENTRY_BYTES`] bytes.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64_le(self.mbr.xl);
        buf.put_f64_le(self.mbr.yl);
        buf.put_f64_le(self.mbr.xu);
        buf.put_f64_le(self.mbr.yu);
        buf.put_u64_le(self.oid);
        buf.put_u32_le(self.geom.page.0);
        buf.put_u32_le(self.geom.slot);
        buf.put_bytes(0, DATA_ENTRY_BYTES - 48);
    }

    /// Deserializes from exactly [`DATA_ENTRY_BYTES`] bytes.
    pub fn decode<B: Buf>(buf: &mut B) -> Self {
        let xl = buf.get_f64_le();
        let yl = buf.get_f64_le();
        let xu = buf.get_f64_le();
        let yu = buf.get_f64_le();
        let oid = buf.get_u64_le();
        let page = PageId(buf.get_u32_le());
        let slot = buf.get_u32_le();
        buf.advance(DATA_ENTRY_BYTES - 48);
        DataEntry {
            mbr: Rect::new(xl, yl, xu, yu),
            oid,
            geom: GeomRef { page, slot },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_entry_roundtrip() {
        let e = DirEntry {
            mbr: Rect::new(1.0, 2.0, 3.0, 4.0),
            child: 42,
        };
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(buf.len(), DIR_ENTRY_BYTES);
        let mut slice = &buf[..];
        assert_eq!(DirEntry::decode(&mut slice), e);
        assert!(slice.is_empty());
    }

    #[test]
    fn data_entry_roundtrip() {
        let e = DataEntry {
            mbr: Rect::new(-1.5, 0.0, 2.5, 9.75),
            oid: 0xDEAD_BEEF_CAFE,
            geom: GeomRef {
                page: PageId(7),
                slot: 3,
            },
        };
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(buf.len(), DATA_ENTRY_BYTES);
        let mut slice = &buf[..];
        assert_eq!(DataEntry::decode(&mut slice), e);
        assert!(slice.is_empty());
    }

    #[test]
    fn layout_matches_paper() {
        assert_eq!(DIR_ENTRY_BYTES, 40);
        assert_eq!(DATA_ENTRY_BYTES, 156);
    }
}
