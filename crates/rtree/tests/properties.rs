//! Property-based tests for the R*-tree.

use proptest::prelude::*;
use psj_geom::{Point, Polyline, Rect};
use psj_rtree::bulk::bulk_load_str_with_fanout;
use psj_rtree::split::rstar_split;
use psj_rtree::{DataEntry, GeomRef, PagedTree, RTree};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1000.0, 0.0f64..1000.0, 0.0f64..20.0, 0.0f64..20.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insert_preserves_invariants(rects in prop::collection::vec(arb_rect(), 1..400)) {
        let mut t = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        prop_assert_eq!(t.len(), rects.len() as u64);
        t.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn window_query_equals_linear_scan(
        rects in prop::collection::vec(arb_rect(), 0..300),
        window in arb_rect(),
    ) {
        let mut t = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        let mut got: Vec<u64> = t.window_query(&window).iter().map(|e| e.oid).collect();
        got.sort_unstable();
        let want: Vec<u64> = rects.iter().enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn full_window_returns_everything(rects in prop::collection::vec(arb_rect(), 1..300)) {
        let mut t = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        let all = t.window_query(&t.mbr());
        prop_assert_eq!(all.len(), rects.len());
    }

    #[test]
    fn split_partitions_entries(rects in prop::collection::vec(arb_rect(), 20..60)) {
        let entries: Vec<DataEntry> = rects.iter().enumerate()
            .map(|(i, &mbr)| DataEntry { mbr, oid: i as u64, geom: GeomRef::UNSET })
            .collect();
        let min_fill = entries.len() / 3;
        let min_fill = min_fill.max(1);
        let (a, b) = rstar_split(entries.clone(), min_fill);
        prop_assert!(a.len() >= min_fill);
        prop_assert!(b.len() >= min_fill);
        let mut oids: Vec<u64> = a.iter().chain(b.iter()).map(|e| e.oid).collect();
        oids.sort_unstable();
        let want: Vec<u64> = (0..entries.len() as u64).collect();
        prop_assert_eq!(oids, want);
    }

    #[test]
    fn bulk_load_query_equals_scan(
        rects in prop::collection::vec(arb_rect(), 0..300),
        window in arb_rect(),
    ) {
        let items: Vec<(Rect, u64)> = rects.iter().enumerate()
            .map(|(i, &r)| (r, i as u64)).collect();
        let t = bulk_load_str_with_fanout(&items, 6, 6);
        t.check_invariants_bulk().map_err(TestCaseError::fail)?;
        let mut got: Vec<u64> = t.window_query(&window).iter().map(|e| e.oid).collect();
        got.sort_unstable();
        let want: Vec<u64> = rects.iter().enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn frozen_tree_round_trips(rects in prop::collection::vec(arb_rect(), 1..250)) {
        let mut t = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        let p = PagedTree::freeze(&t, |oid| {
            let r = &rects[oid as usize];
            Some(Polyline::new(vec![
                Point::new(r.xl, r.yl),
                Point::new(r.xu, r.yu),
            ]))
        });
        p.verify().map_err(TestCaseError::fail)?;
        prop_assert_eq!(p.len(), rects.len() as u64);
        // Every object's geometry is reachable through its GeomRef.
        for e in p.window_query(&p.mbr()) {
            let g = p.clusters().geometry(e.geom.page, e.geom.slot);
            prop_assert!(g.is_some());
        }
    }
}
