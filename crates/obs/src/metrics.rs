//! Counters, gauges, histograms, and a registry that renders them in the
//! Prometheus text exposition format.
//!
//! Every metric is a relaxed atomic: recording is a handful of uncontended
//! `fetch_add`s, cheap enough for the hot path of every response. The
//! histogram uses logarithmic (power-of-two) buckets over microseconds, so
//! percentiles carry ~±50% resolution across nine orders of magnitude with
//! 40 fixed buckets and zero allocation.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` microseconds, the last bucket everything above.
pub const BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depths, resident pages).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket, power-of-two latency histogram over microseconds.
///
/// Bucket edges: bucket `i` covers `[2^i, 2^(i+1))` µs. Both edges of the
/// input domain are safe by construction: 0 µs lands in bucket 0 (the
/// `micros | 1` below makes `log2` well-defined at zero) and `u64::MAX` µs
/// clamps into the last bucket — see the edge tests at the bottom.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of all recorded values in microseconds (saturating), for the
    /// Prometheus `_sum` series.
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
        }
    }
}

/// Saturating add on a relaxed atomic: never wraps, even if two adders
/// race near the ceiling (the value sticks at `u64::MAX`).
fn saturating_add(cell: &AtomicU64, n: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(micros: u64) -> usize {
        // floor(log2(max(micros, 1))), clamped into range.
        (63 - (micros | 1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        self.record_micros(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one observation given directly in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        saturating_add(&self.sum_micros, micros);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations in microseconds (saturating).
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, lowest bucket first.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Folds `other` into `self`. Saturating: merging two histograms whose
    /// bucket counts sum past `u64::MAX` pins the bucket at the ceiling
    /// instead of wrapping (a wrapped count would silently shift every
    /// quantile toward zero).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            saturating_add(mine, theirs.load(Ordering::Relaxed));
        }
        saturating_add(&self.sum_micros, other.sum_micros());
    }

    /// The `q`-quantile (`0 < q <= 1`) in milliseconds, estimated as the
    /// geometric midpoint of the bucket holding the rank; 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().fold(0, |acc, &c| acc.saturating_add(c));
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                // Bucket i covers [2^i, 2^(i+1)) µs; report its geometric
                // midpoint, in ms.
                let lo = (1u64 << i) as f64;
                return lo * std::f64::consts::SQRT_2 / 1_000.0;
            }
        }
        unreachable!("rank <= total")
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    help: String,
    /// `Some((key, value))` renders the series as `name{key="value"}`;
    /// entries sharing a name form one family with a single HELP/TYPE
    /// header.
    label: Option<(String, String)>,
    metric: Metric,
}

impl Entry {
    /// The series identifier as rendered: bare name, or `name{k="v"}`.
    fn series(&self) -> String {
        match &self.label {
            Some((k, v)) => format!("{}{{{k}=\"{v}\"}}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A named collection of metrics, rendered on demand in the Prometheus
/// text exposition format.
///
/// Registration is get-or-create by name: asking twice for the same name
/// returns the same underlying atomic, so independent subsystems can share
/// a series without coordinating. The registry lock is held only during
/// registration and rendering — never while recording.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        write!(f, "Registry({n} metrics)")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Inserts a new entry adjacent to its family (same `name`), so a
    /// family's series render contiguously under one HELP/TYPE header.
    fn insert_entry(entries: &mut Vec<Entry>, entry: Entry) {
        let pos = entries
            .iter()
            .rposition(|e| e.name == entry.name)
            .map(|i| i + 1)
            .unwrap_or(entries.len());
        entries.insert(pos, entry);
    }

    /// Returns the counter named `name`, creating it if absent.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_entry(name, help, None)
    }

    /// Returns the counter series `name{key="value"}`, creating it if
    /// absent. Series sharing `name` form one family (one HELP/TYPE
    /// header, one line per label value).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter_with_label(
        &self,
        name: &str,
        help: &str,
        key: &str,
        value: &str,
    ) -> Arc<Counter> {
        self.counter_entry(name, help, Some((key.to_string(), value.to_string())))
    }

    fn counter_entry(
        &self,
        name: &str,
        help: &str,
        label: Option<(String, String)>,
    ) -> Arc<Counter> {
        let mut entries = self.lock();
        for e in entries.iter().filter(|e| e.name == name) {
            match &e.metric {
                Metric::Counter(c) if e.label == label => return Arc::clone(c),
                Metric::Counter(_) => {}
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let c = Arc::new(Counter::new());
        Self::insert_entry(
            &mut entries,
            Entry {
                name: name.to_string(),
                help: help.to_string(),
                label,
                metric: Metric::Counter(Arc::clone(&c)),
            },
        );
        c
    }

    /// Returns the gauge named `name`, creating it if absent.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_entry(name, help, None)
    }

    /// Returns the gauge series `name{key="value"}`, creating it if
    /// absent.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge_with_label(&self, name: &str, help: &str, key: &str, value: &str) -> Arc<Gauge> {
        self.gauge_entry(name, help, Some((key.to_string(), value.to_string())))
    }

    fn gauge_entry(&self, name: &str, help: &str, label: Option<(String, String)>) -> Arc<Gauge> {
        let mut entries = self.lock();
        for e in entries.iter().filter(|e| e.name == name) {
            match &e.metric {
                Metric::Gauge(g) if e.label == label => return Arc::clone(g),
                Metric::Gauge(_) => {}
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let g = Arc::new(Gauge::new());
        Self::insert_entry(
            &mut entries,
            Entry {
                name: name.to_string(),
                help: help.to_string(),
                label,
                metric: Metric::Gauge(Arc::clone(&g)),
            },
        );
        g
    }

    /// Returns the histogram named `name`, creating it if absent.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut entries = self.lock();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.metric {
                Metric::Histogram(h) => return Arc::clone(h),
                _ => panic!("metric {name} already registered with a different kind"),
            }
        }
        let h = Arc::new(Histogram::new());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            label: None,
            metric: Metric::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Renders every registered metric in the Prometheus text format.
    ///
    /// Counters render as `TYPE counter`, gauges as `TYPE gauge`, and
    /// histograms as the conventional cumulative `_bucket{le=...}` series
    /// (upper bounds in seconds) plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let entries = self.lock();
        let mut out = String::new();
        let mut prev_name: Option<&str> = None;
        for e in entries.iter() {
            // Labeled series sharing a name are one family: emit the
            // HELP/TYPE header only for the first entry of a run.
            let new_family = prev_name != Some(e.name.as_str());
            prev_name = Some(e.name.as_str());
            match &e.metric {
                Metric::Counter(c) => {
                    if new_family {
                        let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                        let _ = writeln!(out, "# TYPE {} counter", e.name);
                    }
                    let _ = writeln!(out, "{} {}", e.series(), c.get());
                }
                Metric::Gauge(g) => {
                    if new_family {
                        let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                        let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    }
                    let _ = writeln!(out, "{} {}", e.series(), g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate() {
                        cum = cum.saturating_add(c);
                        if i + 1 < BUCKETS {
                            // Upper bound of bucket i is 2^(i+1) µs.
                            let le = (1u128 << (i + 1)) as f64 / 1e6;
                            let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cum}", e.name);
                        } else {
                            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cum}", e.name);
                        }
                    }
                    let _ = writeln!(out, "{}_sum {}", e.name, h.sum_micros() as f64 / 1e6);
                    let _ = writeln!(out, "{}_count {cum}", e.name);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("reqs_total", "requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Get-or-create returns the same atomic.
        assert_eq!(r.counter("reqs_total", "requests").get(), 5);
        let g = r.gauge("depth", "queue depth");
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "");
        r.gauge("x", "");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics_across_labels() {
        let r = Registry::new();
        r.counter_with_label("x", "", "shard", "0");
        r.gauge_with_label("x", "", "shard", "1");
    }

    #[test]
    fn labeled_series_share_one_family_header() {
        let r = Registry::new();
        let a = r.counter_with_label("psj_shard_retries_total", "Retries", "shard", "0");
        // An unrelated registration in between must not split the family.
        r.counter("psj_other_total", "Other").inc();
        let b = r.counter_with_label("psj_shard_retries_total", "Retries", "shard", "1");
        a.add(2);
        b.add(5);
        // Get-or-create is keyed on (name, label).
        assert_eq!(
            r.counter_with_label("psj_shard_retries_total", "Retries", "shard", "0")
                .get(),
            2
        );
        let g = r.gauge_with_label("psj_shard_health", "Health", "shard", "0");
        g.set(3);
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# TYPE psj_shard_retries_total counter")
                .count(),
            1,
            "one TYPE header per family:\n{text}"
        );
        assert!(text.contains("psj_shard_retries_total{shard=\"0\"} 2"));
        assert!(text.contains("psj_shard_retries_total{shard=\"1\"} 5"));
        assert!(text.contains("psj_shard_health{shard=\"0\"} 3"));
        // Family lines are contiguous despite interleaved registration.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("psj_shard_retries_total"))
            .collect();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn bucket_edges_zero_and_max() {
        // 0 µs: `micros | 1` keeps leading_zeros well-defined → bucket 0,
        // no underflow, no panic.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        // u64::MAX µs: log2 = 63, clamped into the last bucket.
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(1u64 << 39), BUCKETS - 1);
        let h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::MAX);
        h.record_micros(u64::MAX);
        assert_eq!(h.count(), 3);
        let q = h.quantile_ms(1.0);
        assert!(q.is_finite() && q > 0.0);
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(Duration::from_micros(100));
        b.record(Duration::from_micros(100));
        b.record(Duration::from_millis(50));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_micros(), 100 + 100 + 50_000);
        assert!(b.count() == 2, "merge must not mutate the source");
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let a = Histogram::new();
        let b = Histogram::new();
        // Force both histograms' bucket 0 near the ceiling.
        a.buckets[0].store(u64::MAX - 1, Ordering::Relaxed);
        a.sum_micros.store(u64::MAX - 1, Ordering::Relaxed);
        b.buckets[0].store(u64::MAX - 1, Ordering::Relaxed);
        b.sum_micros.store(u64::MAX - 1, Ordering::Relaxed);
        a.merge(&b);
        assert_eq!(a.bucket_counts()[0], u64::MAX, "count must pin, not wrap");
        assert_eq!(a.sum_micros(), u64::MAX, "sum must pin, not wrap");
        // And the saturated histogram still answers quantiles sanely.
        assert!(a.quantile_ms(0.5) > 0.0);
        assert!(a.quantile_ms(1.0) >= a.quantile_ms(0.5));
    }

    #[test]
    fn record_micros_saturates_sum() {
        let h = Histogram::new();
        h.record_micros(u64::MAX);
        h.record_micros(u64::MAX);
        assert_eq!(h.sum_micros(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("psj_requests_total", "Requests answered").add(3);
        r.gauge("psj_queue_depth", "Admitted in flight").set(2);
        let h = r.histogram("psj_latency_seconds", "Request latency");
        h.record(Duration::from_micros(5));
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE psj_requests_total counter"));
        assert!(text.contains("psj_requests_total 3"));
        assert!(text.contains("# TYPE psj_queue_depth gauge"));
        assert!(text.contains("psj_queue_depth 2"));
        assert!(text.contains("# TYPE psj_latency_seconds histogram"));
        assert!(text.contains("psj_latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("psj_latency_seconds_count 1"));
        assert!(text.contains("psj_latency_seconds_sum 0.000005"));
        // Buckets are cumulative: every line's count is the running total.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative buckets must be nondecreasing");
            last = v;
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bucket_accurate() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50));
        }
        assert_eq!(h.count(), 100);
        let (p50, p95, p99) = (h.quantile_ms(0.5), h.quantile_ms(0.95), h.quantile_ms(0.99));
        assert!(p50 < 1.0, "p50 {p50} should sit in the fast band");
        assert!(p95 > 10.0, "p95 {p95} should sit in the slow band");
        assert!(p50 <= p95 && p95 <= p99, "{p50} <= {p95} <= {p99}");
        assert!(p50 > 0.05 && p50 < 0.3, "p50 {p50}");
    }
}
