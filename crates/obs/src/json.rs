//! A minimal JSON parser for trace validation.
//!
//! The workspace builds fully offline — the `serde` shim under
//! `crates/compat/` provides derives but no serialization backend — so the
//! trace checker carries its own ~150-line recursive-descent parser. It
//! accepts strict JSON (RFC 8259) with a depth limit, which is all the
//! validator needs; it is not a general-purpose deserializer.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys are kept; `get` returns
    /// the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Maximum nesting depth accepted by [`parse`] (guards the validator's
/// stack against hostile input; real trace lines nest two levels).
const MAX_DEPTH: usize = 64;

/// Parses one JSON document. The whole input must be consumed (trailing
/// whitespace allowed).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected {:?}, found end of input", b as char)),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(members)),
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos - 1)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: must be followed by \uXXXX low.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("bad low surrogate".into());
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(c).ok_or("bad surrogate pair")?);
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err("lone low surrogate".into());
                        } else {
                            out.push(char::from_u32(cp).ok_or("bad code point")?);
                        }
                    }
                    _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!(
                        "raw control byte in string at offset {}",
                        self.pos - 1
                    ))
                }
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid; re-decode it.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            let d = (c as char).to_digit(16).ok_or("bad hex in \\u escape")?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_shaped_lines() {
        let v = parse(
            "{\"name\":\"task\",\"cat\":\"join\",\"ph\":\"X\",\"ts\":12.345,\"dur\":6.7,\"pid\":1,\"tid\":3,\"args\":{\"pages\":9}}",
        )
        .unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("task"));
        assert_eq!(v.get("ts").and_then(Value::as_f64), Some(12.345));
        assert_eq!(
            v.get("args")
                .and_then(|a| a.get("pages"))
                .and_then(Value::as_f64),
            Some(9.0)
        );
    }

    #[test]
    fn parses_scalars_arrays_escapes() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(
            parse("[1, \"a\\n\\u00e9\", []]").unwrap(),
            Value::Arr(vec![
                Value::Num(1.0),
                Value::Str("a\né".into()),
                Value::Arr(vec![])
            ])
        );
        // Surrogate pair.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".into())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\" 1}",
            "nulll",
            "1 2",
            "\"\\q\"",
            "\"\\ud800\"",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        // Depth bomb stops at the limit instead of blowing the stack.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }
}
