//! Structured tracing: bounded per-thread event buffers with nanosecond
//! timestamps, drained into a JSONL file in the Chrome trace event format
//! (loadable by Perfetto and `chrome://tracing`).
//!
//! Recording model:
//!
//! * Each worker thread owns a [`ThreadTracer`] — events go into a private
//!   `Vec` with no synchronization; the buffer is retired into the shared
//!   sink in one short lock when full and on drop.
//! * Cross-thread event streams that have no natural owner (cache fills,
//!   server admission) push through [`TraceSink::instant`] /
//!   [`TraceSink::span`], a short mutex push on cold paths.
//! * Everything is bounded: the sink stops accepting past its event budget
//!   and counts drops instead of growing without limit. A truncated trace
//!   is still a valid trace.
//!
//! Spans are recorded at close (begin timestamp captured first, one event
//! pushed when the span ends) and serialized as Chrome "X" complete events
//! — a single line carrying both begin (`ts`) and end (`ts + dur`), which
//! every viewer reconstructs into begin/end pairs. [`validate_jsonl`]
//! performs that reconstruction and checks the pairs balance (spans on one
//! thread row must nest or be disjoint, never partially overlap).

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Trace thread-row id of the thread that drives the join (task creation,
/// whole-join span).
pub const TID_MAIN: u32 = 0;

/// Trace thread-row id for server-side request lifecycle events
/// (admit/shed/batch flush), which are emitted by many connection threads
/// and carry no ordering guarantee (instants only).
pub const TID_SERVE: u32 = 2001;

/// Trace thread-row id of join worker `w`.
pub fn worker_tid(w: usize) -> u32 {
    1 + w as u32
}

/// Trace thread-row id for page-cache activity performed on behalf of
/// worker `w` (kept on separate rows so page reads do not distort the
/// nesting of task spans).
pub fn cache_tid(w: usize) -> u32 {
    1001 + w as u32
}

/// One recorded event. `dur_ns: Some(_)` makes it a span (serialized as a
/// Chrome "X" complete event), `None` an instant ("i").
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (shown on the span in viewers).
    pub name: &'static str,
    /// Category, e.g. `"join"`, `"storage"`, `"serve"`.
    pub cat: &'static str,
    /// Thread row this event belongs to.
    pub tid: u32,
    /// Begin time, nanoseconds since the sink's epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds; `None` for instants.
    pub dur_ns: Option<u64>,
    /// Numeric arguments attached to the event.
    pub args: Vec<(&'static str, u64)>,
}

/// How many events a single [`ThreadTracer`] batches locally before
/// retiring them to the sink.
const THREAD_BATCH: usize = 1024;

/// Shared trace collector: the epoch, the retired events, and the drop
/// counter. Create one per traced run, hand clones of the `Arc` to every
/// participating subsystem, then [`TraceSink::write_jsonl`] at the end.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    max_events: usize,
    events: Mutex<Vec<TraceEvent>>,
    names: Mutex<Vec<(u32, String)>>,
    dropped: AtomicU64,
}

impl TraceSink {
    /// A sink that retains at most `max_events` events; further events are
    /// dropped (and counted) rather than growing the buffer.
    pub fn new(max_events: usize) -> Arc<Self> {
        Arc::new(TraceSink {
            epoch: Instant::now(),
            max_events: max_events.max(1),
            events: Mutex::new(Vec::new()),
            names: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// Nanoseconds since this sink was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// A per-thread tracer recording onto thread row `tid`.
    pub fn tracer(self: &Arc<Self>, tid: u32) -> ThreadTracer {
        ThreadTracer {
            sink: Arc::clone(self),
            tid,
            buf: Vec::with_capacity(THREAD_BATCH.min(self.max_events)),
        }
    }

    /// Names a thread row (emitted as Chrome `thread_name` metadata so
    /// viewers label the row).
    pub fn set_thread_name(&self, tid: u32, name: impl Into<String>) {
        let mut names = self.names.lock().unwrap_or_else(|e| e.into_inner());
        let name = name.into();
        match names.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, n)) => *n = name,
            None => names.push((tid, name)),
        }
    }

    /// Records an instant event from any thread (short mutex push; use
    /// [`ThreadTracer`] on hot paths).
    pub fn instant(
        &self,
        tid: u32,
        name: &'static str,
        cat: &'static str,
        args: &[(&'static str, u64)],
    ) {
        let ts_ns = self.now_ns();
        self.push(TraceEvent {
            name,
            cat,
            tid,
            ts_ns,
            dur_ns: None,
            args: args.to_vec(),
        });
    }

    /// Records a span that began at `start_ns` (from [`TraceSink::now_ns`])
    /// and ends now, from any thread.
    pub fn span(
        &self,
        tid: u32,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        let end = self.now_ns();
        self.push(TraceEvent {
            name,
            cat,
            tid,
            ts_ns: start_ns,
            dur_ns: Some(end.saturating_sub(start_ns)),
            args: args.to_vec(),
        });
    }

    fn push(&self, ev: TraceEvent) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() < self.max_events {
            events.push(ev);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn push_batch(&self, batch: &mut Vec<TraceEvent>) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let room = self.max_events.saturating_sub(events.len());
        if batch.len() > room {
            self.dropped
                .fetch_add((batch.len() - room) as u64, Ordering::Relaxed);
            batch.truncate(room);
        }
        events.append(batch);
    }

    /// Events dropped because a buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently retained (retired buffers only; live
    /// [`ThreadTracer`] buffers are not counted until flushed).
    pub fn event_count(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Serializes the trace as JSONL, one Chrome trace event per line,
    /// sorted by begin timestamp. Returns the number of lines written.
    ///
    /// Perfetto ingests the file as-is; for `chrome://tracing` wrap the
    /// lines in a JSON array (see the README recipe).
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        let mut lines = 0usize;
        {
            let names = self.names.lock().unwrap_or_else(|e| e.into_inner());
            for (tid, name) in names.iter() {
                writeln!(
                    w,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                    escape(name)
                )?;
                lines += 1;
            }
        }
        let mut events = {
            let guard = self.events.lock().unwrap_or_else(|e| e.into_inner());
            guard.clone()
        };
        events.sort_by_key(|e| e.ts_ns);
        for ev in &events {
            let ts = ev.ts_ns as f64 / 1_000.0;
            write!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{ts:.3}",
                escape(ev.name),
                escape(ev.cat),
                if ev.dur_ns.is_some() { "X" } else { "i" }
            )?;
            if let Some(dur) = ev.dur_ns {
                write!(w, ",\"dur\":{:.3}", dur as f64 / 1_000.0)?;
            } else {
                // Thread-scoped instant.
                write!(w, ",\"s\":\"t\"")?;
            }
            write!(w, ",\"pid\":1,\"tid\":{}", ev.tid)?;
            write!(w, ",\"args\":{{")?;
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "\"{}\":{v}", escape(k))?;
            }
            writeln!(w, "}}}}")?;
            lines += 1;
        }
        Ok(lines)
    }

    /// Writes the JSONL trace to `path`. Returns the number of lines.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        let n = self.write_jsonl(&mut f)?;
        f.flush()?;
        Ok(n)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A per-thread event recorder: pushes are plain `Vec` appends (no locks,
/// no allocation once warm); the batch retires into the sink when full and
/// on drop.
#[derive(Debug)]
pub struct ThreadTracer {
    sink: Arc<TraceSink>,
    tid: u32,
    buf: Vec<TraceEvent>,
}

impl ThreadTracer {
    /// Nanoseconds since the sink's epoch (capture before work, pass to
    /// [`ThreadTracer::span`] after).
    pub fn now_ns(&self) -> u64 {
        self.sink.now_ns()
    }

    /// The thread row this tracer records onto.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Records an instant event.
    pub fn instant(&mut self, name: &'static str, cat: &'static str, args: &[(&'static str, u64)]) {
        let ts_ns = self.now_ns();
        self.push(TraceEvent {
            name,
            cat,
            tid: self.tid,
            ts_ns,
            dur_ns: None,
            args: args.to_vec(),
        });
    }

    /// Records a span that began at `start_ns` and ends now.
    pub fn span(
        &mut self,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        let end = self.now_ns();
        self.push(TraceEvent {
            name,
            cat,
            tid: self.tid,
            ts_ns: start_ns,
            dur_ns: Some(end.saturating_sub(start_ns)),
            args: args.to_vec(),
        });
    }

    fn push(&mut self, ev: TraceEvent) {
        self.buf.push(ev);
        if self.buf.len() >= THREAD_BATCH {
            self.flush();
        }
    }

    /// Retires the local batch into the sink.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.sink.push_batch(&mut self.buf);
            self.buf.clear();
        }
    }
}

impl Drop for ThreadTracer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// What [`validate_jsonl`] found in a well-formed trace.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total lines (all of which parsed).
    pub lines: usize,
    /// Span events ("X", or matched "B"/"E" pairs).
    pub spans: usize,
    /// Instant events ("i").
    pub instants: usize,
    /// Metadata events ("M").
    pub meta: usize,
}

/// Validates a JSONL trace: every line parses as a JSON object with the
/// required Chrome trace fields, and the begin/end pairs of spans balance
/// on every thread row (spans nest or are disjoint; a partial overlap or
/// an unmatched "B"/"E" is an error).
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    use crate::json::Value;

    let mut summary = TraceSummary::default();
    // (tid, begin_ns, end_ns) for X spans; per-tid open-count for B/E.
    let mut spans: Vec<(u64, u64, u64)> = Vec::new();
    let mut open: Vec<(u64, i64)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = crate::json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {n}: missing \"name\""))?;
        if name.is_empty() {
            return Err(format!("line {n}: empty \"name\""));
        }
        let ph = v
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {n}: missing \"ph\""))?;
        let tid = v
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("line {n}: missing numeric \"tid\""))? as u64;
        v.get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("line {n}: missing numeric \"pid\""))?;
        let ts_of = |v: &Value| -> Result<f64, String> {
            let ts = v
                .get("ts")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("line {n}: missing numeric \"ts\""))?;
            if !ts.is_finite() || ts < 0.0 {
                return Err(format!("line {n}: bad \"ts\" {ts}"));
            }
            Ok(ts)
        };
        match ph {
            "M" => summary.meta += 1,
            "i" | "I" => {
                ts_of(&v)?;
                summary.instants += 1;
            }
            "X" => {
                let ts = ts_of(&v)?;
                let dur = v
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("line {n}: span missing numeric \"dur\""))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("line {n}: bad \"dur\" {dur}"));
                }
                let begin = (ts * 1_000.0) as u64;
                let end = begin.saturating_add((dur * 1_000.0) as u64);
                spans.push((tid, begin, end));
                summary.spans += 1;
            }
            "B" | "E" => {
                ts_of(&v)?;
                let slot = match open.iter_mut().find(|(t, _)| *t == tid) {
                    Some(s) => s,
                    None => {
                        open.push((tid, 0));
                        open.last_mut().expect("just pushed")
                    }
                };
                if ph == "B" {
                    slot.1 += 1;
                    summary.spans += 1;
                } else {
                    slot.1 -= 1;
                    if slot.1 < 0 {
                        return Err(format!(
                            "line {n}: \"E\" without matching \"B\" on tid {tid}"
                        ));
                    }
                }
            }
            other => return Err(format!("line {n}: unknown phase {other:?}")),
        }
        summary.lines += 1;
    }

    for (tid, depth) in &open {
        if *depth != 0 {
            return Err(format!("tid {tid}: {depth} unclosed \"B\" span(s)"));
        }
    }

    // Begin/end pairs of complete spans must balance per thread row: when
    // the spans are replayed as (begin, end) events, every inner span must
    // close before its parent does — nesting or disjointness, never a
    // partial overlap.
    spans.sort_by(|a, b| {
        (a.0, a.1, std::cmp::Reverse(a.2)).cmp(&(b.0, b.1, std::cmp::Reverse(b.2)))
    });
    let mut stack: Vec<(u64, u64, u64)> = Vec::new();
    for &(tid, begin, end) in &spans {
        while let Some(&(ptid, _, pend)) = stack.last() {
            if ptid != tid || pend <= begin {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, pbegin, pend)) = stack.last() {
            if end > pend {
                return Err(format!(
                    "tid {tid}: span [{begin}, {end}]ns partially overlaps [{pbegin}, {pend}]ns — begin/end pairs do not balance"
                ));
            }
        }
        stack.push((tid, begin, end));
    }

    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_serializes_round_trip() {
        let sink = TraceSink::new(1 << 16);
        sink.set_thread_name(TID_MAIN, "main");
        let mut tr = sink.tracer(worker_tid(0));
        let t0 = tr.now_ns();
        tr.instant("steal", "join", &[("victim", 2)]);
        tr.span("task", "join", t0, &[("pages", 7), ("worker", 0)]);
        drop(tr);
        sink.instant(TID_SERVE, "shed", "serve", &[]);
        let start = sink.now_ns();
        sink.span(cache_tid(0), "page_read", "storage", start, &[("page", 3)]);
        assert_eq!(sink.event_count(), 4);
        assert_eq!(sink.dropped(), 0);

        let mut out = Vec::new();
        let lines = sink.write_jsonl(&mut out).unwrap();
        assert_eq!(lines, 5); // 1 metadata + 4 events
        let text = String::from_utf8(out).unwrap();
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary.lines, 5);
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 2);
        assert_eq!(summary.meta, 1);
    }

    #[test]
    fn sink_bounds_events_and_counts_drops() {
        let sink = TraceSink::new(8);
        for _ in 0..20 {
            sink.instant(TID_MAIN, "e", "t", &[]);
        }
        assert_eq!(sink.event_count(), 8);
        assert_eq!(sink.dropped(), 12);
        // Batched tracer drops are counted too.
        let mut tr = sink.tracer(worker_tid(0));
        tr.instant("e", "t", &[]);
        tr.flush();
        assert_eq!(sink.event_count(), 8);
        assert_eq!(sink.dropped(), 13);
    }

    #[test]
    fn validator_rejects_garbage_and_imbalance() {
        assert!(validate_jsonl("not json").is_err());
        assert!(
            validate_jsonl("{\"name\":\"x\"}").is_err(),
            "missing ph/tid"
        );
        // Unmatched explicit begin.
        let b = "{\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1}";
        assert!(validate_jsonl(b).is_err());
        // Partially-overlapping spans on one tid do not balance.
        let overlap = "\
{\"name\":\"a\",\"ph\":\"X\",\"ts\":0.0,\"dur\":10.0,\"pid\":1,\"tid\":1,\"args\":{}}\n\
{\"name\":\"b\",\"ph\":\"X\",\"ts\":5.0,\"dur\":10.0,\"pid\":1,\"tid\":1,\"args\":{}}\n";
        assert!(validate_jsonl(overlap).is_err());
        // Same intervals on different tids are fine.
        let two_tids = overlap.replacen("\"tid\":1", "\"tid\":2", 1);
        assert!(validate_jsonl(&two_tids).is_ok());
        // Nested spans balance; matched B/E balance.
        let nested = "\
{\"name\":\"outer\",\"ph\":\"X\",\"ts\":0.0,\"dur\":10.0,\"pid\":1,\"tid\":1,\"args\":{}}\n\
{\"name\":\"inner\",\"ph\":\"X\",\"ts\":2.0,\"dur\":3.0,\"pid\":1,\"tid\":1,\"args\":{}}\n\
{\"name\":\"p\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":7}\n\
{\"name\":\"p\",\"ph\":\"E\",\"ts\":2,\"pid\":1,\"tid\":7}\n";
        let s = validate_jsonl(nested).unwrap();
        assert_eq!(s.spans, 3);
    }

    #[test]
    fn escapes_hostile_names() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
