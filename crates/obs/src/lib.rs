//! Observability primitives for the parallel spatial-join stack.
//!
//! Two halves, both `std`-only and allocation-light:
//!
//! * [`metrics`] — lock-free counters, gauges, and the power-of-two latency
//!   [`Histogram`] (previously private to `psj-serve`, now the one histogram
//!   type for the whole workspace), collected in a named [`Registry`] that
//!   renders the Prometheus text exposition format.
//! * [`trace`] — a per-thread span/event recorder with nanosecond
//!   timestamps and bounded buffers, drained into a JSONL trace file that
//!   `chrome://tracing` and Perfetto can load. Workers record into private
//!   buffers (no locks, no allocation after warm-up); cross-thread event
//!   streams (cache fills, server admission) go through a short mutex push.
//!
//! The design constraint throughout: when tracing is disabled the cost is a
//! single `Option` check on cold paths only, and metrics are relaxed atomic
//! increments — cheap enough to stay on in production, which is the point.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry, BUCKETS};
pub use trace::{validate_jsonl, ThreadTracer, TraceEvent, TraceSink, TraceSummary};
