//! Latency and load telemetry: lock-free counters plus a fixed-bucket
//! latency histogram with percentile estimation.
//!
//! Every counter is a relaxed atomic — recording a completed request is a
//! handful of uncontended `fetch_add`s, cheap enough to sit on the hot
//! path of every response. The histogram uses logarithmic (power-of-two)
//! buckets over microseconds, so percentiles carry ~±50% resolution across
//! nine orders of magnitude with 40 fixed buckets and zero allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` microseconds, the last bucket everything above.
pub const BUCKETS: usize = 40;

/// A fixed-bucket, power-of-two latency histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(micros: u64) -> usize {
        // floor(log2(max(micros, 1))), clamped into range.
        (63 - (micros | 1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q <= 1`) in milliseconds, estimated as the
    /// geometric midpoint of the bucket holding the rank; 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i covers [2^i, 2^(i+1)) µs; report its geometric
                // midpoint, in ms.
                let lo = (1u64 << i) as f64;
                return lo * std::f64::consts::SQRT_2 / 1_000.0;
            }
        }
        unreachable!("rank <= total")
    }
}

/// The server's counters; one instance shared by all threads.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Latency of completed requests (admission to reply).
    pub latency: Histogram,
    /// Requests answered successfully.
    pub completed: AtomicU64,
    /// Requests shed by admission control.
    pub shed: AtomicU64,
    /// Requests that missed their deadline.
    pub timeouts: AtomicU64,
    /// Malformed frames / payloads.
    pub proto_errors: AtomicU64,
    /// Query batches executed.
    pub batches: AtomicU64,
    /// Queries carried inside those batches.
    pub batched_queries: AtomicU64,
    /// Requests answered with a corrupt-storage error.
    pub storage_corrupt: AtomicU64,
    /// Requests answered with an unavailable-storage error.
    pub storage_unavailable: AtomicU64,
}

impl Telemetry {
    /// A zeroed telemetry block.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Records a successful reply and its latency.
    pub fn complete(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records a deadline miss (also an observation: the client waited).
    pub fn timeout(&self, latency: Duration) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records a storage-error reply (`corrupt` selects which counter);
    /// the client waited for it, so it is also a latency observation.
    pub fn storage(&self, latency: Duration, corrupt: bool) {
        if corrupt {
            self.storage_corrupt.fetch_add(1, Ordering::Relaxed);
        } else {
            self.storage_unavailable.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
    }

    #[test]
    fn quantiles_are_ordered_and_bucket_accurate() {
        let h = Histogram::new();
        // 90 fast requests (~100 µs), 10 slow (~50 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50));
        }
        assert_eq!(h.count(), 100);
        let (p50, p95, p99) = (h.quantile_ms(0.5), h.quantile_ms(0.95), h.quantile_ms(0.99));
        assert!(p50 < 1.0, "p50 {p50} should sit in the fast band");
        assert!(p95 > 10.0, "p95 {p95} should sit in the slow band");
        assert!(p50 <= p95 && p95 <= p99, "{p50} <= {p95} <= {p99}");
        // Bucket resolution: p50 within a factor ~2 of the true 0.1 ms.
        assert!(p50 > 0.05 && p50 < 0.3, "p50 {p50}");
    }

    #[test]
    fn extreme_latencies_clamp_into_range() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1 << 30));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(1.0) > 0.0);
    }
}
