//! Latency and load telemetry, built on the [`psj_obs`] metrics registry.
//!
//! Every counter is a relaxed atomic — recording a completed request is a
//! handful of uncontended increments, cheap enough to sit on the hot path
//! of every response. The latency histogram is the shared
//! [`psj_obs::Histogram`]: logarithmic (power-of-two) buckets over
//! microseconds, so percentiles carry ~±50% resolution across nine orders
//! of magnitude with [`BUCKETS`] fixed buckets and zero allocation.
//!
//! All counters and the histogram live in one [`Registry`], so the same
//! values that feed [`crate::protocol::ServerStats`] render as
//! Prometheus text for the `Metrics` request — the two reports cannot
//! drift apart. Point-in-time values (queue depth, cache residency) are
//! published as gauges refreshed at scrape time.

pub use psj_obs::{Histogram, BUCKETS};

use psj_obs::{Counter, Gauge, Registry};
use std::sync::Arc;
use std::time::Duration;

/// The server's counters; one instance shared by all threads.
#[derive(Debug)]
pub struct Telemetry {
    registry: Registry,
    /// Latency of completed requests (admission to reply).
    pub latency: Arc<Histogram>,
    /// Requests answered successfully.
    pub completed: Arc<Counter>,
    /// Requests shed by admission control.
    pub shed: Arc<Counter>,
    /// Requests that missed their deadline.
    pub timeouts: Arc<Counter>,
    /// Malformed frames / payloads.
    pub proto_errors: Arc<Counter>,
    /// Query batches executed.
    pub batches: Arc<Counter>,
    /// Queries carried inside those batches.
    pub batched_queries: Arc<Counter>,
    /// Requests answered with a corrupt-storage error.
    pub storage_corrupt: Arc<Counter>,
    /// Requests answered with an unavailable-storage error.
    pub storage_unavailable: Arc<Counter>,
    /// Worker panics caught and recovered (the pool keeps serving).
    pub worker_panics: Arc<Counter>,
    /// Phase-1 tasks created by join requests.
    pub join_tasks: Arc<Counter>,
    /// Successful steals inside join requests.
    pub join_steals: Arc<Counter>,
    // Point-in-time values, refreshed by `render_prometheus`.
    queue_depth: Arc<Gauge>,
    cache_requests: Arc<Gauge>,
    cache_hits: Arc<Gauge>,
    cache_misses: Arc<Gauge>,
    cache_evictions: Arc<Gauge>,
    resident_pages: Arc<Gauge>,
    capacity_pages: Arc<Gauge>,
    corrupt_pages: Arc<Gauge>,
    quarantined_pages: Arc<Gauge>,
    page_retries: Arc<Gauge>,
    // Monotonic cache counters mirrored from the shared cache's own
    // atomics at scrape time (delta-add in `render_prometheus`), exposed
    // as `counter` so rate()/increase() work on them — they only ever
    // grow. Names kept from the earlier gauge exposition.
    cache_opt_hits: Arc<Counter>,
    cache_opt_retries: Arc<Counter>,
    cache_opt_fallbacks: Arc<Counter>,
    cache_guard_hits: Arc<Counter>,
    cache_opt_coupled: Arc<Counter>,
    cache_opt_renewed: Arc<Counter>,
}

impl Default for Telemetry {
    fn default() -> Self {
        let r = Registry::new();
        Telemetry {
            latency: r.histogram(
                "psj_request_latency_seconds",
                "Request latency, admission to reply",
            ),
            completed: r.counter(
                "psj_requests_completed_total",
                "Requests answered successfully",
            ),
            shed: r.counter(
                "psj_requests_shed_total",
                "Requests shed by admission control",
            ),
            timeouts: r.counter(
                "psj_requests_timeout_total",
                "Requests that missed their deadline",
            ),
            proto_errors: r.counter("psj_proto_errors_total", "Malformed frames / payloads"),
            batches: r.counter("psj_batches_total", "Query batches executed"),
            batched_queries: r.counter(
                "psj_batched_queries_total",
                "Queries carried inside batches",
            ),
            storage_corrupt: r.counter("psj_storage_corrupt_total", "Corrupt-storage replies"),
            storage_unavailable: r.counter(
                "psj_storage_unavailable_total",
                "Unavailable-storage replies",
            ),
            worker_panics: r.counter(
                "psj_worker_panics_total",
                "Worker panics caught and recovered",
            ),
            join_tasks: r.counter("psj_join_tasks_total", "Phase-1 join tasks created"),
            join_steals: r.counter("psj_join_steals_total", "Successful steals inside joins"),
            queue_depth: r.gauge("psj_queue_depth", "Admitted-but-unanswered requests"),
            cache_requests: r.gauge("psj_cache_requests", "Page-cache requests since start"),
            cache_hits: r.gauge("psj_cache_hits", "Page-cache hits since start"),
            cache_misses: r.gauge("psj_cache_misses", "Page-cache misses since start"),
            cache_evictions: r.gauge("psj_cache_evictions", "Page-cache evictions since start"),
            resident_pages: r.gauge("psj_cache_resident_pages", "Pages resident right now"),
            capacity_pages: r.gauge("psj_cache_capacity_pages", "Page-cache capacity"),
            corrupt_pages: r.gauge(
                "psj_corrupt_pages_detected",
                "Distinct corrupt pages detected",
            ),
            quarantined_pages: r.gauge("psj_quarantined_pages", "Pages currently quarantined"),
            page_retries: r.gauge("psj_page_retries", "Page fetches retried by the cache"),
            cache_opt_hits: r.counter(
                "psj_cache_opt_hits",
                "Cache hits served without taking a shard mutex",
            ),
            cache_opt_retries: r.counter(
                "psj_cache_opt_retries",
                "Optimistic-read validation failures that were retried",
            ),
            cache_opt_fallbacks: r.counter(
                "psj_cache_opt_fallbacks",
                "Optimistic reads that fell back to the shard mutex",
            ),
            cache_guard_hits: r.counter(
                "psj_cache_guard_hits",
                "Borrowing guard reads served with neither shard mutex nor Arc clone",
            ),
            cache_opt_coupled: r.counter(
                "psj_cache_opt_coupled",
                "Guard reads whose parent coupling link validated unchanged",
            ),
            cache_opt_renewed: r.counter(
                "psj_cache_opt_renewed",
                "Guard couplings renewed in place after a parent-shard version bump",
            ),
            registry: r,
        }
    }
}

/// Point-in-time values the scrape publishes as gauges; the caller reads
/// them from the cache snapshot and admission counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaugeSnapshot {
    /// Admitted-but-unanswered requests.
    pub queue_depth: u64,
    /// Page-cache requests since start.
    pub cache_requests: u64,
    /// Page-cache hits since start.
    pub cache_hits: u64,
    /// Page-cache misses since start.
    pub cache_misses: u64,
    /// Page-cache evictions since start.
    pub cache_evictions: u64,
    /// Pages resident at scrape time.
    pub resident_pages: u64,
    /// Page-cache capacity.
    pub capacity_pages: u64,
    /// Distinct corrupt pages detected since start.
    pub corrupt_pages: u64,
    /// Pages currently quarantined.
    pub quarantined_pages: u64,
    /// Page fetches retried by the cache since start.
    pub page_retries: u64,
    /// Cache hits served by the optimistic (seqlock) read path, i.e.
    /// without taking any shard mutex.
    pub cache_opt_hits: u64,
    /// Optimistic-read validation failures that were retried.
    pub cache_opt_retries: u64,
    /// Optimistic reads that exhausted their retries and fell back to the
    /// pessimistic mutex path.
    pub cache_opt_fallbacks: u64,
    /// Borrowing guard reads (no shard mutex, no Arc clone).
    pub cache_guard_hits: u64,
    /// Guard reads whose parent coupling link validated unchanged.
    pub cache_opt_coupled: u64,
    /// Guard couplings renewed in place after a parent-shard version bump.
    pub cache_opt_renewed: u64,
}

impl Telemetry {
    /// A zeroed telemetry block.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Records a successful reply and its latency.
    pub fn complete(&self, latency: Duration) {
        self.completed.inc();
        self.latency.record(latency);
    }

    /// Records a deadline miss (also an observation: the client waited).
    pub fn timeout(&self, latency: Duration) {
        self.timeouts.inc();
        self.latency.record(latency);
    }

    /// Records a storage-error reply (`corrupt` selects which counter);
    /// the client waited for it, so it is also a latency observation.
    pub fn storage(&self, latency: Duration, corrupt: bool) {
        if corrupt {
            self.storage_corrupt.inc();
        } else {
            self.storage_unavailable.inc();
        }
        self.latency.record(latency);
    }

    /// Refreshes the point-in-time gauges and renders every metric as
    /// Prometheus text exposition.
    pub fn render_prometheus(&self, snap: &GaugeSnapshot) -> String {
        self.queue_depth.set(snap.queue_depth);
        self.cache_requests.set(snap.cache_requests);
        self.cache_hits.set(snap.cache_hits);
        self.cache_misses.set(snap.cache_misses);
        self.cache_evictions.set(snap.cache_evictions);
        self.resident_pages.set(snap.resident_pages);
        self.capacity_pages.set(snap.capacity_pages);
        self.corrupt_pages.set(snap.corrupt_pages);
        self.quarantined_pages.set(snap.quarantined_pages);
        self.page_retries.set(snap.page_retries);
        // The cache's own atomics are the source of truth for these
        // monotonic counts; advance the exported counters by the delta so
        // the exposition stays a counter (never decreases, never resets
        // while the process lives).
        let sync = |c: &Counter, v: u64| c.add(v.saturating_sub(c.get()));
        sync(&self.cache_opt_hits, snap.cache_opt_hits);
        sync(&self.cache_opt_retries, snap.cache_opt_retries);
        sync(&self.cache_opt_fallbacks, snap.cache_opt_fallbacks);
        sync(&self.cache_guard_hits, snap.cache_guard_hits);
        sync(&self.cache_opt_coupled, snap.cache_opt_coupled);
        sync(&self.cache_opt_renewed, snap.cache_opt_renewed);
        self.registry.render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
    }

    #[test]
    fn quantiles_are_ordered_and_bucket_accurate() {
        let h = Histogram::new();
        // 90 fast requests (~100 µs), 10 slow (~50 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50));
        }
        assert_eq!(h.count(), 100);
        let (p50, p95, p99) = (h.quantile_ms(0.5), h.quantile_ms(0.95), h.quantile_ms(0.99));
        assert!(p50 < 1.0, "p50 {p50} should sit in the fast band");
        assert!(p95 > 10.0, "p95 {p95} should sit in the slow band");
        assert!(p50 <= p95 && p95 <= p99, "{p50} <= {p95} <= {p99}");
        // Bucket resolution: p50 within a factor ~2 of the true 0.1 ms.
        assert!(p50 > 0.05 && p50 < 0.3, "p50 {p50}");
    }

    #[test]
    fn extreme_latencies_clamp_into_range() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1 << 30));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(1.0) > 0.0);
    }

    #[test]
    fn prometheus_text_carries_counters_and_gauges() {
        let t = Telemetry::new();
        t.complete(Duration::from_micros(150));
        t.complete(Duration::from_micros(150));
        t.timeout(Duration::from_millis(80));
        t.storage(Duration::from_millis(1), true);
        t.worker_panics.inc();
        let text = t.render_prometheus(&GaugeSnapshot {
            queue_depth: 3,
            resident_pages: 17,
            ..Default::default()
        });
        assert!(text.contains("psj_requests_completed_total 2"), "{text}");
        assert!(text.contains("psj_requests_timeout_total 1"), "{text}");
        assert!(text.contains("psj_storage_corrupt_total 1"), "{text}");
        assert!(text.contains("psj_worker_panics_total 1"), "{text}");
        assert!(text.contains("psj_queue_depth 3"), "{text}");
        assert!(text.contains("psj_cache_resident_pages 17"), "{text}");
        assert!(
            text.contains("psj_request_latency_seconds_count 4"),
            "{text}"
        );
        // Scrape twice: gauges are refreshed, counters keep accumulating.
        let text2 = t.render_prometheus(&GaugeSnapshot::default());
        assert!(text2.contains("psj_queue_depth 0"), "{text2}");
        assert!(text2.contains("psj_requests_completed_total 2"), "{text2}");
    }

    #[test]
    fn optimistic_cache_metrics_are_exposed_as_counters() {
        // Regression: these are monotonic counts (the cache's atomics only
        // grow) but were exported with `# TYPE gauge`, which breaks
        // rate()/increase() in Prometheus. Same names, counter type.
        let t = Telemetry::new();
        let text = t.render_prometheus(&GaugeSnapshot {
            cache_opt_hits: 41,
            cache_opt_retries: 7,
            cache_opt_fallbacks: 2,
            cache_guard_hits: 19,
            cache_opt_coupled: 11,
            cache_opt_renewed: 3,
            ..Default::default()
        });
        for name in [
            "psj_cache_opt_hits",
            "psj_cache_opt_retries",
            "psj_cache_opt_fallbacks",
            "psj_cache_guard_hits",
            "psj_cache_opt_coupled",
            "psj_cache_opt_renewed",
        ] {
            assert!(
                text.contains(&format!("# TYPE {name} counter")),
                "{name} must be a counter:\n{text}"
            );
            assert!(
                !text.contains(&format!("# TYPE {name} gauge")),
                "{name} must not be a gauge:\n{text}"
            );
        }
        assert!(text.contains("psj_cache_opt_hits 41"), "{text}");
        assert!(text.contains("psj_cache_guard_hits 19"), "{text}");
        // A later scrape with larger cache counts advances the counters by
        // the delta — values track the cache exactly, monotonically.
        let text2 = t.render_prometheus(&GaugeSnapshot {
            cache_opt_hits: 55,
            cache_opt_retries: 7,
            cache_opt_fallbacks: 4,
            cache_guard_hits: 31,
            cache_opt_coupled: 12,
            cache_opt_renewed: 3,
            ..Default::default()
        });
        assert!(text2.contains("psj_cache_opt_hits 55"), "{text2}");
        assert!(text2.contains("psj_cache_opt_fallbacks 4"), "{text2}");
        assert!(text2.contains("psj_cache_guard_hits 31"), "{text2}");
        assert!(text2.contains("psj_cache_opt_coupled 12"), "{text2}");
    }
}
