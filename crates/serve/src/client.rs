//! A blocking client for the psj-serve protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a
//! time (the protocol has no request ids, so responses are matched by
//! order). Use one client per thread for concurrency — the server
//! multiplexes connections internally.

use crate::protocol::{
    read_frame, write_frame, ProtoError, Request, Response, ServerStats, TreeInfo,
    MAX_RESPONSE_FRAME,
};
use psj_geom::Rect;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connection to a psj-serve server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// An unexpected (but well-formed) response, e.g. `Overloaded` where
/// entries were expected. Carries the actual response (boxed — `Response`
/// is large and errors are rare) so callers can distinguish shedding from
/// deadline misses.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with something other than the expected payload.
    Unexpected(Box<Response>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Io(e.into())
    }
}

impl Client {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connects with a connect/read timeout (for tests and load drivers
    /// that must not hang on a stuck server).
    pub fn connect_timeout(addr: &std::net::SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends a request and returns the raw response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        match read_frame(&mut self.reader, MAX_RESPONSE_FRAME)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )),
        }
    }

    /// Window query: oids of tree entries intersecting `rect`.
    /// `deadline_ms = 0` means no deadline.
    pub fn window(
        &mut self,
        tree: u16,
        rect: Rect,
        deadline_ms: u32,
    ) -> Result<Vec<u64>, ClientError> {
        match self.request(&Request::Window {
            tree,
            rect,
            deadline_ms,
        })? {
            Response::Entries(oids) => Ok(oids),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// k-nearest-neighbor query: `(distance, oid)` ascending.
    pub fn nearest(
        &mut self,
        tree: u16,
        x: f64,
        y: f64,
        k: u32,
        deadline_ms: u32,
    ) -> Result<Vec<(f64, u64)>, ClientError> {
        match self.request(&Request::Nearest {
            tree,
            x,
            y,
            k,
            deadline_ms,
        })? {
            Response::Neighbors(nn) => Ok(nn),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Spatial join of two loaded trees.
    pub fn join(
        &mut self,
        tree_a: u16,
        tree_b: u16,
        refine: bool,
        deadline_ms: u32,
    ) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.request(&Request::Join {
            tree_a,
            tree_b,
            refine,
            deadline_ms,
        })? {
            Response::Pairs(pairs) => Ok(pairs),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Server statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Prometheus-text metrics exposition (same counters as
    /// [`Client::stats`]).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Loaded-tree descriptions.
    pub fn info(&mut self) -> Result<Vec<TreeInfo>, ClientError> {
        match self.request(&Request::Info)? {
            Response::Info(trees) => Ok(trees),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Asks the server to drain and exit; returns once acked.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }
}
