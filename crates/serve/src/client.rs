//! A blocking client for the psj-serve protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a
//! time (the protocol has no request ids, so responses are matched by
//! order). Use one client per thread for concurrency — the server
//! multiplexes connections internally.
//!
//! A dropped connection is a hard error by default. Opt into transparent
//! recovery with [`Client::set_reconnect`]: on a transport failure the
//! client redials the peer under a bounded exponential-backoff
//! [`BackoffPolicy`] and replays the request. Every request in the
//! protocol is an idempotent read (or an idempotent shutdown), so a
//! replay can at worst repeat work, never corrupt state.

use crate::protocol::{
    read_frame, write_frame, ProtoError, Request, Response, ServerStats, TreeInfo,
    MAX_RESPONSE_FRAME,
};
use psj_geom::Rect;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Bounded exponential backoff with deterministic jitter.
///
/// `delay(attempt)` grows as `base * 2^attempt`, capped at `cap`, then
/// scaled by a jitter factor in `[0.5, 1.0)` derived by hashing
/// `(jitter_seed, attempt)` — deterministic for reproducible tests, yet
/// de-synchronized across instances with distinct seeds so a thundering
/// herd of reconnecting clients spreads out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Retry attempts after the initial failure (0 disables retrying).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl BackoffPolicy {
    /// The jittered delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        let h =
            splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F));
        // 53 mantissa bits of hash → uniform in [0, 1), mapped to [0.5, 1.0).
        let jitter = 0.5 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        exp.mul_f64(jitter)
    }
}

/// A connection to a psj-serve server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Peer address remembered for redials (`None` when connected through
    /// an unresolvable `ToSocketAddrs` and the peer address is unknown).
    peer: Option<SocketAddr>,
    /// Read timeout re-applied to redialed sockets (and used to bound the
    /// redial's connect).
    timeout: Option<Duration>,
    reconnect: Option<BackoffPolicy>,
    reconnects: u64,
}

/// An unexpected (but well-formed) response, e.g. `Overloaded` where
/// entries were expected. Carries the actual response (boxed — `Response`
/// is large and errors are rare) so callers can distinguish shedding from
/// deadline misses.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with something other than the expected payload.
    Unexpected(Box<Response>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Io(e.into())
    }
}

impl Client {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr().ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            peer,
            timeout: None,
            reconnect: None,
            reconnects: 0,
        })
    }

    /// Connects with a connect/read timeout (for tests and load drivers
    /// that must not hang on a stuck server).
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            peer: Some(*addr),
            timeout: Some(timeout),
            reconnects: 0,
            reconnect: None,
        })
    }

    /// Enables transparent reconnect-with-backoff on transport failures
    /// (builder form).
    pub fn with_reconnect(mut self, policy: BackoffPolicy) -> Client {
        self.reconnect = Some(policy);
        self
    }

    /// Enables (or with `None` disables) transparent reconnect.
    pub fn set_reconnect(&mut self, policy: Option<BackoffPolicy>) {
        self.reconnect = policy;
    }

    /// How many times this client successfully redialed the server.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sets the socket read timeout (also remembered for redials).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        self.writer.get_ref().set_read_timeout(timeout)
    }

    fn try_request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        match read_frame(&mut self.reader, MAX_RESPONSE_FRAME)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )),
        }
    }

    fn redial(&mut self, peer: &SocketAddr) -> io::Result<()> {
        let stream = match self.timeout {
            Some(t) => TcpStream::connect_timeout(peer, t)?,
            None => TcpStream::connect(peer)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        self.reader = reader;
        self.writer = BufWriter::new(stream);
        Ok(())
    }

    /// Sends a request and returns the raw response.
    ///
    /// With a reconnect policy set, a transport failure triggers up to
    /// `max_retries` redial-and-replay rounds under jittered exponential
    /// backoff; the last error is returned when the budget is exhausted.
    /// Protocol decode errors (`InvalidData`) are not retried — a peer
    /// speaking garbage will not stop doing so on a fresh connection.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        let first = match self.try_request(req) {
            Ok(r) => return Ok(r),
            Err(e) => e,
        };
        let (Some(policy), Some(peer)) = (self.reconnect, self.peer) else {
            return Err(first);
        };
        if first.kind() == io::ErrorKind::InvalidData {
            return Err(first);
        }
        let mut last = first;
        for attempt in 0..policy.max_retries {
            std::thread::sleep(policy.delay(attempt));
            match self.redial(&peer) {
                Ok(()) => {
                    self.reconnects += 1;
                    match self.try_request(req) {
                        Ok(r) => return Ok(r),
                        Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
                        Err(e) => last = e,
                    }
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Window query: oids of tree entries intersecting `rect`.
    /// `deadline_ms = 0` means no deadline.
    pub fn window(
        &mut self,
        tree: u16,
        rect: Rect,
        deadline_ms: u32,
    ) -> Result<Vec<u64>, ClientError> {
        match self.request(&Request::Window {
            tree,
            rect,
            deadline_ms,
        })? {
            Response::Entries(oids) => Ok(oids),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// k-nearest-neighbor query: `(distance, oid)` ascending.
    pub fn nearest(
        &mut self,
        tree: u16,
        x: f64,
        y: f64,
        k: u32,
        deadline_ms: u32,
    ) -> Result<Vec<(f64, u64)>, ClientError> {
        match self.request(&Request::Nearest {
            tree,
            x,
            y,
            k,
            deadline_ms,
        })? {
            Response::Neighbors(nn) => Ok(nn),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Spatial join of two loaded trees.
    pub fn join(
        &mut self,
        tree_a: u16,
        tree_b: u16,
        refine: bool,
        deadline_ms: u32,
    ) -> Result<Vec<(u64, u64)>, ClientError> {
        match self.request(&Request::Join {
            tree_a,
            tree_b,
            refine,
            deadline_ms,
            owner: None,
        })? {
            Response::Pairs(pairs) => Ok(pairs),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Server statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Prometheus-text metrics exposition (same counters as
    /// [`Client::stats`]).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Loaded-tree descriptions.
    pub fn info(&mut self) -> Result<Vec<TreeInfo>, ClientError> {
        Ok(self.info_tagged()?.1)
    }

    /// Loaded-tree descriptions plus the responder's shard id — routers
    /// use the id to verify a probed address really is the shard the
    /// topology says it is.
    pub fn info_tagged(&mut self) -> Result<(u16, Vec<TreeInfo>), ClientError> {
        match self.request(&Request::Info)? {
            Response::Info { shard, trees } => Ok((shard, trees)),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Asks the server to drain and exit; returns once acked.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A protocol-speaking listener that serves exactly one request per
    /// accepted connection, then drops it — the shape of a server bounced
    /// mid-session.
    fn one_shot_server(conns: usize) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for _ in 0..conns {
                let (mut s, _) = listener.accept().unwrap();
                if let Ok(Some(payload)) = read_frame(&mut s, 64 << 10) {
                    if Request::decode(&payload).is_ok() {
                        let resp = Response::Stats(ServerStats::default());
                        let _ = write_frame(&mut s, &resp.encode_or_error());
                    }
                }
                // Connection dropped here.
            }
        });
        addr
    }

    #[test]
    fn backoff_delays_are_bounded_and_deterministic() {
        let p = BackoffPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter_seed: 42,
        };
        for attempt in 0..8 {
            let d = p.delay(attempt);
            assert_eq!(d, p.delay(attempt), "deterministic");
            assert!(d >= Duration::from_millis(5), "never below base/2: {d:?}");
            assert!(d < Duration::from_millis(100), "never at/above cap: {d:?}");
        }
        // Different seeds de-synchronize.
        let q = BackoffPolicy {
            jitter_seed: 43,
            ..p
        };
        assert!((0..8).any(|a| p.delay(a) != q.delay(a)));
    }

    #[test]
    fn reconnect_survives_a_dropped_connection() {
        let addr = one_shot_server(3);
        let mut c = Client::connect(addr)
            .unwrap()
            .with_reconnect(BackoffPolicy {
                max_retries: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(5),
                jitter_seed: 7,
            });
        c.stats().unwrap();
        // The server dropped the connection after the reply; the next
        // request hits EOF and must transparently redial.
        c.stats().unwrap();
        assert_eq!(c.reconnects(), 1);
        c.stats().unwrap();
        assert_eq!(c.reconnects(), 2);
    }

    #[test]
    fn without_policy_a_drop_stays_a_hard_error() {
        let addr = one_shot_server(1);
        let mut c = Client::connect(addr).unwrap();
        c.stats().unwrap();
        match c.stats() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected hard transport error, got {other:?}"),
        }
        assert_eq!(c.reconnects(), 0);
    }

    #[test]
    fn reconnect_budget_is_bounded() {
        // Server accepts one connection total; after it drops, redials
        // reach a dead listener... bind-then-drop leaves the port closed.
        let addr = one_shot_server(1);
        let mut c = Client::connect(addr)
            .unwrap()
            .with_reconnect(BackoffPolicy {
                max_retries: 2,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                jitter_seed: 1,
            });
        c.stats().unwrap();
        let start = std::time::Instant::now();
        assert!(c.stats().is_err(), "budget exhausted stays an error");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "bounded, not an infinite retry loop"
        );
    }
}
