//! The server: acceptor, per-connection threads, a batching stage, and a
//! work-stealing worker pool sharing one page cache.
//!
//! ```text
//! acceptor ──► connection threads ──► batcher ──► injector ──► workers
//!                    ▲                (window/nearest,            │
//!                    │                 grouped per tree)          │
//!                    └──────────────── mpsc reply ◄───────────────┘
//! ```
//!
//! * **Admission control** — a request is *admitted* by incrementing the
//!   `queued` counter; if that pushes past `queue_bound` (or the server is
//!   draining) it is immediately un-admitted and answered
//!   [`Response::Overloaded`]. `queued` counts admitted-but-unanswered
//!   requests, so the bound covers the batcher, the injector, and
//!   in-flight execution alike.
//! * **Batching** — window and nearest queries landing within
//!   `batch_window` of the oldest pending query are grouped per (tree,
//!   kind) and executed together; a group reaching `max_batch` flushes
//!   immediately. `batch_window == 0` disables the stage (every query is a
//!   batch of one, dispatched straight to the injector).
//! * **Deadlines** — `deadline_ms` is converted to an absolute instant at
//!   arrival; executors check it cooperatively and expired requests get
//!   [`Response::DeadlineExceeded`] with partial work discarded.
//! * **Shutdown** — admission closes first, then the drain loop flushes
//!   the batcher until `queued` reaches zero, then workers and the
//!   acceptor are halted and joined. Connection threads notice the halt
//!   flag at their next read timeout.

use crate::exec::{self, Outcome, TreeSet, WindowQuery};
use crate::protocol::{
    read_frame, write_frame, Request, Response, ServerStats, StorageErrorKind, TreeInfo,
    MAX_REQUEST_FRAME,
};
use crate::telemetry::{GaugeSnapshot, Telemetry};
use psj_buffer::{Policy, SharedPageCache};
use psj_core::deque::{Injector, Steal, Worker};
use psj_core::StealPolicy;
use psj_geom::Point;
use psj_obs::trace::TID_SERVE;
use psj_obs::TraceSink;
use psj_rtree::{Node, PagedTree};
use psj_store::{FaultPlan, PageError, RetryPolicy};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// A worker that panicked while holding (or racing for) one of the server's
// locks must not wedge every later request and the shutdown drain — the
// protected state (batch maps, join-handle lists, condvar companions) stays
// structurally valid across a panic, so `lock_clean` recovers the guard and
// the panic is surfaced through the `worker_panics` counter instead.
use psj_store::lock_clean;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Query worker threads (each also indexes per-worker cache stats).
    pub workers: usize,
    /// Admission bound: maximum admitted-but-unanswered requests.
    pub queue_bound: usize,
    /// Batching window measured from the oldest pending query; zero
    /// disables batching.
    pub batch_window: Duration,
    /// A (tree, kind) group reaching this size flushes immediately.
    pub max_batch: usize,
    /// Shared page-cache capacity, in decoded nodes.
    pub cache_pages: usize,
    /// Page-cache lock shards.
    pub cache_shards: usize,
    /// Threads per join request.
    pub join_threads: usize,
    /// Target estimated candidates per join morsel (`0` = auto-sized).
    pub join_morsel_candidates: u64,
    /// Victim selection when an idle join worker reassigns a morsel.
    pub join_steal: StealPolicy,
    /// Seed of the seeded join steal policy (ignored by the others).
    pub join_steal_seed: u64,
    /// Join engine answering join requests: the R-tree traversal, the
    /// in-memory grid partition, or a per-request automatic choice.
    pub join_engine: psj_core::JoinEngine,
    /// Socket read timeout; also the cadence at which idle connection
    /// threads re-check the halt flag.
    pub read_timeout: Duration,
    /// Injected fault plan applied to query-cache fills (chaos testing;
    /// joins are unaffected, see [`exec::join`]).
    pub fault: Option<Arc<FaultPlan>>,
    /// Retry policy for failed page-cache fills.
    pub retry: RetryPolicy,
    /// Structured-trace sink: when set, admissions, sheds, and batch
    /// flushes emit instants on the server's trace row and the query
    /// cache emits page events. `None` (the default) costs one pointer
    /// check per admission.
    pub trace: Option<Arc<TraceSink>>,
    /// This server's shard id, echoed in [`Response::Info`] so cluster
    /// routers can verify a dialed address is the shard their topology
    /// says it is. Standalone servers keep the default 0.
    pub shard_id: u16,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_bound: 256,
            batch_window: Duration::from_millis(2),
            max_batch: 32,
            cache_pages: 4096,
            cache_shards: 16,
            join_threads: 4,
            join_morsel_candidates: 0,
            join_steal: StealPolicy::Busiest,
            join_steal_seed: 0,
            join_engine: psj_core::JoinEngine::RTree,
            read_timeout: Duration::from_millis(250),
            fault: None,
            retry: RetryPolicy::default(),
            trace: None,
            shard_id: 0,
        }
    }
}

/// Reply routing for one admitted request.
struct ReqCtx {
    arrival: Instant,
    reply: mpsc::Sender<Response>,
}

struct NearestQuery {
    point: Point,
    k: usize,
    deadline: Option<Instant>,
}

enum WorkItem {
    Windows {
        tree: u16,
        members: Vec<(WindowQuery, ReqCtx)>,
    },
    Nearests {
        tree: u16,
        members: Vec<(NearestQuery, ReqCtx)>,
    },
    Join {
        tree_a: u16,
        tree_b: u16,
        refine: bool,
        deadline: Option<Instant>,
        owner: Option<(f64, f64)>,
        ctx: ReqCtx,
    },
    /// Test-only: a work item whose handler panics, for exercising the
    /// pool's panic containment.
    #[cfg(test)]
    Panic,
}

/// Pending not-yet-flushed query groups.
#[derive(Default)]
struct BatchState {
    windows: HashMap<u16, Vec<(WindowQuery, ReqCtx)>>,
    nearests: HashMap<u16, Vec<(NearestQuery, ReqCtx)>>,
    /// Arrival of the oldest pending query; the flush timer's origin.
    oldest: Option<Instant>,
}

impl BatchState {
    fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.nearests.is_empty()
    }

    fn drain(&mut self) -> Vec<WorkItem> {
        let mut items = Vec::with_capacity(self.windows.len() + self.nearests.len());
        for (tree, members) in self.windows.drain() {
            items.push(WorkItem::Windows { tree, members });
        }
        for (tree, members) in self.nearests.drain() {
            items.push(WorkItem::Nearests { tree, members });
        }
        self.oldest = None;
        items
    }
}

struct Shared {
    cfg: ServeConfig,
    trees: TreeSet,
    cache: SharedPageCache<Node>,
    telemetry: Telemetry,
    /// Admitted-but-unanswered requests.
    queued: AtomicUsize,
    /// Admission closed (drain in progress).
    shutting_down: AtomicBool,
    /// Workers / batcher / connection threads must exit.
    halt: AtomicBool,
    injector: Injector<WorkItem>,
    work_mutex: Mutex<()>,
    work_signal: Condvar,
    batch: Mutex<BatchState>,
    batch_signal: Condvar,
    /// Signalled by a client [`Request::Shutdown`]; `Server::wait` listens.
    shutdown_tx: Mutex<Option<mpsc::Sender<()>>>,
}

impl Shared {
    fn notify_workers(&self) {
        let _g = lock_clean(&self.work_mutex);
        self.work_signal.notify_all();
    }

    fn halted(&self) -> bool {
        self.halt.load(Ordering::Acquire)
    }

    /// A point-in-time stats report.
    fn stats(&self) -> ServerStats {
        let t = &self.telemetry;
        let snap = self.cache.snapshot();
        let requests = snap.stats.requests();
        ServerStats {
            completed: t.completed.get(),
            shed: t.shed.get(),
            timeouts: t.timeouts.get(),
            proto_errors: t.proto_errors.get(),
            queue_depth: self.queued.load(Ordering::Relaxed) as u32,
            batches: t.batches.get(),
            batched_queries: t.batched_queries.get(),
            p50_ms: t.latency.quantile_ms(0.50),
            p95_ms: t.latency.quantile_ms(0.95),
            p99_ms: t.latency.quantile_ms(0.99),
            cache_requests: requests,
            cache_hits: requests - snap.stats.misses,
            cache_misses: snap.stats.misses,
            cache_evictions: snap.stats.evictions,
            resident_pages: snap.resident_pages as u32,
            capacity_pages: snap.capacity_pages as u32,
            storage_corrupt: t.storage_corrupt.get(),
            storage_unavailable: t.storage_unavailable.get(),
            corrupt_pages_detected: snap.corrupt_detected + self.trees.poisoned_total(),
            quarantined_pages: snap.quarantined_pages as u64,
            page_retries: snap.stats.retries,
            worker_panics: t.worker_panics.get(),
        }
    }

    /// Prometheus-text exposition of every counter plus point-in-time
    /// gauges; by construction the counters match [`Shared::stats`].
    fn metrics_text(&self) -> String {
        let snap = self.cache.snapshot();
        self.telemetry.render_prometheus(&GaugeSnapshot {
            queue_depth: self.queued.load(Ordering::Relaxed) as u64,
            cache_requests: snap.stats.requests(),
            cache_hits: snap.stats.requests() - snap.stats.misses,
            cache_misses: snap.stats.misses,
            cache_evictions: snap.stats.evictions,
            resident_pages: snap.resident_pages as u64,
            capacity_pages: snap.capacity_pages as u64,
            corrupt_pages: snap.corrupt_detected + self.trees.poisoned_total(),
            quarantined_pages: snap.quarantined_pages as u64,
            page_retries: snap.stats.retries,
            cache_opt_hits: snap.opt.hits,
            cache_opt_retries: snap.opt.retries,
            cache_opt_fallbacks: snap.opt.fallbacks,
            cache_guard_hits: snap.opt.guard_hits,
            cache_opt_coupled: snap.opt.coupled,
            cache_opt_renewed: snap.opt.renewed,
        })
    }

    /// Emits a trace instant on the server's row, if tracing is on.
    fn trace_instant(&self, name: &'static str, args: &[(&'static str, u64)]) {
        if let Some(t) = &self.cfg.trace {
            t.instant(TID_SERVE, name, "serve", args);
        }
    }

    fn info(&self) -> Vec<TreeInfo> {
        self.trees
            .iter()
            .map(|t| TreeInfo {
                mbr: t.mbr(),
                len: t.len(),
                pages: t.num_pages() as u32,
            })
            .collect()
    }

    /// Moves every pending batch group to the injector, regardless of age.
    fn flush_batches(&self) {
        let items = lock_clean(&self.batch).drain();
        if !items.is_empty() {
            self.trace_instant("batch_flush", &[("groups", items.len() as u64)]);
            for item in items {
                self.injector.push(item);
            }
            self.notify_workers();
        }
    }
}

/// A running server. Dropping the handle without calling [`Server::stop`]
/// or [`Server::wait`] leaks the listener threads; tests and the CLI
/// always stop explicitly.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown_rx: mpsc::Receiver<()>,
}

/// What [`Server::stop`] returns: the final stats report.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Counters and percentiles at shutdown.
    pub stats: ServerStats,
}

impl std::fmt::Display for ServerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.stats.fmt(f)
    }
}

impl Server {
    /// Binds `cfg.addr`, loads `trees` behind a fresh shared cache, and
    /// starts the acceptor, batcher, and worker threads.
    pub fn start(cfg: ServeConfig, trees: Vec<Arc<PagedTree>>) -> io::Result<Server> {
        let mut trees =
            TreeSet::new(trees).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        if let Some(plan) = cfg.fault.clone() {
            trees = trees.with_fault(plan);
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let mut cache = SharedPageCache::new(
            workers,
            cfg.cache_pages.max(workers),
            cfg.cache_shards.max(1),
            Policy::Lru,
        )
        .with_retry(cfg.retry);
        if let Some(trace) = &cfg.trace {
            trace.set_thread_name(TID_SERVE, "psj-serve");
            cache = cache.with_trace(Arc::clone(trace));
        }
        let (shutdown_tx, shutdown_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            trees,
            cache,
            telemetry: Telemetry::new(),
            queued: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            halt: AtomicBool::new(false),
            injector: Injector::new(),
            work_mutex: Mutex::new(()),
            work_signal: Condvar::new(),
            batch: Mutex::new(BatchState::default()),
            batch_signal: Condvar::new(),
            shutdown_tx: Mutex::new(Some(shutdown_tx)),
            cfg,
        });

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("psj-serve-worker-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn worker")
            })
            .collect();

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("psj-serve-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawn batcher")
        };

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("psj-serve-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.halted() {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let shared = Arc::clone(&shared);
                        let h = std::thread::Builder::new()
                            .name("psj-serve-conn".into())
                            .spawn(move || handle_conn(&shared, stream))
                            .expect("spawn connection thread");
                        lock_clean(&conns).push(h);
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            batcher: Some(batcher),
            workers: worker_handles,
            conns,
            shutdown_rx,
        })
    }

    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends [`Request::Shutdown`], then drains and
    /// stops.
    pub fn wait(self) -> ServerReport {
        let _ = self.shutdown_rx.recv();
        self.stop()
    }

    /// Drains admitted requests, stops every thread, and returns the final
    /// report.
    pub fn stop(mut self) -> ServerReport {
        let shared = &self.shared;
        // 1. Close admission; new requests get Overloaded.
        shared.shutting_down.store(true, Ordering::SeqCst);
        // 2. Drain: flush the batcher until every admitted request has
        //    been answered. Workers are still running here.
        while shared.queued.load(Ordering::SeqCst) > 0 {
            shared.flush_batches();
            std::thread::sleep(Duration::from_millis(1));
        }
        // 3. Halt workers and the batcher.
        shared.halt.store(true, Ordering::SeqCst);
        shared.notify_workers();
        {
            let _g = lock_clean(&shared.batch);
            shared.batch_signal.notify_all();
        }
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // 4. Unblock the acceptor with a dummy connection and join it.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // 5. Connection threads exit at their next read timeout (or when
        //    their client hangs up).
        let conns: Vec<JoinHandle<()>> = std::mem::take(&mut *lock_clean(&self.conns));
        for c in conns {
            let _ = c.join();
        }
        ServerReport {
            stats: shared.stats(),
        }
    }
}

fn batcher_loop(shared: &Shared) {
    let mut st = lock_clean(&shared.batch);
    loop {
        // Wait for pending queries (or halt).
        while st.is_empty() {
            if shared.halted() {
                return;
            }
            let (g, _) = shared
                .batch_signal
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
        // Run the window down from the oldest pending arrival. New
        // arrivals join the same flush (the timer origin never moves
        // later), so no query waits more than `batch_window`.
        let flush_at = st.oldest.expect("non-empty batch has an origin") + shared.cfg.batch_window;
        loop {
            let now = Instant::now();
            if now >= flush_at || shared.halted() {
                break;
            }
            let (g, _) = shared
                .batch_signal
                .wait_timeout(st, flush_at - now)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
            if st.is_empty() {
                break; // a max_batch flush emptied the state under us
            }
        }
        let items = st.drain();
        drop(st);
        if !items.is_empty() {
            shared.trace_instant("batch_flush", &[("groups", items.len() as u64)]);
            for item in items {
                shared.injector.push(item);
            }
            shared.notify_workers();
        }
        st = lock_clean(&shared.batch);
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let local: Worker<WorkItem> = Worker::new_lifo();
    loop {
        let item = local.pop().or_else(|| loop {
            match shared.injector.steal_batch_and_pop(&local) {
                Steal::Success(item) => break Some(item),
                Steal::Empty => break None,
                Steal::Retry => {}
            }
        });
        match item {
            Some(item) => {
                // A panicking handler must not take the worker (or the
                // pool) down: contain it, count it, keep serving. The
                // request's reply sender is dropped with the work item, so
                // its connection thread gets a typed error, not a hang.
                if catch_unwind(AssertUnwindSafe(|| execute(shared, idx, item))).is_err() {
                    shared.telemetry.worker_panics.inc();
                }
            }
            None => {
                if shared.halted() {
                    return;
                }
                let g = lock_clean(&shared.work_mutex);
                // Re-check under the lock so a notify between the failed
                // steal and this wait is not lost for long.
                let _ = shared
                    .work_signal
                    .wait_timeout(g, Duration::from_millis(20))
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Maps an execution outcome to the wire response, bumping the matching
/// telemetry counter. `ok` builds the success payload.
fn respond<T>(
    t: &Telemetry,
    latency: Duration,
    outcome: Outcome<T>,
    ok: impl FnOnce(T) -> Response,
) -> Response {
    match outcome {
        Outcome::Ok(v) => {
            t.complete(latency);
            ok(v)
        }
        Outcome::DeadlineExceeded => {
            t.timeout(latency);
            Response::DeadlineExceeded
        }
        Outcome::Storage(e) => {
            t.storage(latency, e.is_corrupt());
            storage_response(&e)
        }
    }
}

/// The wire reply for a storage-layer failure.
fn storage_response(e: &PageError) -> Response {
    Response::Storage {
        kind: if e.is_corrupt() {
            StorageErrorKind::Corrupt
        } else {
            StorageErrorKind::Unavailable
        },
        msg: e.to_string(),
    }
}

fn execute(shared: &Shared, worker: usize, item: WorkItem) {
    let t = &shared.telemetry;
    match item {
        WorkItem::Windows { tree, members } => {
            t.batches.inc();
            t.batched_queries.add(members.len() as u64);
            let queries: Vec<WindowQuery> = members.iter().map(|(q, _)| *q).collect();
            let results = exec::window_batch(&shared.trees, &shared.cache, worker, tree, &queries);
            for ((_, ctx), result) in members.into_iter().zip(results) {
                let latency = ctx.arrival.elapsed();
                let resp = respond(t, latency, result, Response::Entries);
                let _ = ctx.reply.send(resp);
            }
        }
        WorkItem::Nearests { tree, members } => {
            t.batches.inc();
            t.batched_queries.add(members.len() as u64);
            for (q, ctx) in members {
                let result = exec::nearest(
                    &shared.trees,
                    &shared.cache,
                    worker,
                    tree,
                    q.point,
                    q.k,
                    q.deadline,
                );
                let latency = ctx.arrival.elapsed();
                let resp = respond(t, latency, result, Response::Neighbors);
                let _ = ctx.reply.send(resp);
            }
        }
        WorkItem::Join {
            tree_a,
            tree_b,
            refine,
            deadline,
            owner,
            ctx,
        } => {
            let result = exec::join(
                &shared.trees,
                tree_a,
                tree_b,
                refine,
                owner,
                exec::JoinTuning {
                    threads: shared.cfg.join_threads,
                    morsel_candidates: shared.cfg.join_morsel_candidates,
                    steal: shared.cfg.join_steal,
                    steal_seed: shared.cfg.join_steal_seed,
                    engine: shared.cfg.join_engine,
                },
                deadline,
            );
            if let Outcome::Ok(run) = &result {
                t.join_tasks.add(run.tasks);
                t.join_steals.add(run.steals);
            }
            let latency = ctx.arrival.elapsed();
            let resp = respond(t, latency, result, |run| Response::Pairs(run.pairs));
            let _ = ctx.reply.send(resp);
        }
        #[cfg(test)]
        WorkItem::Panic => panic!("injected worker panic (test)"),
    }
}

/// Converts a wire deadline to an absolute instant.
fn abs_deadline(arrival: Instant, deadline_ms: u32) -> Option<Instant> {
    (deadline_ms > 0).then(|| arrival + Duration::from_millis(u64::from(deadline_ms)))
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        let payload = match read_frame(&mut reader, MAX_REQUEST_FRAME) {
            Ok(Some(p)) => p,
            Ok(None) => return, // client closed cleanly
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.halted() {
                    return;
                }
                continue;
            }
            Err(e) => {
                // Oversized prefix or mid-frame EOF: the stream cannot be
                // resynchronized — report (best effort) and hang up.
                shared.telemetry.proto_errors.inc();
                if e.kind() == io::ErrorKind::InvalidData {
                    let _ = write_frame(
                        &mut writer,
                        &Response::Error(e.to_string()).encode_or_error(),
                    );
                }
                return;
            }
        };
        let req = match Request::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                // Framing was sound, the payload was not: the stream is
                // still in sync, so answer and keep serving.
                shared.telemetry.proto_errors.inc();
                if write_frame(
                    &mut writer,
                    &Response::Error(e.to_string()).encode_or_error(),
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };

        let resp = match req {
            Request::Stats => shared.stats_response(),
            Request::Metrics => Response::Metrics(shared.metrics_text()),
            Request::Info => Response::Info {
                shard: shared.cfg.shard_id,
                trees: shared.info(),
            },
            Request::Shutdown => {
                let _ = write_frame(&mut writer, &Response::ShutdownAck.encode_or_error());
                if let Some(tx) = lock_clean(&shared.shutdown_tx).take() {
                    let _ = tx.send(());
                }
                return;
            }
            Request::Window {
                tree,
                rect,
                deadline_ms,
            } => {
                if shared.trees.get(tree).is_none() {
                    bad_tree(shared, tree)
                } else {
                    match admit(shared) {
                        Err(resp) => *resp,
                        Ok(arrival) => {
                            let deadline = abs_deadline(arrival, deadline_ms);
                            if sheds_at_admission(shared, arrival, deadline) {
                                shed_expired(shared, arrival)
                            } else {
                                let (tx, rx) = mpsc::channel();
                                let ctx = ReqCtx { arrival, reply: tx };
                                let q = WindowQuery { rect, deadline };
                                enqueue_window(shared, tree, q, ctx);
                                finish(shared, &rx)
                            }
                        }
                    }
                }
            }
            Request::Nearest {
                tree,
                x,
                y,
                k,
                deadline_ms,
            } => {
                if shared.trees.get(tree).is_none() {
                    bad_tree(shared, tree)
                } else {
                    match admit(shared) {
                        Err(resp) => *resp,
                        Ok(arrival) => {
                            let deadline = abs_deadline(arrival, deadline_ms);
                            if sheds_at_admission(shared, arrival, deadline) {
                                shed_expired(shared, arrival)
                            } else {
                                let (tx, rx) = mpsc::channel();
                                let ctx = ReqCtx { arrival, reply: tx };
                                let q = NearestQuery {
                                    point: Point::new(x, y),
                                    k: k as usize,
                                    deadline,
                                };
                                enqueue_nearest(shared, tree, q, ctx);
                                finish(shared, &rx)
                            }
                        }
                    }
                }
            }
            Request::Join {
                tree_a,
                tree_b,
                refine,
                deadline_ms,
                owner,
            } => {
                if shared.trees.get(tree_a).is_none() {
                    bad_tree(shared, tree_a)
                } else if shared.trees.get(tree_b).is_none() {
                    bad_tree(shared, tree_b)
                } else {
                    match admit(shared) {
                        Err(resp) => *resp,
                        Ok(arrival) => {
                            let deadline = abs_deadline(arrival, deadline_ms);
                            let (tx, rx) = mpsc::channel();
                            shared.injector.push(WorkItem::Join {
                                tree_a,
                                tree_b,
                                refine,
                                deadline,
                                owner,
                                ctx: ReqCtx { arrival, reply: tx },
                            });
                            shared.notify_workers();
                            finish(shared, &rx)
                        }
                    }
                }
            }
        };
        if write_frame(&mut writer, &resp.encode_or_error()).is_err() {
            return;
        }
    }
}

impl Shared {
    fn stats_response(&self) -> Response {
        Response::Stats(self.stats())
    }
}

fn bad_tree(shared: &Shared, tree: u16) -> Response {
    shared.telemetry.proto_errors.inc();
    Response::Error(format!(
        "unknown tree {tree} ({} loaded)",
        shared.trees.len()
    ))
}

/// Admission control: returns the arrival instant, or the shed response.
/// Increment-then-check closes the race against concurrent admitters — the
/// counter can transiently overshoot the bound but admitted requests never
/// exceed it.
fn admit(shared: &Shared) -> Result<Instant, Box<Response>> {
    let q = shared.queued.fetch_add(1, Ordering::SeqCst) + 1;
    if shared.shutting_down.load(Ordering::SeqCst) || q > shared.cfg.queue_bound {
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        shared.telemetry.shed.inc();
        shared.trace_instant("shed", &[("queued", q as u64)]);
        return Err(Box::new(Response::Overloaded));
    }
    shared.trace_instant("admit", &[("queued", q as u64)]);
    Ok(Instant::now())
}

/// Pre-admission deadline check for batchable queries: a deadline that
/// cannot outlive the batch window is guaranteed to expire while (or right
/// after) waiting to be grouped, so grouping it only wastes a descent on
/// work the executor will discard. Shedding it here answers the client
/// just as fast and keeps the batcher's groups free of dead weight.
fn sheds_at_admission(shared: &Shared, arrival: Instant, deadline: Option<Instant>) -> bool {
    !shared.cfg.batch_window.is_zero()
        && deadline.is_some_and(|d| d <= arrival + shared.cfg.batch_window)
}

/// Answers a pre-admission shed: releases the slot [`admit`] took and
/// counts the miss like any other expiry.
fn shed_expired(shared: &Shared, arrival: Instant) -> Response {
    shared.queued.fetch_sub(1, Ordering::SeqCst);
    shared.telemetry.timeout(arrival.elapsed());
    shared.trace_instant("early_shed", &[]);
    Response::DeadlineExceeded
}

/// Waits for the worker's reply and releases the admission slot.
fn finish(shared: &Shared, rx: &mpsc::Receiver<Response>) -> Response {
    let resp = rx
        .recv()
        .unwrap_or_else(|_| Response::Error("server dropped the request".into()));
    shared.queued.fetch_sub(1, Ordering::SeqCst);
    resp
}

fn enqueue_window(shared: &Shared, tree: u16, q: WindowQuery, ctx: ReqCtx) {
    if shared.cfg.batch_window.is_zero() {
        shared.injector.push(WorkItem::Windows {
            tree,
            members: vec![(q, ctx)],
        });
        shared.notify_workers();
        return;
    }
    let mut st = lock_clean(&shared.batch);
    if st.oldest.is_none() {
        st.oldest = Some(ctx.arrival);
    }
    let group = st.windows.entry(tree).or_default();
    group.push((q, ctx));
    if group.len() >= shared.cfg.max_batch {
        let members = st.windows.remove(&tree).expect("group exists");
        if st.is_empty() {
            st.oldest = None;
        }
        drop(st);
        shared.injector.push(WorkItem::Windows { tree, members });
        shared.notify_workers();
    } else {
        drop(st);
        shared.batch_signal.notify_all();
    }
}

fn enqueue_nearest(shared: &Shared, tree: u16, q: NearestQuery, ctx: ReqCtx) {
    if shared.cfg.batch_window.is_zero() {
        shared.injector.push(WorkItem::Nearests {
            tree,
            members: vec![(q, ctx)],
        });
        shared.notify_workers();
        return;
    }
    let mut st = lock_clean(&shared.batch);
    if st.oldest.is_none() {
        st.oldest = Some(ctx.arrival);
    }
    let group = st.nearests.entry(tree).or_default();
    group.push((q, ctx));
    if group.len() >= shared.cfg.max_batch {
        let members = st.nearests.remove(&tree).expect("group exists");
        if st.is_empty() {
            st.oldest = None;
        }
        drop(st);
        shared.injector.push(WorkItem::Nearests { tree, members });
        shared.notify_workers();
    } else {
        drop(st);
        shared.batch_signal.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use psj_geom::Rect;
    use psj_rtree::RTree;

    fn tree(n: usize) -> Arc<PagedTree> {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 30) as f64;
            let y = (i / 30) as f64;
            t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
        }
        Arc::new(PagedTree::freeze(&t, |_| None))
    }

    fn start() -> Server {
        let cfg = ServeConfig {
            workers: 2,
            batch_window: Duration::from_millis(1),
            read_timeout: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        Server::start(cfg, vec![tree(900)]).expect("bind loopback")
    }

    #[test]
    fn panicking_handler_leaves_the_server_serving() {
        let server = start();
        let addr = server.local_addr();
        let mut c = Client::connect(addr).unwrap();
        let rect = Rect::new(0.0, 0.0, 10.0, 10.0);
        let before = c.window(0, rect, 0).unwrap();

        // Inject work whose handler panics — repeatedly, so with two
        // workers both absorb at least one panic with high likelihood.
        for _ in 0..8 {
            server.shared.injector.push(WorkItem::Panic);
        }
        server.shared.notify_workers();

        // Every later request is still answered, by the same pool.
        for _ in 0..10 {
            let got = c.window(0, rect, 0).unwrap();
            assert_eq!(got.len(), before.len());
        }
        let stats = c.stats().unwrap();
        assert_eq!(
            stats.worker_panics, 8,
            "each injected panic is counted, none kills a worker"
        );
        let report = server.stop();
        assert_eq!(report.stats.worker_panics, 8);
        assert_eq!(report.stats.queue_depth, 0, "shutdown drain unaffected");
    }

    #[test]
    fn poisoned_batch_lock_does_not_wedge_requests_or_shutdown() {
        let server = start();
        let addr = server.local_addr();

        // Poison the batch mutex deliberately: a thread panics while
        // holding it. Pre-fix, every subsequent lock().unwrap() on the
        // batcher/enqueue/flush path would propagate the poison and wedge
        // admission and the shutdown drain.
        {
            let shared = Arc::clone(&server.shared);
            let _ = std::thread::spawn(move || {
                let _g = shared.batch.lock().unwrap();
                panic!("poison the batch lock (test)");
            })
            .join();
        }
        assert!(server.shared.batch.is_poisoned(), "lock really is poisoned");

        let mut c = Client::connect(addr).unwrap();
        let rect = Rect::new(0.0, 0.0, 8.0, 8.0);
        // Batched queries route through the poisoned lock and must still
        // be answered.
        for _ in 0..5 {
            assert!(!c.window(0, rect, 0).unwrap().is_empty());
        }
        let report = server.stop();
        assert!(report.stats.completed >= 5);
        assert_eq!(report.stats.queue_depth, 0, "drain completes");
    }

    #[test]
    fn near_expired_requests_shed_before_batching() {
        // A long batch window makes the expiry deterministic: a 5 ms
        // deadline cannot survive a 200 ms grouping wait.
        let cfg = ServeConfig {
            workers: 2,
            batch_window: Duration::from_millis(200),
            read_timeout: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, vec![tree(100)]).expect("bind loopback");
        let addr = server.local_addr();
        let mut c = Client::connect(addr).unwrap();
        let rect = Rect::new(0.0, 0.0, 5.0, 5.0);

        let start = Instant::now();
        match c.window(0, rect, 5) {
            Err(crate::ClientError::Unexpected(r)) => {
                assert_eq!(*r, Response::DeadlineExceeded)
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "shed at admission, not after the batch window: {:?}",
            start.elapsed()
        );
        match c.nearest(0, 1.0, 1.0, 4, 5) {
            Err(crate::ClientError::Unexpected(r)) => {
                assert_eq!(*r, Response::DeadlineExceeded)
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = c.stats().unwrap();
        assert_eq!(stats.timeouts, 2, "pre-admission sheds count as expiries");
        assert_eq!(stats.batches, 0, "no batch was ever formed for them");
        assert_eq!(stats.queue_depth, 0, "admission slots were released");

        // A viable deadline still rides the batcher normally.
        assert!(!c.window(0, rect, 5_000).unwrap().is_empty());
        server.stop();
    }

    #[test]
    fn metrics_exposition_matches_stats_counters() {
        let server = start();
        let addr = server.local_addr();
        let mut c = Client::connect(addr).unwrap();
        for _ in 0..4 {
            c.window(0, Rect::new(0.0, 0.0, 6.0, 6.0), 0).unwrap();
        }
        let stats = c.stats().unwrap();
        let text = c.metrics().unwrap();
        for (name, value) in [
            ("psj_requests_completed_total", stats.completed),
            ("psj_requests_shed_total", stats.shed),
            ("psj_batches_total", stats.batches),
            ("psj_batched_queries_total", stats.batched_queries),
            ("psj_worker_panics_total", stats.worker_panics),
            ("psj_cache_requests", stats.cache_requests),
        ] {
            assert!(
                text.lines().any(|l| l == format!("{name} {value}")),
                "{name} {value} missing from exposition:\n{text}"
            );
        }
        assert!(
            text.contains("psj_request_latency_seconds_bucket"),
            "{text}"
        );
        server.stop();
    }
}
