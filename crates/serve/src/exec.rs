//! Query execution against the shared page cache.
//!
//! The server pins every loaded tree's pages behind one
//! [`SharedPageCache<Node>`]: all node accesses of all concurrent requests
//! go through it, so the cache's budget bounds decoded-node residency
//! across the whole service and its hit/miss counters describe real
//! cross-request sharing. Page keys combine the tree index (upper bits)
//! with the page number (lower [`TREE_SHIFT`] bits).
//!
//! Two traversals live here:
//!
//! * [`window_batch`] — a *shared* descent for a batch of window queries on
//!   one tree: each directory node is fetched once and tested against every
//!   query that reached it, amortizing directory-page faults across the
//!   batch (the inter-query analogue of the paper's intra-join buffering).
//! * [`nearest`] — best-first kNN through the cache.
//!
//! Both check their deadline cooperatively at every node fetch; an expired
//! query is dropped from the traversal (its partial results discarded)
//! without disturbing batch-mates.
//!
//! # Storage failures
//!
//! Every traversal returns an [`Outcome`]: a page that cannot be read —
//! quarantined by the cache, poisoned at (lenient) load time, or failed by
//! an injected [`FaultPlan`] — degrades only the queries that needed that
//! page, to [`Outcome::Storage`]; batch-mates on healthy subtrees complete
//! normally, and other trees are entirely unaffected. A query never
//! returns a silently partial result: if any page it touched was
//! unreadable, the whole query reports the storage error.

use psj_buffer::{OptCoupling, PageGuard, SharedPageCache};
use psj_core::{
    try_run_join, CancelToken, JoinEngine, NativeConfig, NativeError, RunControl, StealPolicy,
};
use psj_geom::{Point, Rect};
use psj_rtree::nn::min_dist;
use psj_rtree::{nearest_neighbors_via, Node, NodeAccess, NodeKind, PagedTree};
use psj_store::{FaultPlan, PageError, PageId};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Low bits of a cache key hold the page number; upper bits the tree index.
pub const TREE_SHIFT: u32 = 24;

/// Maximum number of trees a server can load (tree index fits the key's
/// upper bits with the sign-ish top bit spare).
pub const MAX_TREES: usize = 127;

/// The trees a server instance exposes, indexed by position.
#[derive(Debug)]
pub struct TreeSet {
    trees: Vec<Arc<PagedTree>>,
    /// Injected fault plan applied to every cache fill (testing/chaos).
    fault: Option<Arc<FaultPlan>>,
}

impl TreeSet {
    /// Validates and wraps the loaded trees.
    pub fn new(trees: Vec<Arc<PagedTree>>) -> Result<Self, String> {
        if trees.is_empty() {
            return Err("a server needs at least one tree".into());
        }
        if trees.len() > MAX_TREES {
            return Err(format!("at most {MAX_TREES} trees, got {}", trees.len()));
        }
        for (i, t) in trees.iter().enumerate() {
            if t.num_pages() >= 1 << TREE_SHIFT {
                return Err(format!(
                    "tree {i} has {} pages, page-key space holds {}",
                    t.num_pages(),
                    1 << TREE_SHIFT
                ));
            }
        }
        Ok(TreeSet { trees, fault: None })
    }

    /// Applies an injected fault plan to every subsequent cache fill.
    pub fn with_fault(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Total pages poisoned at load time across all trees.
    pub fn poisoned_total(&self) -> u64 {
        self.trees.iter().map(|t| t.poisoned_count() as u64).sum()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The tree at `idx`, if loaded.
    pub fn get(&self, idx: u16) -> Option<&Arc<PagedTree>> {
        self.trees.get(idx as usize)
    }

    /// Iterates over the trees in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<PagedTree>> {
        self.trees.iter()
    }

    /// Total pages across all trees.
    pub fn total_pages(&self) -> usize {
        self.trees.iter().map(|t| t.num_pages()).sum()
    }

    fn key(&self, tree: usize, page: PageId) -> PageId {
        PageId(((tree as u32) << TREE_SHIFT) | page.0)
    }
}

impl psj_buffer::PageSource for TreeSet {
    type Item = Node;

    fn fetch_page(&self, key: PageId) -> Result<Node, PageError> {
        let tree = (key.0 >> TREE_SHIFT) as usize;
        let page = PageId(key.0 & ((1 << TREE_SHIFT) - 1));
        // Pages poisoned at (lenient) load time hold placeholder nodes;
        // serving one would silently return wrong answers.
        if self.trees[tree].is_poisoned(page) {
            return Err(PageError::Corrupt {
                page: key,
                context: format!("tree {tree} {page} poisoned at load time"),
            });
        }
        if let Some(plan) = &self.fault {
            plan.before_fetch(key)?;
        }
        Ok(Node::decode(self.trees[tree].pages().read(page)))
    }

    fn page_count(&self) -> usize {
        self.total_pages()
    }
}

/// One node read out of the query cache: a borrowing pin-guarded read when
/// the page is resident and uncontended (no Arc clone, no shard mutex), an
/// owned value off the fallback ladder otherwise. Either way the borrow
/// lives only as long as the traversal looks at the node.
pub enum PageRead<'c> {
    /// Served by a coupled optimistic guard.
    Guard(PageGuard<'c, Node>),
    /// Served by the shared cache's optimistic-retry or pessimistic path.
    Owned(Arc<Node>),
}

impl std::ops::Deref for PageRead<'_> {
    type Target = Node;

    #[inline]
    fn deref(&self) -> &Node {
        match self {
            PageRead::Guard(g) => g,
            PageRead::Owned(n) => n,
        }
    }
}

/// Cache-backed [`NodeAccess`] over one tree of a [`TreeSet`]: every read
/// first tries a coupled guard (each page's seqlock validation re-checks
/// the previously read page's version, extending validity across levels of
/// the descent), falling back per page to the pessimistic path. Carries
/// the per-traversal coupling chain, so one `CachedNodes` value serves one
/// query descent.
struct CachedNodes<'c> {
    trees: &'c TreeSet,
    cache: &'c SharedPageCache<Node>,
    worker: usize,
    tree: usize,
    chain: OptCoupling,
}

impl<'c> CachedNodes<'c> {
    fn new(
        trees: &'c TreeSet,
        cache: &'c SharedPageCache<Node>,
        worker: usize,
        tree: usize,
    ) -> Self {
        CachedNodes {
            trees,
            cache,
            worker,
            tree,
            chain: OptCoupling::root(),
        }
    }
}

impl NodeAccess for CachedNodes<'_> {
    type Ref<'a>
        = PageRead<'a>
    where
        Self: 'a;

    fn read(&mut self, page: PageId) -> Result<PageRead<'_>, PageError> {
        let key = self.trees.key(self.tree, page);
        match self
            .cache
            .guard_get_coupled(self.worker, key, &mut self.chain)
        {
            Some(g) => Ok(PageRead::Guard(g)),
            None => self
                .cache
                .try_get(self.worker, key, self.trees)
                .map(|(n, _)| PageRead::Owned(n)),
        }
    }
}

/// How one query (or batch member) ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome<T> {
    /// The query completed; results are exact.
    Ok(T),
    /// The deadline expired mid-traversal; partial results discarded.
    DeadlineExceeded,
    /// A page the query needed could not be read (corrupt, quarantined, or
    /// unavailable after retries). Partial results discarded — a storage
    /// error never yields a silently incomplete answer.
    Storage(PageError),
}

impl<T> Outcome<T> {
    /// The completed result, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            Outcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the query completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok(_))
    }
}

/// One member of a window batch.
#[derive(Debug, Clone, Copy)]
pub struct WindowQuery {
    /// The query window.
    pub rect: Rect,
    /// Absolute deadline; `None` = unbounded.
    pub deadline: Option<Instant>,
}

/// Runs a batch of window queries on tree `tree` with one shared descent
/// through `cache`. `worker` indexes the cache's per-worker statistics.
///
/// `results[i]` is `Outcome::Ok(oids)` exactly matching a direct
/// [`PagedTree::window_query`]; `Outcome::DeadlineExceeded` if query `i`'s
/// deadline expired mid-traversal; `Outcome::Storage` if a page it needed
/// was unreadable. Either way partial results are discarded and batch-mates
/// on healthy subtrees are unaffected.
pub fn window_batch(
    trees: &TreeSet,
    cache: &SharedPageCache<Node>,
    worker: usize,
    tree: u16,
    queries: &[WindowQuery],
) -> Vec<Outcome<Vec<u64>>> {
    let n = queries.len();
    let mut out: Vec<Outcome<Vec<u64>>> = (0..n).map(|_| Outcome::Ok(Vec::new())).collect();
    if n == 0 {
        return out;
    }
    let t = &trees.trees[tree as usize];
    let tree_idx = tree as usize;

    // Expired members drop out as a group whenever the earliest live
    // deadline passes; `next_deadline` keeps the per-node check to one
    // clock read and one comparison.
    let mut dead = vec![false; n];
    let expire = |dead: &mut Vec<bool>, out: &mut Vec<Outcome<Vec<u64>>>, now: Instant| {
        let mut next: Option<Instant> = None;
        for (i, q) in queries.iter().enumerate() {
            if dead[i] {
                continue;
            }
            match q.deadline {
                Some(d) if d <= now => {
                    dead[i] = true;
                    out[i] = Outcome::DeadlineExceeded;
                }
                Some(d) => next = Some(next.map_or(d, |n: Instant| n.min(d))),
                None => {}
            }
        }
        next
    };
    let mut next_deadline = expire(&mut dead, &mut out, Instant::now());

    if t.is_empty() {
        return out;
    }
    let live: Vec<u16> = (0..n as u16).filter(|&i| !dead[i as usize]).collect();
    if live.is_empty() {
        return out;
    }
    let mut access = CachedNodes::new(trees, cache, worker, tree_idx);
    let mut stack: Vec<(PageId, Vec<u16>)> = vec![(t.root(), live)];
    while let Some((page, live)) = stack.pop() {
        if next_deadline.is_some_and(|d| Instant::now() >= d) {
            next_deadline = expire(&mut dead, &mut out, Instant::now());
        }
        let node = match access.read(page) {
            Ok(node) => node,
            Err(e) => {
                // Only the members that needed this subtree degrade; their
                // partial results are replaced by the typed error.
                for &q in &live {
                    if !dead[q as usize] {
                        dead[q as usize] = true;
                        out[q as usize] = Outcome::Storage(e.clone());
                    }
                }
                continue;
            }
        };
        match &node.kind {
            NodeKind::Dir(entries) => {
                for e in entries {
                    let sub: Vec<u16> = live
                        .iter()
                        .copied()
                        .filter(|&q| {
                            !dead[q as usize] && e.mbr.intersects(&queries[q as usize].rect)
                        })
                        .collect();
                    if !sub.is_empty() {
                        stack.push((PageId(e.child), sub));
                    }
                }
            }
            NodeKind::Leaf(entries) => {
                for e in entries {
                    for &q in &live {
                        if !dead[q as usize] && e.mbr.intersects(&queries[q as usize].rect) {
                            match &mut out[q as usize] {
                                Outcome::Ok(oids) => oids.push(e.oid),
                                _ => unreachable!("live query has output"),
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

struct HeapItem {
    dist: f64,
    entry: HeapEntry,
}

enum HeapEntry {
    Node(PageId),
    Data(u64),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap on distance. `total_cmp` keeps the order total even if a
        // decoded page carries NaN coordinates (NaN sorts last), so a
        // corrupt rectangle cannot break the heap invariant mid-query.
        other.dist.total_cmp(&self.dist)
    }
}

/// Best-first k-nearest-neighbor query through the cache; results match
/// [`PagedTree::nearest_neighbors`]. Reports an expired deadline or an
/// unreadable page as the corresponding non-`Ok` [`Outcome`].
pub fn nearest(
    trees: &TreeSet,
    cache: &SharedPageCache<Node>,
    worker: usize,
    tree: u16,
    query: Point,
    k: usize,
    deadline: Option<Instant>,
) -> Outcome<Vec<(f64, u64)>> {
    let t = &trees.trees[tree as usize];
    let tree_idx = tree as usize;
    let mut out = Vec::with_capacity(k.min(64));
    if k == 0 || t.is_empty() {
        return Outcome::Ok(out);
    }
    let mut access = CachedNodes::new(trees, cache, worker, tree_idx);
    if deadline.is_none() {
        // No deadline to check per node: the shared best-first descent from
        // the rtree crate runs straight through the guard-backed accessor.
        return match nearest_neighbors_via(&mut access, t.root(), &query, k) {
            Ok(v) => Outcome::Ok(v.into_iter().map(|(d, e)| (d, e.oid)).collect()),
            Err(e) => Outcome::Storage(e),
        };
    }
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        entry: HeapEntry::Node(t.root()),
    });
    while let Some(HeapItem { dist, entry }) = heap.pop() {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Outcome::DeadlineExceeded;
        }
        match entry {
            HeapEntry::Node(page) => {
                let node = match access.read(page) {
                    Ok(node) => node,
                    Err(e) => return Outcome::Storage(e),
                };
                match &node.kind {
                    NodeKind::Dir(entries) => {
                        for e in entries {
                            heap.push(HeapItem {
                                dist: min_dist(&query, &e.mbr),
                                entry: HeapEntry::Node(PageId(e.child)),
                            });
                        }
                    }
                    NodeKind::Leaf(entries) => {
                        for e in entries {
                            heap.push(HeapItem {
                                dist: min_dist(&query, &e.mbr),
                                entry: HeapEntry::Data(e.oid),
                            });
                        }
                    }
                }
            }
            HeapEntry::Data(oid) => {
                out.push((dist, oid));
                if out.len() == k {
                    break;
                }
            }
        }
    }
    Outcome::Ok(out)
}

/// What a completed join reports back to the server: the pairs plus the
/// kernel's own work accounting (phase-1 tasks, successful steals) so the
/// serving layer can expose the paper's parallelism counters per service.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinRun {
    /// Joined `(oid_a, oid_b)` pairs.
    pub pairs: Vec<(u64, u64)>,
    /// Phase-1 tasks created for this join.
    pub tasks: u64,
    /// Successful steals across this join's workers.
    pub steals: u64,
}

/// Join-executor tuning copied from the server configuration: thread count
/// plus the morsel-scheduler knobs threaded through to [`NativeConfig`].
#[derive(Debug, Clone, Copy)]
pub struct JoinTuning {
    /// Worker threads per join request.
    pub threads: usize,
    /// Target estimated candidates per morsel (`0` = auto).
    pub morsel_candidates: u64,
    /// Victim selection for morsel reassignment.
    pub steal: StealPolicy,
    /// Seed of the seeded steal policy (ignored by the others).
    pub steal_seed: u64,
    /// Join engine: the R-tree traversal, the in-memory grid partition, or
    /// a per-request automatic choice. Served joins descend frozen trees
    /// directly (no page cache), so every engine is safe here.
    pub engine: JoinEngine,
}

impl JoinTuning {
    /// Default scheduler knobs at the given thread count.
    pub fn threads(threads: usize) -> Self {
        JoinTuning {
            threads,
            morsel_candidates: 0,
            steal: StealPolicy::Busiest,
            steal_seed: 0,
            engine: JoinEngine::RTree,
        }
    }
}

/// Spatial join of two loaded trees with a deadline, on `tuning.threads`
/// worker threads. Joins descend the frozen trees directly (their node accesses
/// are not routed through the query cache: the join kernel has its own
/// buffer-organization machinery studied by the paper, and sharing the
/// query cache's key space across arbitrary tree *pairs* would alias; for
/// the same reason, an injected [`TreeSet`] fault plan does not apply to
/// joins). A tree with load-time poisoned pages is refused outright with
/// [`Outcome::Storage`] — the direct descent would read the placeholder
/// nodes and silently return wrong pairs.
///
/// `owner` restricts the result to pairs this shard *owns* (sharded
/// clusters replicate boundary items into every overlapping shard, so an
/// unrestricted fan-out would report boundary pairs once per replica):
/// a pair is kept iff its reference point — `a.xl.max(b.xl)`, the lower-x
/// edge of the MBR intersection — lies in `[lo, hi)`. The half-open
/// intervals of a shard plan tile the x-axis, so exactly one shard keeps
/// each pair. `None` keeps everything (the standalone-server case).
pub fn join(
    trees: &TreeSet,
    tree_a: u16,
    tree_b: u16,
    refine: bool,
    owner: Option<(f64, f64)>,
    tuning: JoinTuning,
    deadline: Option<Instant>,
) -> Outcome<JoinRun> {
    let a = &trees.trees[tree_a as usize];
    let b = &trees.trees[tree_b as usize];
    for (idx, t) in [(tree_a, a), (tree_b, b)] {
        if t.poisoned_count() > 0 {
            let page = t.poisoned_pages().next().expect("count > 0");
            return Outcome::Storage(PageError::Corrupt {
                page,
                context: format!(
                    "tree {idx} has {} poisoned pages; joins need a fully intact index",
                    t.poisoned_count()
                ),
            });
        }
    }
    let mut cfg = NativeConfig::new(tuning.threads.max(1));
    cfg.refine = refine;
    cfg.morsel_candidates = tuning.morsel_candidates;
    cfg.steal = tuning.steal;
    cfg.steal_seed = tuning.steal_seed;
    cfg.engine = tuning.engine;
    let token = match deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    let ctl = RunControl::default().with_cancel(&token);
    match try_run_join(a, b, &cfg, &ctl) {
        Ok(r) => {
            let mut pairs = r.pairs;
            if let Some((lo, hi)) = owner {
                retain_owned_pairs(a, b, &mut pairs, lo, hi);
            }
            Outcome::Ok(JoinRun {
                pairs,
                tasks: r.tasks as u64,
                steals: r.steals,
            })
        }
        Err(NativeError::Cancelled) => Outcome::DeadlineExceeded,
        Err(NativeError::Storage(e)) => Outcome::Storage(e.error),
        // Re-raise: the worker pool's panic containment (and its
        // psj_worker_panics counter) is the serving layer's designated
        // handler for panics, typed or not.
        Err(e @ NativeError::WorkerPanic { .. }) => panic!("{e}"),
    }
}

/// Keeps only the pairs whose reference point (`a.xl.max(b.xl)`) lies in
/// the owned interval `[lo, hi)`. Reference points are computed from the
/// stored MBRs, which are bit-identical across replicas of an item, so
/// every shard of a plan makes the same keep/drop decision for a pair and
/// the decisions tile: each pair survives on exactly one shard.
fn retain_owned_pairs(a: &PagedTree, b: &PagedTree, pairs: &mut Vec<(u64, u64)>, lo: f64, hi: f64) {
    let xa = leaf_xl_index(a);
    let xb = leaf_xl_index(b);
    pairs.retain(|&(oa, ob)| match (xa.get(&oa), xb.get(&ob)) {
        (Some(&ax), Some(&bx)) => {
            let r = ax.max(bx);
            lo <= r && r < hi
        }
        // A joined oid always has a leaf entry; keep rather than silently
        // drop if that invariant ever breaks.
        _ => true,
    });
}

/// oid → `mbr.xl` over a tree's leaf entries.
fn leaf_xl_index(t: &PagedTree) -> std::collections::HashMap<u64, f64> {
    let mut m = std::collections::HashMap::with_capacity(t.len() as usize);
    for p in 0..t.num_pages() {
        let node = t.node(PageId(p as u32));
        if let NodeKind::Leaf(entries) = &node.kind {
            for e in entries {
                m.insert(e.oid, e.mbr.xl);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use psj_buffer::Policy;
    use psj_rtree::RTree;
    use std::time::Duration;

    fn tree(n: usize, offset: f64) -> Arc<PagedTree> {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 40) as f64 + offset;
            let y = (i / 40) as f64 + offset;
            t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
        }
        Arc::new(PagedTree::freeze(&t, |_| None))
    }

    fn set() -> TreeSet {
        TreeSet::new(vec![tree(1200, 0.0), tree(900, 0.3)]).unwrap()
    }

    #[test]
    fn window_batch_matches_direct_queries() {
        let trees = set();
        let cache = SharedPageCache::new(1, 256, 4, Policy::Lru);
        for tree_idx in 0..2u16 {
            let queries: Vec<WindowQuery> = (0..12)
                .map(|i| WindowQuery {
                    rect: Rect::new((i * 3) as f64, 2.0, (i * 3 + 6) as f64, 9.0),
                    deadline: None,
                })
                .collect();
            let got = window_batch(&trees, &cache, 0, tree_idx, &queries);
            for (i, q) in queries.iter().enumerate() {
                let mut got_i = got[i].clone().ok().expect("no deadline set");
                let mut want: Vec<u64> = trees.trees[tree_idx as usize]
                    .window_query(&q.rect)
                    .iter()
                    .map(|e| e.oid)
                    .collect();
                got_i.sort_unstable();
                want.sort_unstable();
                assert_eq!(got_i, want, "tree {tree_idx} query {i}");
            }
        }
    }

    #[test]
    fn window_batch_under_tiny_cache_still_correct() {
        let trees = set();
        let cache = SharedPageCache::new(1, 2, 1, Policy::Lru);
        let queries = vec![WindowQuery {
            rect: Rect::new(0.0, 0.0, 40.0, 40.0),
            deadline: None,
        }];
        let got = window_batch(&trees, &cache, 0, 0, &queries);
        assert_eq!(
            got[0].clone().ok().unwrap().len(),
            trees.trees[0].window_query(&queries[0].rect).len()
        );
        assert!(cache.total_stats().evictions > 0, "tiny cache thrashes");
    }

    #[test]
    fn expired_member_gets_none_others_complete() {
        let trees = set();
        let cache = SharedPageCache::new(1, 256, 4, Policy::Lru);
        let past = Instant::now() - Duration::from_millis(5);
        let queries = vec![
            WindowQuery {
                rect: Rect::new(0.0, 0.0, 10.0, 10.0),
                deadline: Some(past),
            },
            WindowQuery {
                rect: Rect::new(0.0, 0.0, 10.0, 10.0),
                deadline: None,
            },
        ];
        let got = window_batch(&trees, &cache, 0, 0, &queries);
        assert_eq!(got[0], Outcome::DeadlineExceeded, "expired member dropped");
        let want = trees.trees[0].window_query(&queries[1].rect).len();
        assert_eq!(
            got[1].clone().ok().unwrap().len(),
            want,
            "live member served"
        );
    }

    #[test]
    fn nearest_matches_direct() {
        let trees = set();
        let cache = SharedPageCache::new(1, 256, 4, Policy::Lru);
        let q = Point::new(11.3, 4.2);
        let got = nearest(&trees, &cache, 0, 0, q, 7, None).ok().unwrap();
        let want = trees.trees[0].nearest_neighbors(&q, 7);
        assert_eq!(got.len(), want.len());
        for ((gd, _), (wd, _)) in got.iter().zip(&want) {
            assert_eq!(gd, wd);
        }
    }

    #[test]
    fn nearest_with_expired_deadline_is_none() {
        let trees = set();
        let cache = SharedPageCache::new(1, 256, 4, Policy::Lru);
        let past = Instant::now() - Duration::from_millis(5);
        assert_eq!(
            nearest(&trees, &cache, 0, 0, Point::new(1.0, 1.0), 3, Some(past)),
            Outcome::DeadlineExceeded
        );
    }

    #[test]
    fn join_matches_core_and_respects_deadline() {
        let trees = set();
        let want = psj_core::join_refined(&trees.trees[0], &trees.trees[1]);
        let got = join(&trees, 0, 1, true, None, JoinTuning::threads(2), None)
            .ok()
            .unwrap();
        assert!(got.tasks > 0, "phase-1 task count travels with the result");
        let as_set =
            |v: &[(u64, u64)]| v.iter().copied().collect::<std::collections::BTreeSet<_>>();
        assert_eq!(as_set(&got.pairs), as_set(&want));
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            join(&trees, 0, 1, true, None, JoinTuning::threads(2), Some(past)),
            Outcome::DeadlineExceeded
        );
    }

    #[test]
    fn tree_set_rejects_oversized() {
        assert!(TreeSet::new(vec![]).is_err());
    }

    #[test]
    fn owner_intervals_partition_the_join_exactly_once() {
        let trees = set();
        let all = join(&trees, 0, 1, true, None, JoinTuning::threads(2), None)
            .ok()
            .unwrap()
            .pairs;
        // Half-open intervals tiling the x-axis, boundary chosen to split
        // the data; pair ownership must partition the unrestricted result.
        let cuts = [f64::NEG_INFINITY, 13.0, 27.5, f64::INFINITY];
        let mut union: Vec<(u64, u64)> = Vec::new();
        let mut total = 0usize;
        for w in cuts.windows(2) {
            let owned = join(
                &trees,
                0,
                1,
                true,
                Some((w[0], w[1])),
                JoinTuning::threads(2),
                None,
            )
            .ok()
            .unwrap()
            .pairs;
            total += owned.len();
            union.extend(owned);
        }
        let as_set =
            |v: &[(u64, u64)]| v.iter().copied().collect::<std::collections::BTreeSet<_>>();
        assert_eq!(as_set(&union), as_set(&all), "intervals cover everything");
        assert_eq!(total, all.len(), "no pair owned twice");
        assert!(total > 0, "non-trivial join");
    }

    #[test]
    fn injected_corruption_degrades_to_storage_not_wrong_answers() {
        // Every fetch corrupt: all queries must report Storage, none may
        // return results.
        let trees = set().with_fault(Arc::new(FaultPlan::new(3).with_flip(1.0)));
        let cache = SharedPageCache::new(1, 256, 4, Policy::Lru);
        let queries = vec![WindowQuery {
            rect: Rect::new(0.0, 0.0, 40.0, 40.0),
            deadline: None,
        }];
        let got = window_batch(&trees, &cache, 0, 0, &queries);
        assert!(
            matches!(&got[0], Outcome::Storage(e) if e.is_corrupt()),
            "{:?}",
            got[0]
        );
        let nn = nearest(&trees, &cache, 0, 0, Point::new(1.0, 1.0), 3, None);
        assert!(matches!(nn, Outcome::Storage(_)), "{nn:?}");
        assert!(cache.corrupt_detected() > 0);
        assert!(cache.quarantined_pages() > 0);
    }

    #[test]
    fn partial_corruption_degrades_only_affected_queries() {
        // Seeded partial plans: some queries fail with Storage, and every
        // query that completes must be exactly correct. Whether the root
        // page flips depends on the seed, so sweep several and assert both
        // outcomes occur across the sweep while the correctness invariant
        // holds in every single run.
        let (mut completed, mut failed) = (0u32, 0u32);
        for seed in 0..8u64 {
            let trees = set().with_fault(Arc::new(FaultPlan::new(seed).with_flip(0.3)));
            let cache = SharedPageCache::new(1, 256, 4, Policy::Lru);
            // Small tiles: each touches only a few pages, so a 30% flip
            // rate leaves many queries with an all-clean path.
            let queries: Vec<WindowQuery> = (0..16)
                .map(|i| {
                    let (x, y) = (((i % 4) * 9) as f64, ((i / 4) * 7) as f64);
                    WindowQuery {
                        rect: Rect::new(x, y, x + 3.0, y + 3.0),
                        deadline: None,
                    }
                })
                .collect();
            let got = window_batch(&trees, &cache, 0, 0, &queries);
            for (i, (outcome, q)) in got.iter().zip(&queries).enumerate() {
                match outcome {
                    Outcome::Ok(oids) => {
                        completed += 1;
                        let mut got_i = oids.clone();
                        let mut want: Vec<u64> = trees.trees[0]
                            .window_query(&q.rect)
                            .iter()
                            .map(|e| e.oid)
                            .collect();
                        got_i.sort_unstable();
                        want.sort_unstable();
                        assert_eq!(got_i, want, "seed {seed} query {i} completed but wrong");
                    }
                    Outcome::Storage(e) => {
                        failed += 1;
                        assert!(e.is_corrupt(), "seed {seed} query {i}: {e}");
                    }
                    Outcome::DeadlineExceeded => panic!("no deadlines set"),
                }
            }
        }
        assert!(completed > 0, "no query ever completed across 8 seeds");
        assert!(failed > 0, "30% flips never hit any query across 8 seeds");
    }

    #[test]
    fn join_refuses_poisoned_tree() {
        // Persist a tree, corrupt a leaf page on disk, lenient-load it.
        let healthy = tree(900, 0.3);
        let victim_src = tree(1200, 0.0);
        let mut path = std::env::temp_dir();
        path.push(format!("psj-exec-poison-{}.idx", std::process::id()));
        victim_src.save_to(&path).unwrap();
        let leaf = (0..victim_src.num_pages())
            .rev()
            .find(|&n| victim_src.node(PageId(n as u32)).is_leaf())
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let off = 30 + leaf * psj_store::PAGE_RECORD_SIZE + 100;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = PagedTree::load_from_lenient(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.tree.poisoned_count(), 1);

        let trees = TreeSet::new(vec![Arc::new(loaded.tree), healthy]).unwrap();
        let got = join(&trees, 0, 1, true, None, JoinTuning::threads(2), None);
        assert!(
            matches!(&got, Outcome::Storage(e) if e.is_corrupt()),
            "{got:?}"
        );
        // The healthy tree still serves window queries.
        let cache = SharedPageCache::new(1, 256, 4, Policy::Lru);
        let queries = vec![WindowQuery {
            rect: Rect::new(0.0, 0.0, 40.0, 40.0),
            deadline: None,
        }];
        let got = window_batch(&trees, &cache, 0, 1, &queries);
        assert!(got[0].is_ok(), "healthy tree unaffected");
    }
}
