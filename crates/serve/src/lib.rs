//! psj-serve: a concurrent spatial query service over the paged R\*-trees.
//!
//! The paper's parallel join executes one large operation across
//! processors; this crate puts the same machinery behind a network
//! service where many small operations (window queries, k-NN, joins)
//! arrive concurrently and share the buffer pool — the server-side
//! counterpart of the paper's multi-user buffer discussion.
//!
//! The pieces:
//!
//! * [`protocol`] — length-prefixed binary frames; decoding is total
//!   (malformed bytes produce errors, never panics).
//! * [`exec`] — cache-routed query execution: shared-descent window
//!   batches, best-first k-NN, deadline-checked joins.
//! * [`server`] — acceptor, connection threads, a per-tree batching
//!   stage, and a work-stealing worker pool; admission control sheds
//!   load past a bound, deadlines cancel cooperatively.
//! * [`telemetry`] — lock-free counters and a log-bucket latency
//!   histogram (p50/p95/p99) on the [`psj_obs`] registry, rendered as
//!   Prometheus text by the `Metrics` request.
//! * [`client`] — a blocking client for the protocol.
//! * [`loadgen`] — a seeded closed-loop load generator.

#![warn(missing_docs)]

pub mod client;
pub mod exec;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use client::{BackoffPolicy, Client, ClientError};
pub use exec::{JoinRun, Outcome, TreeSet, WindowQuery};
pub use loadgen::{LoadConfig, LoadReport};
pub use protocol::{
    EncodeError, Request, Response, ServerStats, StorageErrorKind, TreeInfo, ROUTER_SHARD,
};
pub use server::{ServeConfig, Server, ServerReport};
pub use telemetry::{Histogram, Telemetry};

#[cfg(test)]
mod e2e {
    use super::*;
    use psj_geom::Rect;
    use psj_rtree::{PagedTree, RTree};
    use std::sync::Arc;
    use std::time::Duration;

    fn tree(n: usize, offset: f64) -> Arc<PagedTree> {
        let mut t = RTree::new();
        for i in 0..n {
            let x = (i % 50) as f64 + offset;
            let y = (i / 50) as f64 + offset;
            t.insert(Rect::new(x, y, x + 0.9, y + 0.9), i as u64);
        }
        Arc::new(PagedTree::freeze(&t, |_| None))
    }

    fn start(batch_window_ms: u64) -> (Server, std::net::SocketAddr, Vec<Arc<PagedTree>>) {
        let trees = vec![tree(2000, 0.0), tree(1500, 0.4)];
        let cfg = ServeConfig {
            workers: 2,
            batch_window: Duration::from_millis(batch_window_ms),
            cache_pages: 512,
            join_threads: 2,
            read_timeout: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, trees.clone()).expect("bind loopback");
        let addr = server.local_addr();
        (server, addr, trees)
    }

    #[test]
    fn end_to_end_queries_match_direct_calls() {
        for batch_ms in [0, 2] {
            let (server, addr, trees) = start(batch_ms);
            let mut c = Client::connect(addr).unwrap();

            let info = c.info().unwrap();
            assert_eq!(info.len(), 2);
            assert_eq!(info[0].len, trees[0].len());

            let rect = Rect::new(3.0, 3.0, 17.0, 11.0);
            let mut got = c.window(0, rect, 0).unwrap();
            let mut want: Vec<u64> = trees[0].window_query(&rect).iter().map(|e| e.oid).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "window batch_ms={batch_ms}");

            let nn = c.nearest(1, 7.7, 9.1, 5, 0).unwrap();
            let direct = trees[1].nearest_neighbors(&psj_geom::Point::new(7.7, 9.1), 5);
            assert_eq!(nn.len(), direct.len());
            for ((gd, go), (wd, we)) in nn.iter().zip(&direct) {
                assert_eq!(gd, wd);
                assert_eq!(*go, we.oid);
            }

            let pairs = c.join(0, 1, true, 0).unwrap();
            let want = psj_core::join_refined(&trees[0], &trees[1]);
            assert_eq!(pairs.len(), want.len(), "join batch_ms={batch_ms}");

            let stats = c.stats().unwrap();
            assert!(stats.completed >= 3);
            let report = server.stop();
            assert_eq!(report.stats.queue_depth, 0, "drained at shutdown");
        }
    }

    #[test]
    fn unknown_tree_is_an_error_not_a_panic() {
        let (server, addr, _) = start(0);
        let mut c = Client::connect(addr).unwrap();
        let err = c.window(99, Rect::new(0.0, 0.0, 1.0, 1.0), 0);
        assert!(matches!(
            &err,
            Err(ClientError::Unexpected(r)) if matches!(**r, Response::Error(_))
        ));
        // The connection survives the error.
        assert!(c.stats().is_ok());
        server.stop();
    }

    #[test]
    fn client_shutdown_request_stops_wait() {
        let (server, addr, _) = start(2);
        let h = std::thread::spawn(move || server.wait());
        let mut c = Client::connect(addr).unwrap();
        c.window(0, Rect::new(0.0, 0.0, 5.0, 5.0), 0).unwrap();
        c.shutdown().unwrap();
        let report = h.join().unwrap();
        assert!(report.stats.completed >= 1);
        assert_eq!(report.stats.queue_depth, 0);
    }
}
