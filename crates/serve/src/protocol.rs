//! The wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! +-----------------+---------------------------+
//! | length: u32 LE  | payload (length bytes)    |
//! +-----------------+---------------------------+
//! payload = opcode: u8, then opcode-specific fields (LE, packed)
//! ```
//!
//! Request frames are capped at [`MAX_REQUEST_FRAME`] (64 KiB — every
//! request is a few dozen bytes, so a larger prefix is garbage or an
//! attack and is rejected before any allocation). Response frames are
//! capped at [`MAX_RESPONSE_FRAME`] (64 MiB — a full-extent window query or
//! a large join result set legitimately runs to megabytes).
//!
//! Decoding is total: any byte sequence either decodes or returns a
//! [`ProtoError`]; malformed payloads can not panic the peer. Trailing
//! bytes after a well-formed payload are an error (they indicate framing
//! corruption).

use psj_geom::Rect;
use std::io::{self, Read, Write};

/// Maximum request frame payload (bytes).
pub const MAX_REQUEST_FRAME: usize = 64 << 10;
/// Maximum response frame payload (bytes).
pub const MAX_RESPONSE_FRAME: usize = 64 << 20;

/// A protocol decode error (malformed frame payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(e: ProtoError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// All data entries of tree `tree` intersecting `rect`.
    Window {
        /// Index of the target tree (as listed by [`Request::Info`]).
        tree: u16,
        /// The query window.
        rect: Rect,
        /// Deadline in milliseconds from arrival; 0 = none.
        deadline_ms: u32,
    },
    /// The `k` nearest data entries of tree `tree` to `(x, y)`.
    Nearest {
        /// Index of the target tree.
        tree: u16,
        /// Query point x.
        x: f64,
        /// Query point y.
        y: f64,
        /// Number of neighbors.
        k: u32,
        /// Deadline in milliseconds from arrival; 0 = none.
        deadline_ms: u32,
    },
    /// Spatial join of two loaded trees.
    Join {
        /// Index of the left tree.
        tree_a: u16,
        /// Index of the right tree.
        tree_b: u16,
        /// Whether to run exact-geometry refinement.
        refine: bool,
        /// Deadline in milliseconds from arrival; 0 = none.
        deadline_ms: u32,
        /// Owned x-interval `[lo, hi)` for sharded joins: the server keeps
        /// only pairs whose reference point (`a.xl.max(b.xl)` — the lower-x
        /// edge of the MBR intersection) falls inside the interval, so a
        /// router fanning one join out across overlapping shards gets every
        /// cross-shard pair exactly once. Bounds may be infinite (the edge
        /// shards own half-lines); `None` keeps all pairs.
        owner: Option<(f64, f64)>,
    },
    /// Server statistics (histogram percentiles, queue depth, cache deltas).
    Stats,
    /// Prometheus-text metrics exposition (same counters as [`Request::Stats`]).
    Metrics,
    /// The loaded trees: MBRs, sizes, page counts.
    Info,
    /// Graceful shutdown: server acks, drains, prints its report and exits.
    Shutdown,
}

/// One tree's description in an [`Response::Info`] reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeInfo {
    /// MBR of the whole tree.
    pub mbr: Rect,
    /// Number of data entries.
    pub len: u64,
    /// Number of pages.
    pub pages: u32,
}

/// Server-side counters reported by [`Response::Stats`] and printed at
/// shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests shed with [`Response::Overloaded`] by admission control.
    pub shed: u64,
    /// Requests that missed their deadline.
    pub timeouts: u64,
    /// Malformed frames / payloads received.
    pub proto_errors: u64,
    /// Requests admitted but not yet answered, at report time.
    pub queue_depth: u32,
    /// Query batches executed (a batch of one still counts).
    pub batches: u64,
    /// Queries that travelled inside those batches.
    pub batched_queries: u64,
    /// Latency percentiles over completed requests, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Page-cache requests since server start.
    pub cache_requests: u64,
    /// Page-cache hits (local + remote + in-flight) since start.
    pub cache_hits: u64,
    /// Page-cache misses since start.
    pub cache_misses: u64,
    /// Page-cache evictions since start.
    pub cache_evictions: u64,
    /// Pages resident at report time.
    pub resident_pages: u32,
    /// Page-cache capacity.
    pub capacity_pages: u32,
    /// Requests answered with [`Response::Storage`] of kind
    /// [`StorageErrorKind::Corrupt`].
    pub storage_corrupt: u64,
    /// Requests answered with [`Response::Storage`] of kind
    /// [`StorageErrorKind::Unavailable`].
    pub storage_unavailable: u64,
    /// Distinct corrupt pages detected since start (checksum failures at
    /// cache fill plus pages poisoned at load time).
    pub corrupt_pages_detected: u64,
    /// Pages currently quarantined in the page cache.
    pub quarantined_pages: u64,
    /// Page fetches retried by the cache's retry policy since start.
    pub page_retries: u64,
    /// Worker panics caught and recovered (the pool kept serving).
    pub worker_panics: u64,
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests:   {} completed, {} shed, {} timed out, {} protocol errors, {} queued, {} worker panics",
            self.completed,
            self.shed,
            self.timeouts,
            self.proto_errors,
            self.queue_depth,
            self.worker_panics
        )?;
        writeln!(
            f,
            "latency:    p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
            self.p50_ms, self.p95_ms, self.p99_ms
        )?;
        writeln!(
            f,
            "batching:   {} batches, {} queries batched",
            self.batches, self.batched_queries
        )?;
        writeln!(
            f,
            "page cache: {} requests, {} hits, {} misses, {} evictions, {}/{} pages resident",
            self.cache_requests,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.resident_pages,
            self.capacity_pages
        )?;
        write!(
            f,
            "storage:    {} corrupt replies, {} unavailable replies, {} corrupt pages detected, {} quarantined, {} retries",
            self.storage_corrupt,
            self.storage_unavailable,
            self.corrupt_pages_detected,
            self.quarantined_pages,
            self.page_retries
        )
    }
}

/// Classification of a storage failure carried by [`Response::Storage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageErrorKind {
    /// Data failed its checksum (or the page was quarantined/poisoned):
    /// retrying will not help, the index needs repair.
    Corrupt,
    /// The page could not be read (transient or permanent I/O failure that
    /// survived retries); the data itself may be intact.
    Unavailable,
}

impl StorageErrorKind {
    fn to_wire(self) -> u8 {
        match self {
            StorageErrorKind::Corrupt => 0,
            StorageErrorKind::Unavailable => 1,
        }
    }

    fn from_wire(v: u8) -> Result<Self, ProtoError> {
        match v {
            0 => Ok(StorageErrorKind::Corrupt),
            1 => Ok(StorageErrorKind::Unavailable),
            _ => Err(ProtoError(format!("unknown storage error kind {v}"))),
        }
    }
}

impl std::fmt::Display for StorageErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageErrorKind::Corrupt => write!(f, "corrupt"),
            StorageErrorKind::Unavailable => write!(f, "unavailable"),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Window query result: object ids (unordered).
    Entries(Vec<u64>),
    /// Nearest query result: `(distance, oid)` ascending by distance.
    Neighbors(Vec<(f64, u64)>),
    /// Join result: `(oid_a, oid_b)` pairs (unordered).
    Pairs(Vec<(u64, u64)>),
    /// Server statistics.
    Stats(ServerStats),
    /// Loaded trees, tagged with the responding shard's id (0 for a
    /// standalone server, [`ROUTER_SHARD`] for a router's merged view).
    Info {
        /// Shard id of the responder.
        shard: u16,
        /// Per-tree descriptions.
        trees: Vec<TreeInfo>,
    },
    /// Admission control shed this request; retry later.
    Overloaded,
    /// The request's deadline expired before it finished.
    DeadlineExceeded,
    /// The request was malformed or referenced an unknown tree.
    Error(String),
    /// Acknowledges a [`Request::Shutdown`].
    ShutdownAck,
    /// The request touched storage that is corrupt or unreadable; other
    /// trees and requests are unaffected.
    Storage {
        /// Failure classification.
        kind: StorageErrorKind,
        /// Human-readable detail (page id, checksum context).
        msg: String,
    },
    /// Prometheus-text metrics exposition.
    Metrics(String),
    /// A scatter-gather answer with incomplete shard coverage: `inner`
    /// carries the data the reachable shards produced, `missing_shards`
    /// the ids that contributed nothing (down, timed out, or degraded).
    /// Routers return this instead of an error so one dead shard degrades
    /// answers rather than taking the cluster down.
    Partial {
        /// Shards whose data is absent from `inner`, ascending.
        missing_shards: Vec<u16>,
        /// The merged payload from the shards that did answer. On the wire
        /// this is restricted to the payload kinds ([`Response::Entries`],
        /// [`Response::Neighbors`], [`Response::Pairs`]) — nesting is one
        /// level deep by construction.
        inner: Box<Response>,
    },
}

/// Sentinel shard id used by a router when answering [`Request::Info`]
/// with its merged cluster view (real shards use their configured id).
pub const ROUTER_SHARD: u16 = 0xFFFF;

// Opcodes. Requests are < 0x80, responses >= 0x80.
const OP_WINDOW: u8 = 0x01;
const OP_NEAREST: u8 = 0x02;
const OP_JOIN: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_INFO: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_METRICS: u8 = 0x07;
const OP_ENTRIES: u8 = 0x81;
const OP_NEIGHBORS: u8 = 0x82;
const OP_PAIRS: u8 = 0x83;
const OP_STATS_REPORT: u8 = 0x84;
const OP_INFO_REPORT: u8 = 0x85;
const OP_OVERLOADED: u8 = 0x86;
const OP_DEADLINE: u8 = 0x87;
const OP_ERROR: u8 = 0x88;
const OP_SHUTDOWN_ACK: u8 = 0x89;
const OP_STORAGE: u8 = 0x8A;
const OP_METRICS_REPORT: u8 = 0x8B;
const OP_PARTIAL: u8 = 0x8C;

/// Bounds-checked little-endian reader over a frame payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rect(&mut self) -> Result<Rect, ProtoError> {
        let (xl, yl, xu, yu) = (self.f64()?, self.f64()?, self.f64()?, self.f64()?);
        if !(xl.is_finite() && yl.is_finite() && xu.is_finite() && yu.is_finite()) {
            return Err(ProtoError("non-finite rectangle coordinate".into()));
        }
        if xl > xu || yl > yu {
            return Err(ProtoError(format!(
                "degenerate rectangle [{xl}, {yl}, {xu}, {yu}]"
            )));
        }
        Ok(Rect::new(xl, yl, xu, yu))
    }

    /// A collection length, sanity-bounded so a hostile count cannot force
    /// a huge allocation before the (bounds-checked) element reads fail.
    fn len(&mut self, elem_bytes: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(elem_bytes) > remaining {
            return Err(ProtoError(format!(
                "count {n} x {elem_bytes} bytes exceeds remaining payload {remaining}"
            )));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_rect(out: &mut Vec<u8>, r: &Rect) {
    put_f64(out, r.xl);
    put_f64(out, r.yl);
    put_f64(out, r.xu);
    put_f64(out, r.yu);
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match self {
            Request::Window {
                tree,
                rect,
                deadline_ms,
            } => {
                out.push(OP_WINDOW);
                put_u16(&mut out, *tree);
                put_rect(&mut out, rect);
                put_u32(&mut out, *deadline_ms);
            }
            Request::Nearest {
                tree,
                x,
                y,
                k,
                deadline_ms,
            } => {
                out.push(OP_NEAREST);
                put_u16(&mut out, *tree);
                put_f64(&mut out, *x);
                put_f64(&mut out, *y);
                put_u32(&mut out, *k);
                put_u32(&mut out, *deadline_ms);
            }
            Request::Join {
                tree_a,
                tree_b,
                refine,
                deadline_ms,
                owner,
            } => {
                out.push(OP_JOIN);
                put_u16(&mut out, *tree_a);
                put_u16(&mut out, *tree_b);
                out.push(u8::from(*refine));
                put_u32(&mut out, *deadline_ms);
                match owner {
                    Some((lo, hi)) => {
                        out.push(1);
                        put_f64(&mut out, *lo);
                        put_f64(&mut out, *hi);
                    }
                    None => out.push(0),
                }
            }
            Request::Stats => out.push(OP_STATS),
            Request::Metrics => out.push(OP_METRICS),
            Request::Info => out.push(OP_INFO),
            Request::Shutdown => out.push(OP_SHUTDOWN),
        }
        out
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cur::new(payload);
        let req = match c.u8()? {
            OP_WINDOW => Request::Window {
                tree: c.u16()?,
                rect: c.rect()?,
                deadline_ms: c.u32()?,
            },
            OP_NEAREST => {
                let tree = c.u16()?;
                let (x, y) = (c.f64()?, c.f64()?);
                if !(x.is_finite() && y.is_finite()) {
                    return Err(ProtoError("non-finite query point".into()));
                }
                Request::Nearest {
                    tree,
                    x,
                    y,
                    k: c.u32()?,
                    deadline_ms: c.u32()?,
                }
            }
            OP_JOIN => {
                let (tree_a, tree_b) = (c.u16()?, c.u16()?);
                let refine = c.u8()? != 0;
                let deadline_ms = c.u32()?;
                // The owner interval is an x-slab boundary pair: infinities
                // are legitimate (edge shards own half-lines), NaN is not.
                let owner = match c.u8()? {
                    0 => None,
                    1 => {
                        let (lo, hi) = (c.f64()?, c.f64()?);
                        if lo.is_nan() || hi.is_nan() {
                            return Err(ProtoError("NaN join owner bound".into()));
                        }
                        if lo >= hi {
                            return Err(ProtoError(format!(
                                "empty join owner interval [{lo}, {hi})"
                            )));
                        }
                        Some((lo, hi))
                    }
                    v => return Err(ProtoError(format!("bad join owner flag {v}"))),
                };
                Request::Join {
                    tree_a,
                    tree_b,
                    refine,
                    deadline_ms,
                    owner,
                }
            }
            OP_STATS => Request::Stats,
            OP_METRICS => Request::Metrics,
            OP_INFO => Request::Info,
            OP_SHUTDOWN => Request::Shutdown,
            op => return Err(ProtoError(format!("unknown request opcode {op:#04x}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

/// A response collection too large for the wire format's u32 counts.
///
/// The frame layout prefixes every variable-length section with a `u32`
/// count; encoding a larger collection with `as u32` would silently wrap
/// the count and desync the stream (the receiver would read the remaining
/// elements as the next frame's header). Encoders surface this instead,
/// and servers map it to a [`Response::Error`] via
/// [`Response::encode_or_error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// Which section overflowed (e.g. `"pairs"`).
    pub what: &'static str,
    /// The collection's actual length.
    pub len: usize,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "response too large for wire format: {} {} exceed the u32 count limit ({})",
            self.len,
            self.what,
            u32::MAX
        )
    }
}

impl std::error::Error for EncodeError {}

/// Narrows a collection length to the wire's `u32` count, surfacing
/// overflow as a typed error instead of wrapping.
fn wire_count(len: usize, what: &'static str) -> Result<u32, EncodeError> {
    u32::try_from(len).map_err(|_| EncodeError { what, len })
}

impl Response {
    /// Encodes the response into a frame payload.
    ///
    /// Fails with [`EncodeError`] when a section exceeds the wire format's
    /// `u32` count limit — the caller decides whether to degrade to a
    /// [`Response::Error`] frame ([`Response::encode_or_error`]) or to
    /// propagate.
    pub fn try_encode(&self) -> Result<Vec<u8>, EncodeError> {
        let mut out = Vec::with_capacity(32);
        match self {
            Response::Entries(oids) => {
                out.push(OP_ENTRIES);
                put_u32(&mut out, wire_count(oids.len(), "entries")?);
                for oid in oids {
                    put_u64(&mut out, *oid);
                }
            }
            Response::Neighbors(nn) => {
                out.push(OP_NEIGHBORS);
                put_u32(&mut out, wire_count(nn.len(), "neighbors")?);
                for (d, oid) in nn {
                    put_f64(&mut out, *d);
                    put_u64(&mut out, *oid);
                }
            }
            Response::Pairs(pairs) => {
                out.push(OP_PAIRS);
                put_u32(&mut out, wire_count(pairs.len(), "pairs")?);
                for (a, b) in pairs {
                    put_u64(&mut out, *a);
                    put_u64(&mut out, *b);
                }
            }
            Response::Stats(s) => {
                out.push(OP_STATS_REPORT);
                put_u64(&mut out, s.completed);
                put_u64(&mut out, s.shed);
                put_u64(&mut out, s.timeouts);
                put_u64(&mut out, s.proto_errors);
                put_u32(&mut out, s.queue_depth);
                put_u64(&mut out, s.batches);
                put_u64(&mut out, s.batched_queries);
                put_f64(&mut out, s.p50_ms);
                put_f64(&mut out, s.p95_ms);
                put_f64(&mut out, s.p99_ms);
                put_u64(&mut out, s.cache_requests);
                put_u64(&mut out, s.cache_hits);
                put_u64(&mut out, s.cache_misses);
                put_u64(&mut out, s.cache_evictions);
                put_u32(&mut out, s.resident_pages);
                put_u32(&mut out, s.capacity_pages);
                put_u64(&mut out, s.storage_corrupt);
                put_u64(&mut out, s.storage_unavailable);
                put_u64(&mut out, s.corrupt_pages_detected);
                put_u64(&mut out, s.quarantined_pages);
                put_u64(&mut out, s.page_retries);
                put_u64(&mut out, s.worker_panics);
            }
            Response::Info { shard, trees } => {
                out.push(OP_INFO_REPORT);
                put_u16(&mut out, *shard);
                put_u32(&mut out, wire_count(trees.len(), "trees")?);
                for t in trees {
                    put_rect(&mut out, &t.mbr);
                    put_u64(&mut out, t.len);
                    put_u32(&mut out, t.pages);
                }
            }
            Response::Overloaded => out.push(OP_OVERLOADED),
            Response::DeadlineExceeded => out.push(OP_DEADLINE),
            Response::Error(msg) => {
                out.push(OP_ERROR);
                let bytes = msg.as_bytes();
                put_u32(&mut out, wire_count(bytes.len(), "error bytes")?);
                out.extend_from_slice(bytes);
            }
            Response::ShutdownAck => out.push(OP_SHUTDOWN_ACK),
            Response::Storage { kind, msg } => {
                out.push(OP_STORAGE);
                out.push(kind.to_wire());
                let bytes = msg.as_bytes();
                put_u32(&mut out, wire_count(bytes.len(), "storage msg bytes")?);
                out.extend_from_slice(bytes);
            }
            Response::Metrics(text) => {
                out.push(OP_METRICS_REPORT);
                let bytes = text.as_bytes();
                put_u32(&mut out, wire_count(bytes.len(), "metrics bytes")?);
                out.extend_from_slice(bytes);
            }
            Response::Partial {
                missing_shards,
                inner,
            } => {
                out.push(OP_PARTIAL);
                put_u32(
                    &mut out,
                    wire_count(missing_shards.len(), "missing shards")?,
                );
                for s in missing_shards {
                    put_u16(&mut out, *s);
                }
                let nested = inner.try_encode()?;
                put_u32(&mut out, wire_count(nested.len(), "nested payload bytes")?);
                out.extend_from_slice(&nested);
            }
        }
        Ok(out)
    }

    /// Encodes for a server's write path: an over-limit response degrades
    /// to a [`Response::Error`] frame carrying the [`EncodeError`] text, so
    /// the client sees a typed failure instead of a desynced stream.
    pub fn encode_or_error(&self) -> Vec<u8> {
        self.try_encode().unwrap_or_else(|e| {
            Response::Error(e.to_string())
                .try_encode()
                .expect("error frame is far below the wire limits")
        })
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cur::new(payload);
        let resp = match c.u8()? {
            OP_ENTRIES => {
                let n = c.len(8)?;
                let mut oids = Vec::with_capacity(n);
                for _ in 0..n {
                    oids.push(c.u64()?);
                }
                Response::Entries(oids)
            }
            OP_NEIGHBORS => {
                let n = c.len(16)?;
                let mut nn = Vec::with_capacity(n);
                for _ in 0..n {
                    nn.push((c.f64()?, c.u64()?));
                }
                Response::Neighbors(nn)
            }
            OP_PAIRS => {
                let n = c.len(16)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((c.u64()?, c.u64()?));
                }
                Response::Pairs(pairs)
            }
            OP_STATS_REPORT => Response::Stats(ServerStats {
                completed: c.u64()?,
                shed: c.u64()?,
                timeouts: c.u64()?,
                proto_errors: c.u64()?,
                queue_depth: c.u32()?,
                batches: c.u64()?,
                batched_queries: c.u64()?,
                p50_ms: c.f64()?,
                p95_ms: c.f64()?,
                p99_ms: c.f64()?,
                cache_requests: c.u64()?,
                cache_hits: c.u64()?,
                cache_misses: c.u64()?,
                cache_evictions: c.u64()?,
                resident_pages: c.u32()?,
                capacity_pages: c.u32()?,
                storage_corrupt: c.u64()?,
                storage_unavailable: c.u64()?,
                corrupt_pages_detected: c.u64()?,
                quarantined_pages: c.u64()?,
                page_retries: c.u64()?,
                worker_panics: c.u64()?,
            }),
            OP_INFO_REPORT => {
                let shard = c.u16()?;
                let n = c.len(44)?;
                let mut trees = Vec::with_capacity(n);
                for _ in 0..n {
                    trees.push(TreeInfo {
                        mbr: c.rect()?,
                        len: c.u64()?,
                        pages: c.u32()?,
                    });
                }
                Response::Info { shard, trees }
            }
            OP_OVERLOADED => Response::Overloaded,
            OP_DEADLINE => Response::DeadlineExceeded,
            OP_ERROR => {
                let n = c.len(1)?;
                let bytes = c.take(n)?;
                Response::Error(
                    std::str::from_utf8(bytes)
                        .map_err(|_| ProtoError("error message is not UTF-8".into()))?
                        .to_string(),
                )
            }
            OP_SHUTDOWN_ACK => Response::ShutdownAck,
            OP_STORAGE => {
                let kind = StorageErrorKind::from_wire(c.u8()?)?;
                let n = c.len(1)?;
                let bytes = c.take(n)?;
                Response::Storage {
                    kind,
                    msg: std::str::from_utf8(bytes)
                        .map_err(|_| ProtoError("storage message is not UTF-8".into()))?
                        .to_string(),
                }
            }
            OP_METRICS_REPORT => {
                let n = c.len(1)?;
                let bytes = c.take(n)?;
                Response::Metrics(
                    std::str::from_utf8(bytes)
                        .map_err(|_| ProtoError("metrics text is not UTF-8".into()))?
                        .to_string(),
                )
            }
            OP_PARTIAL => {
                let n = c.len(2)?;
                let mut missing_shards = Vec::with_capacity(n);
                for _ in 0..n {
                    missing_shards.push(c.u16()?);
                }
                let nested_len = c.len(1)?;
                let nested = c.take(nested_len)?;
                // Only data payloads may nest: decoding stays total (no
                // recursion a hostile frame could deepen) and a Partial
                // wrapping Partial/Error/etc. is framing corruption.
                match nested.first() {
                    Some(&op) if op == OP_ENTRIES || op == OP_NEIGHBORS || op == OP_PAIRS => {}
                    Some(&op) => {
                        return Err(ProtoError(format!(
                            "partial response wraps non-payload opcode {op:#04x}"
                        )))
                    }
                    None => return Err(ProtoError("empty nested payload in partial".into())),
                }
                Response::Partial {
                    missing_shards,
                    inner: Box::new(Response::decode(nested)?),
                }
            }
            op => return Err(ProtoError(format!("unknown response opcode {op:#04x}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Writes one frame (length prefix + payload).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `Ok(None)` on clean EOF at a frame
/// boundary (peer closed the connection), an `InvalidData` error when the
/// length prefix exceeds `max` (the stream cannot be resynchronized), and
/// any other I/O error as-is (including `UnexpectedEof` for a frame
/// truncated mid-payload).
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds maximum {max}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let enc = Request::encode(&req);
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let enc = resp.try_encode().unwrap();
        assert_eq!(Response::decode(&enc).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Window {
            tree: 3,
            rect: Rect::new(-1.5, 0.0, 2.5, 4.0),
            deadline_ms: 250,
        });
        roundtrip_req(Request::Nearest {
            tree: 0,
            x: 1.25,
            y: -9.0,
            k: 10,
            deadline_ms: 0,
        });
        roundtrip_req(Request::Join {
            tree_a: 0,
            tree_b: 1,
            refine: true,
            deadline_ms: 10_000,
            owner: None,
        });
        roundtrip_req(Request::Join {
            tree_a: 2,
            tree_b: 3,
            refine: false,
            deadline_ms: 0,
            owner: Some((f64::NEG_INFINITY, 4.5)),
        });
        roundtrip_req(Request::Join {
            tree_a: 0,
            tree_b: 0,
            refine: true,
            deadline_ms: 7,
            owner: Some((-1.0, f64::INFINITY)),
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Info);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Entries(vec![1, 2, 3, u64::MAX]));
        roundtrip_resp(Response::Neighbors(vec![(0.5, 7), (1.5, 9)]));
        roundtrip_resp(Response::Pairs(vec![(1, 2), (3, 4)]));
        roundtrip_resp(Response::Stats(ServerStats {
            completed: 10,
            shed: 2,
            p99_ms: 1.5,
            storage_corrupt: 3,
            corrupt_pages_detected: 5,
            quarantined_pages: 2,
            page_retries: 17,
            worker_panics: 1,
            ..Default::default()
        }));
        roundtrip_resp(Response::Info {
            shard: 3,
            trees: vec![TreeInfo {
                mbr: Rect::new(0.0, 0.0, 1.0, 1.0),
                len: 42,
                pages: 7,
            }],
        });
        roundtrip_resp(Response::Partial {
            missing_shards: vec![1, 4],
            inner: Box::new(Response::Entries(vec![9, 10])),
        });
        roundtrip_resp(Response::Partial {
            missing_shards: vec![],
            inner: Box::new(Response::Neighbors(vec![(0.25, 3)])),
        });
        roundtrip_resp(Response::Partial {
            missing_shards: vec![0, 1, 2],
            inner: Box::new(Response::Pairs(vec![])),
        });
        roundtrip_resp(Response::Overloaded);
        roundtrip_resp(Response::DeadlineExceeded);
        roundtrip_resp(Response::Error("unknown tree 9".into()));
        roundtrip_resp(Response::ShutdownAck);
        roundtrip_resp(Response::Storage {
            kind: StorageErrorKind::Corrupt,
            msg: "page p7 checksum mismatch".into(),
        });
        roundtrip_resp(Response::Storage {
            kind: StorageErrorKind::Unavailable,
            msg: "page p3: i/o error".into(),
        });
        roundtrip_resp(Response::Metrics(
            "# TYPE psj_requests_completed_total counter\npsj_requests_completed_total 7\n".into(),
        ));
    }

    #[test]
    fn storage_response_rejects_bad_kind() {
        let mut enc = vec![OP_STORAGE, 7];
        enc.extend_from_slice(&0u32.to_le_bytes());
        assert!(Response::decode(&enc).is_err());
    }

    #[test]
    fn garbage_payloads_decode_to_errors_not_panics() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xff]).is_err());
        assert!(
            Request::decode(&[OP_WINDOW, 1]).is_err(),
            "truncated window"
        );
        // Trailing bytes are rejected.
        let mut enc = Request::Stats.encode();
        enc.push(0);
        assert!(Request::decode(&enc).is_err());
        // Hostile element count.
        let mut resp = vec![OP_ENTRIES];
        resp.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Response::decode(&resp).is_err());
    }

    #[test]
    fn join_owner_bounds_validated() {
        fn join_with_owner(lo: f64, hi: f64) -> Vec<u8> {
            let mut enc = Request::Join {
                tree_a: 0,
                tree_b: 1,
                refine: false,
                deadline_ms: 0,
                owner: Some((1.0, 2.0)),
            }
            .encode();
            let n = enc.len();
            enc[n - 16..n - 8].copy_from_slice(&lo.to_le_bytes());
            enc[n - 8..].copy_from_slice(&hi.to_le_bytes());
            enc
        }
        assert!(Request::decode(&join_with_owner(f64::NAN, 1.0)).is_err());
        assert!(Request::decode(&join_with_owner(0.0, f64::NAN)).is_err());
        assert!(
            Request::decode(&join_with_owner(2.0, 2.0)).is_err(),
            "empty"
        );
        assert!(
            Request::decode(&join_with_owner(3.0, 2.0)).is_err(),
            "inverted"
        );
        // Infinite bounds are the edge shards' half-lines: accepted.
        assert!(Request::decode(&join_with_owner(f64::NEG_INFINITY, f64::INFINITY)).is_ok());
        // A bad flag byte is rejected.
        let mut enc = Request::Join {
            tree_a: 0,
            tree_b: 1,
            refine: false,
            deadline_ms: 0,
            owner: None,
        }
        .encode();
        *enc.last_mut().unwrap() = 7;
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn wire_count_is_exact_at_the_u32_boundary() {
        // The count check, factored out so the boundary is testable without
        // materializing a 32 GiB pair vector.
        assert_eq!(wire_count(0, "pairs"), Ok(0));
        assert_eq!(wire_count(u32::MAX as usize, "pairs"), Ok(u32::MAX));
        let err = wire_count(u32::MAX as usize + 1, "pairs").unwrap_err();
        assert_eq!(err.what, "pairs");
        assert_eq!(err.len, u32::MAX as usize + 1);
        assert!(
            err.to_string().contains("pairs") && err.to_string().contains("u32"),
            "error names the section and the limit: {err}"
        );
    }

    #[test]
    fn encode_or_error_degrades_to_typed_error_frame() {
        // A real overflow needs a >u32::MAX-element vector, so exercise the
        // degradation path with the EncodeError text a server would embed.
        let e = EncodeError {
            what: "pairs",
            len: u32::MAX as usize + 1,
        };
        let frame = Response::Error(e.to_string()).encode_or_error();
        match Response::decode(&frame).unwrap() {
            Response::Error(msg) => assert!(msg.contains("pairs"), "{msg}"),
            other => panic!("expected Error frame, got {other:?}"),
        }
        // Ordinary responses are unaffected.
        let ok = Response::Pairs(vec![(1, 2)]).encode_or_error();
        assert_eq!(
            Response::decode(&ok).unwrap(),
            Response::Pairs(vec![(1, 2)])
        );
    }

    #[test]
    fn partial_rejects_non_payload_nesting() {
        fn partial_wrapping(inner: &Response) -> Vec<u8> {
            let nested = inner.try_encode().unwrap();
            let mut enc = vec![OP_PARTIAL];
            enc.extend_from_slice(&1u32.to_le_bytes());
            enc.extend_from_slice(&2u16.to_le_bytes());
            enc.extend_from_slice(&(nested.len() as u32).to_le_bytes());
            enc.extend_from_slice(&nested);
            enc
        }
        // Partial-in-Partial (unbounded nesting) is rejected.
        let nested_partial = Response::Partial {
            missing_shards: vec![1],
            inner: Box::new(Response::Entries(vec![])),
        };
        assert!(Response::decode(&partial_wrapping(&nested_partial)).is_err());
        // So are typed errors and control responses.
        assert!(Response::decode(&partial_wrapping(&Response::Overloaded)).is_err());
        assert!(Response::decode(&partial_wrapping(&Response::Error("x".into()))).is_err());
        // An empty nested payload is rejected.
        let mut enc = vec![OP_PARTIAL];
        enc.extend_from_slice(&0u32.to_le_bytes());
        enc.extend_from_slice(&0u32.to_le_bytes());
        assert!(Response::decode(&enc).is_err());
    }

    #[test]
    fn non_finite_and_degenerate_rects_rejected() {
        let mut enc = vec![OP_WINDOW];
        enc.extend_from_slice(&1u16.to_le_bytes());
        for v in [f64::NAN, 0.0, 1.0, 1.0] {
            enc.extend_from_slice(&v.to_le_bytes());
        }
        enc.extend_from_slice(&0u32.to_le_bytes());
        assert!(Request::decode(&enc).is_err());

        let mut enc = vec![OP_WINDOW];
        enc.extend_from_slice(&1u16.to_le_bytes());
        for v in [5.0f64, 0.0, 1.0, 1.0] {
            // xl > xu
            enc.extend_from_slice(&v.to_le_bytes());
        }
        enc.extend_from_slice(&0u32.to_le_bytes());
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn frames_roundtrip_and_enforce_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[1, 2, 3]).unwrap();
        write_frame(&mut buf, &[]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 16).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(read_frame(&mut r, 16).unwrap(), Some(vec![]));
        assert_eq!(read_frame(&mut r, 16).unwrap(), None, "clean EOF");

        // Oversized length prefix.
        let huge = (MAX_REQUEST_FRAME as u32 + 1).to_le_bytes();
        let mut r = &huge[..];
        let err = read_frame(&mut r, MAX_REQUEST_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncated payload.
        let mut buf = 8u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        let mut r = &buf[..];
        let err = read_frame(&mut r, 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Truncated prefix.
        let mut r = &[7u8, 0][..];
        let err = read_frame(&mut r, 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
