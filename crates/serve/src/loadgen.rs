//! A closed-loop load generator for psj-serve.
//!
//! `clients` threads each hold one connection and issue
//! `requests_per_client` requests back-to-back (closed loop: the next
//! request leaves when the previous response arrives, so offered load
//! adapts to server latency). The workload mix, query placement, and
//! deadlines are driven by a seeded RNG — the same seed reproduces the
//! same request sequence.
//!
//! Latency is measured client-side (send to receive) and reported as
//! exact percentiles over the collected samples, alongside the server's
//! own histogram-derived stats.

use crate::client::{Client, ClientError};
use crate::protocol::{Response, ServerStats, TreeInfo};
use psj_geom::Rect;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent client connections (threads).
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// RNG seed; client `i` uses `seed + i`.
    pub seed: u64,
    /// Fraction of requests that are window queries.
    pub window_frac: f64,
    /// Fraction that are nearest-neighbor queries (the remainder after
    /// windows and nearests are joins).
    pub nearest_frac: f64,
    /// Per-request deadline in ms; 0 = none.
    pub deadline_ms: u32,
    /// `k` for nearest queries.
    pub k: u32,
    /// Window side length as a fraction of the tree extent per axis.
    pub window_extent: f64,
    /// Reconnect with bounded backoff on transport failure instead of
    /// ending the client's run (useful against a router whose shards
    /// may drop connections mid-load).
    pub reconnect: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7878)),
            clients: 4,
            requests_per_client: 250,
            seed: 42,
            window_frac: 0.7,
            nearest_frac: 0.3,
            deadline_ms: 0,
            k: 10,
            window_extent: 0.05,
            reconnect: false,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Clients × requests-per-client.
    pub offered: u64,
    /// Requests answered with a result payload.
    pub completed: u64,
    /// Requests answered with a `Partial` payload (degraded cluster
    /// reads; counted in `completed` as well).
    pub partials: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    /// Requests answered `DeadlineExceeded`.
    pub timeouts: u64,
    /// Requests answered with a typed storage error (corrupt or
    /// unavailable pages).
    pub storage: u64,
    /// Transport/protocol failures observed client-side.
    pub errors: u64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Exact client-side latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// The server's own stats, fetched after the run.
    pub server: Option<ServerStats>,
}

impl LoadReport {
    /// Serializes the report (flat JSON object, server stats nested).
    pub fn to_json(&self, cfg: &LoadConfig) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"clients\": {},\n", cfg.clients));
        s.push_str(&format!(
            "  \"requests_per_client\": {},\n",
            cfg.requests_per_client
        ));
        s.push_str(&format!("  \"seed\": {},\n", cfg.seed));
        s.push_str(&format!("  \"window_frac\": {},\n", cfg.window_frac));
        s.push_str(&format!("  \"nearest_frac\": {},\n", cfg.nearest_frac));
        s.push_str(&format!("  \"deadline_ms\": {},\n", cfg.deadline_ms));
        s.push_str(&format!("  \"offered\": {},\n", self.offered));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"partials\": {},\n", self.partials));
        s.push_str(&format!("  \"shed\": {},\n", self.shed));
        s.push_str(&format!("  \"timeouts\": {},\n", self.timeouts));
        s.push_str(&format!("  \"storage\": {},\n", self.storage));
        s.push_str(&format!("  \"errors\": {},\n", self.errors));
        s.push_str(&format!("  \"elapsed_s\": {:.6},\n", self.elapsed_s));
        s.push_str(&format!(
            "  \"throughput_rps\": {:.3},\n",
            self.throughput_rps
        ));
        s.push_str(&format!("  \"p50_ms\": {:.6},\n", self.p50_ms));
        s.push_str(&format!("  \"p95_ms\": {:.6},\n", self.p95_ms));
        s.push_str(&format!("  \"p99_ms\": {:.6}", self.p99_ms));
        if let Some(sv) = &self.server {
            s.push_str(",\n  \"server\": {\n");
            s.push_str(&format!("    \"completed\": {},\n", sv.completed));
            s.push_str(&format!("    \"shed\": {},\n", sv.shed));
            s.push_str(&format!("    \"timeouts\": {},\n", sv.timeouts));
            s.push_str(&format!("    \"proto_errors\": {},\n", sv.proto_errors));
            s.push_str(&format!("    \"batches\": {},\n", sv.batches));
            s.push_str(&format!(
                "    \"batched_queries\": {},\n",
                sv.batched_queries
            ));
            s.push_str(&format!("    \"p50_ms\": {:.6},\n", sv.p50_ms));
            s.push_str(&format!("    \"p95_ms\": {:.6},\n", sv.p95_ms));
            s.push_str(&format!("    \"p99_ms\": {:.6},\n", sv.p99_ms));
            s.push_str(&format!("    \"cache_requests\": {},\n", sv.cache_requests));
            s.push_str(&format!("    \"cache_hits\": {},\n", sv.cache_hits));
            s.push_str(&format!("    \"cache_misses\": {},\n", sv.cache_misses));
            s.push_str(&format!(
                "    \"cache_evictions\": {},\n",
                sv.cache_evictions
            ));
            s.push_str(&format!("    \"resident_pages\": {},\n", sv.resident_pages));
            s.push_str(&format!("    \"capacity_pages\": {},\n", sv.capacity_pages));
            s.push_str(&format!(
                "    \"storage_corrupt\": {},\n",
                sv.storage_corrupt
            ));
            s.push_str(&format!(
                "    \"storage_unavailable\": {},\n",
                sv.storage_unavailable
            ));
            s.push_str(&format!(
                "    \"corrupt_pages_detected\": {},\n",
                sv.corrupt_pages_detected
            ));
            s.push_str(&format!(
                "    \"quarantined_pages\": {},\n",
                sv.quarantined_pages
            ));
            s.push_str(&format!("    \"page_retries\": {}\n", sv.page_retries));
            s.push_str("  }");
        }
        s.push_str("\n}\n");
        s
    }
}

#[derive(Default)]
struct ClientOutcome {
    completed: u64,
    partials: u64,
    shed: u64,
    timeouts: u64,
    storage: u64,
    errors: u64,
    latencies_ms: Vec<f64>,
}

/// Sorts latency samples with a total order. `partial_cmp(..).unwrap()`
/// here would panic the whole load run if any sample were NaN (e.g. a
/// future clock-math regression); `total_cmp` sorts NaN to the end
/// instead, leaving the finite percentiles intact.
fn sort_latencies(samples: &mut [f64]) {
    samples.sort_by(f64::total_cmp);
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn random_window(rng: &mut StdRng, mbr: &Rect, extent: f64) -> Rect {
    let w = (mbr.xu - mbr.xl).max(f64::MIN_POSITIVE) * extent;
    let h = (mbr.yu - mbr.yl).max(f64::MIN_POSITIVE) * extent;
    let x = mbr.xl + rng.random::<f64>() * (mbr.xu - mbr.xl - w).max(0.0);
    let y = mbr.yl + rng.random::<f64>() * (mbr.yu - mbr.yl - h).max(0.0);
    Rect::new(x, y, x + w, y + h)
}

fn client_loop(cfg: &LoadConfig, id: usize, trees: &[TreeInfo]) -> io::Result<ClientOutcome> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(id as u64));
    let mut client = Client::connect_timeout(&cfg.addr, Duration::from_secs(30))?;
    if cfg.reconnect {
        client.set_reconnect(Some(crate::client::BackoffPolicy {
            jitter_seed: cfg.seed.wrapping_add(id as u64),
            ..Default::default()
        }));
    }
    let mut out = ClientOutcome {
        latencies_ms: Vec::with_capacity(cfg.requests_per_client),
        ..Default::default()
    };
    for _ in 0..cfg.requests_per_client {
        let tree = rng.random_range(0..trees.len()) as u16;
        let info = &trees[tree as usize];
        let roll: f64 = rng.random();
        let start = Instant::now();
        let result = if roll < cfg.window_frac {
            let rect = random_window(&mut rng, &info.mbr, cfg.window_extent);
            client.window(tree, rect, cfg.deadline_ms).map(|_| ())
        } else if roll < cfg.window_frac + cfg.nearest_frac {
            let x = info.mbr.xl + rng.random::<f64>() * (info.mbr.xu - info.mbr.xl);
            let y = info.mbr.yl + rng.random::<f64>() * (info.mbr.yu - info.mbr.yl);
            client
                .nearest(tree, x, y, cfg.k, cfg.deadline_ms)
                .map(|_| ())
        } else {
            let other = if trees.len() > 1 { 1 } else { 0 };
            client.join(0, other, true, cfg.deadline_ms).map(|_| ())
        };
        let ms = start.elapsed().as_secs_f64() * 1_000.0;
        match result {
            Ok(()) => {
                out.completed += 1;
                out.latencies_ms.push(ms);
            }
            Err(ClientError::Unexpected(r)) => match *r {
                // A degraded cluster read still carries a payload; it
                // counts as completed (and separately as partial).
                Response::Partial { .. } => {
                    out.completed += 1;
                    out.partials += 1;
                    out.latencies_ms.push(ms);
                }
                Response::Overloaded => out.shed += 1,
                Response::DeadlineExceeded => {
                    out.timeouts += 1;
                    out.latencies_ms.push(ms);
                }
                Response::Storage { .. } => {
                    out.storage += 1;
                    out.latencies_ms.push(ms);
                }
                _ => out.errors += 1,
            },
            Err(ClientError::Io(e)) => {
                // A broken transport ends this client's run.
                out.errors += 1;
                let _ = e;
                break;
            }
        }
    }
    Ok(out)
}

/// Runs the closed-loop workload and aggregates the outcome.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    // One probe connection discovers the loaded trees (query placement
    // needs their MBRs) before any load is offered.
    let trees = {
        let mut probe = Client::connect_timeout(&cfg.addr, Duration::from_secs(10))?;
        probe
            .info()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    };
    if trees.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "server reports no trees",
        ));
    }

    let started = Instant::now();
    let outcomes: Vec<io::Result<ClientOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|id| {
                let trees = &trees;
                scope.spawn(move || client_loop(cfg, id, trees))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut total = ClientOutcome::default();
    let mut io_failures = 0u64;
    for o in outcomes {
        match o {
            Ok(o) => {
                total.completed += o.completed;
                total.partials += o.partials;
                total.shed += o.shed;
                total.timeouts += o.timeouts;
                total.storage += o.storage;
                total.errors += o.errors;
                total.latencies_ms.extend(o.latencies_ms);
            }
            Err(_) => io_failures += 1,
        }
    }
    sort_latencies(&mut total.latencies_ms);

    let server = Client::connect_timeout(&cfg.addr, Duration::from_secs(10))
        .ok()
        .and_then(|mut c| c.stats().ok());

    Ok(LoadReport {
        offered: (cfg.clients * cfg.requests_per_client) as u64,
        completed: total.completed,
        partials: total.partials,
        shed: total.shed,
        timeouts: total.timeouts,
        storage: total.storage,
        errors: total.errors + io_failures,
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            total.completed as f64 / elapsed_s
        } else {
            0.0
        },
        p50_ms: percentile(&total.latencies_ms, 0.50),
        p95_ms: percentile(&total.latencies_ms, 0.95),
        p99_ms: percentile(&total.latencies_ms, 0.99),
        server,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sort_survives_nan_samples() {
        // Regression: this sort used partial_cmp(..).unwrap(), which
        // panics on any NaN sample and lost the entire load report.
        let mut samples = vec![3.5, f64::NAN, 0.25, f64::INFINITY, 1.0];
        sort_latencies(&mut samples);
        assert_eq!(&samples[..3], &[0.25, 1.0, 3.5]);
        assert_eq!(samples[3], f64::INFINITY);
        assert!(samples[4].is_nan(), "NaN sorts to the end under total_cmp");
        assert_eq!(percentile(&samples, 0.5), 3.5);
    }

    #[test]
    fn percentile_handles_empty_and_singleton() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }
}
