//! Geometric primitives and algorithms underlying R-tree based spatial join
//! processing.
//!
//! This crate provides the building blocks used by the rest of the workspace:
//!
//! * [`Point`], [`Rect`] — points and axis-parallel rectangles (MBRs) with the
//!   metrics the R\*-tree needs (area, margin, enlargement, overlap),
//! * [`Segment`], [`Polyline`], [`Polygon`] — exact object geometry together
//!   with intersection predicates used in the refinement step,
//! * [`sweep`] — the restricted plane-sweep that computes all intersecting
//!   pairs between two x-sorted rectangle sequences in *local plane-sweep
//!   order* (Brinkhoff/Kriegel/Seeger, SIGMOD '93 / ICDE '96 §2.2).
//!
//! All coordinates are `f64`. The crate is deliberately free of I/O and
//! threading concerns.

#![warn(missing_docs)]

pub mod distance;
pub mod point;
pub mod polygon;
pub mod polyline;
pub mod rect;
pub mod segment;
pub mod soa;
pub mod sweep;

pub use distance::{polyline_distance, polylines_within, rect_distance, segment_distance};
pub use point::Point;
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use rect::Rect;
pub use segment::Segment;
pub use soa::SoaMbrs;
pub use sweep::{
    sweep_pairs, sweep_pairs_into, sweep_pairs_restricted, sweep_pairs_soa, sweep_pairs_soa_runs,
    SoaRun, SweepPair, SweepScratch,
};
