//! Struct-of-arrays MBR sequences for the join hot path.
//!
//! The plane-sweep kernel spends most of its time answering one question per
//! entry: *does this MBR intersect the restriction window?* Over an
//! array-of-structs `[Rect]` that test loads four scattered fields and
//! branches per entry. [`SoaMbrs`] stores the same rectangles as four
//! parallel coordinate arrays (`xl/xh/yl/yh`), so the window filter becomes a
//! dense streaming pass over contiguous `f64` lanes — branch-free compares
//! accumulated into a bitmask, surviving indices extracted with
//! `trailing_zeros` (the layout of *SIMD-ified R-tree Query Processing*
//! (Rayhan & Aref)).
//!
//! Each filter has two bodies behind a runtime dispatch: an explicit AVX2
//! path (`core::arch::x86_64` compares + movemask, selected via
//! `is_x86_feature_detected!`) and a safe, autovectorization-friendly scalar
//! body that doubles as the portable fallback and the reference the AVX2
//! path is tested against. The explicit path exists because LLVM vectorizes
//! the compare loops standalone but gives up once they are fused with the
//! gather/compaction control flow the kernel needs (see DESIGN.md §10).
//!
//! The arrays are frozen at construction: an R\*-tree node builds its view
//! once (at freeze/decode time) and the join reuses it for every window that
//! ever restricts that node.

use crate::Rect;

/// How many entries one bitmask chunk of the filter covers. One `u32` mask
/// could cover 32, but 8 keeps the compare loop short enough for the
/// autovectorizer to unroll fully at the node sizes the tree produces
/// (26-entry leaves, 102-entry directory nodes).
pub const FILTER_LANES: usize = 8;

/// A frozen sequence of MBRs in struct-of-arrays layout: four parallel
/// coordinate arrays indexed by entry position.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoaMbrs {
    xl: Box<[f64]>,
    xh: Box<[f64]>,
    yl: Box<[f64]>,
    yh: Box<[f64]>,
}

impl SoaMbrs {
    /// Builds the view from a rectangle slice (entry order is preserved).
    pub fn from_rects(rects: &[Rect]) -> Self {
        Self::from_iter(rects.iter().copied())
    }

    /// Builds the view from any rectangle iterator (entry order preserved).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(rects: impl Iterator<Item = Rect>) -> Self {
        let (lo, _) = rects.size_hint();
        let mut xl = Vec::with_capacity(lo);
        let mut xh = Vec::with_capacity(lo);
        let mut yl = Vec::with_capacity(lo);
        let mut yh = Vec::with_capacity(lo);
        for r in rects {
            xl.push(r.xl);
            xh.push(r.xu);
            yl.push(r.yl);
            yh.push(r.yu);
        }
        SoaMbrs {
            xl: xl.into_boxed_slice(),
            xh: xh.into_boxed_slice(),
            yl: yl.into_boxed_slice(),
            yh: yh.into_boxed_slice(),
        }
    }

    /// Number of rectangles.
    pub fn len(&self) -> usize {
        self.xl.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.xl.is_empty()
    }

    /// Lower x bounds, by entry position.
    #[inline]
    pub fn xl(&self) -> &[f64] {
        &self.xl
    }

    /// Upper x bounds, by entry position.
    #[inline]
    pub fn xh(&self) -> &[f64] {
        &self.xh
    }

    /// Lower y bounds, by entry position.
    #[inline]
    pub fn yl(&self) -> &[f64] {
        &self.yl
    }

    /// Upper y bounds, by entry position.
    #[inline]
    pub fn yh(&self) -> &[f64] {
        &self.yh
    }

    /// Rebuilds entry `i` as a [`Rect`].
    #[inline]
    pub fn rect(&self, i: usize) -> Rect {
        Rect {
            xl: self.xl[i],
            yl: self.yl[i],
            xu: self.xh[i],
            yu: self.yh[i],
        }
    }

    /// Appends the positions of all rectangles intersecting `window` to
    /// `out` (ascending). Exactly the entries for which
    /// [`Rect::intersects`] holds — closed bounds, touching counts —
    /// computed in [`FILTER_LANES`]-wide chunks of branch-free compares with
    /// a bitmask gather, so the per-entry work is four loads, four compares
    /// and three ANDs with no data-dependent branch.
    ///
    /// On x86-64 with AVX2 available at runtime the same loop body is
    /// compiled a second time under `#[target_feature(enable = "avx2")]`,
    /// where the autovectorizer widens the compares to 4 x `f64` — no
    /// intrinsics, just the one dispatch branch per call.
    pub fn filter_window(&self, window: &Rect, out: &mut Vec<u32>) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 check above.
            unsafe { self.filter_window_avx2(window, out) };
            return;
        }
        self.filter_window_body(window, out);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn filter_window_avx2(&self, window: &Rect, out: &mut Vec<u32>) {
        self.filter_window_body(window, out);
    }

    #[inline(always)]
    fn filter_window_body(&self, window: &Rect, out: &mut Vec<u32>) {
        out.clear();
        let n = self.len();
        out.reserve(n);
        let (wxl, wyl, wxu, wyu) = (window.xl, window.yl, window.xu, window.yu);
        let (xl, xh, yl, yh) = (&*self.xl, &*self.xh, &*self.yl, &*self.yh);
        // `chunks_exact` hands the compiler fixed-length slices, so the
        // compare loop carries no bounds checks and vectorizes cleanly.
        let mut base = 0usize;
        for (((cxl, cxh), cyl), cyh) in xl
            .chunks_exact(FILTER_LANES)
            .zip(xh.chunks_exact(FILTER_LANES))
            .zip(yl.chunks_exact(FILTER_LANES))
            .zip(yh.chunks_exact(FILTER_LANES))
        {
            // Two phases: a branch-free compare loop into a bool array
            // (which the vectorizer turns into packed compares), then a
            // scalar fold into the bitmask. Folding inside the compare loop
            // defeats vectorization entirely.
            let mut hits = [false; FILTER_LANES];
            for lane in 0..FILTER_LANES {
                hits[lane] = (cxl[lane] <= wxu)
                    & (cxh[lane] >= wxl)
                    & (cyl[lane] <= wyu)
                    & (cyh[lane] >= wyl);
            }
            let mut mask = 0u32;
            for (lane, &h) in hits.iter().enumerate() {
                mask |= (h as u32) << lane;
            }
            while mask != 0 {
                let lane = (mask.trailing_zeros() & 7) as usize;
                out.push((base + lane) as u32);
                mask &= mask - 1;
            }
            base += FILTER_LANES;
        }
        for i in base..n {
            let hit = (xl[i] <= wxu) & (xh[i] >= wxl) & (yl[i] <= wyu) & (yh[i] >= wyl);
            if hit {
                out.push(i as u32);
            }
        }
    }

    /// As [`SoaMbrs::filter_window`], but additionally gathers the surviving
    /// rectangles' coordinates into four compact arrays (cleared first),
    /// parallel to `out`. A sweep over the survivors then streams dense
    /// coordinate lanes front to back — ready for the 4-wide scan probes of
    /// the SoA sweep — instead of indexing through `out` into the
    /// full-length arrays.
    ///
    /// **Requires the entries to be sorted by `xl` (ascending)** — exactly
    /// the precondition of the plane sweep this feeds. Sortedness lets the
    /// scan stop at the first entry with `xl > window.xu`: nothing after it
    /// can intersect the window, so on a typical restriction window a large
    /// suffix of the node is never touched at all.
    #[allow(clippy::too_many_arguments)]
    pub fn filter_window_gather(
        &self,
        window: &Rect,
        out: &mut Vec<u32>,
        gxl: &mut Vec<f64>,
        gxh: &mut Vec<f64>,
        gyl: &mut Vec<f64>,
        gyh: &mut Vec<f64>,
    ) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 check above.
            unsafe { self.filter_window_gather_avx2(window, out, gxl, gxh, gyl, gyh) };
            return;
        }
        self.filter_window_gather_body(window, out, gxl, gxh, gyl, gyh);
    }

    /// Explicit-intrinsics AVX2 copy of [`Self::filter_window_gather_body`]:
    /// identical accept/reject decisions and output order, with the window
    /// compares done as packed 4 x `f64` ops. The autovectorizer reliably
    /// widens the *standalone* filter loops but gives up once they are fused
    /// with the gather control flow, so this path spells the compares out.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn filter_window_gather_avx2(
        &self,
        window: &Rect,
        out: &mut Vec<u32>,
        gxl: &mut Vec<f64>,
        gxh: &mut Vec<f64>,
        gyl: &mut Vec<f64>,
        gyh: &mut Vec<f64>,
    ) {
        use core::arch::x86_64::*;
        out.clear();
        gxl.clear();
        gxh.clear();
        gyl.clear();
        gyh.clear();
        let n = self.len();
        out.reserve(n);
        gxl.reserve(n);
        gxh.reserve(n);
        gyl.reserve(n);
        gyh.reserve(n);
        let (wxl, wyl, wxu, wyu) = (window.xl, window.yl, window.xu, window.yu);
        let (xl, xh, yl, yh) = (&*self.xl, &*self.xh, &*self.yl, &*self.yh);
        // SAFETY: `_mm256_set1_pd` / `_mm256_loadu_pd` / compare / movemask
        // are plain data ops, guarded by the caller's AVX2 check; every load
        // below reads `QUAD` lanes inside a `chunks_exact(FILTER_LANES)`
        // window, so it stays in bounds.
        let (wxu_v, wxl_v, wyu_v, wyl_v) = (
            _mm256_set1_pd(wxu),
            _mm256_set1_pd(wxl),
            _mm256_set1_pd(wyu),
            _mm256_set1_pd(wyl),
        );
        const QUAD: usize = 4;
        // One quad of lanes: packed `xl <= wxu & xh >= wxl & yl <= wyu &
        // yh >= wyl`, folded to a 4-bit mask. Ordered (`_OQ`) compares match
        // the scalar operators on the non-NaN coordinates the tree stores.
        let quad_mask = |cxl: &[f64], cxh: &[f64], cyl: &[f64], cyh: &[f64], off: usize| -> u32 {
            // SAFETY: callers pass `FILTER_LANES`-long chunks and
            // `off + QUAD <= FILTER_LANES`.
            unsafe {
                let mx = _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_loadu_pd(cxl.as_ptr().add(off)), wxu_v);
                let mh = _mm256_cmp_pd::<_CMP_GE_OQ>(_mm256_loadu_pd(cxh.as_ptr().add(off)), wxl_v);
                let my = _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_loadu_pd(cyl.as_ptr().add(off)), wyu_v);
                let mv = _mm256_cmp_pd::<_CMP_GE_OQ>(_mm256_loadu_pd(cyh.as_ptr().add(off)), wyl_v);
                let hit = _mm256_and_pd(_mm256_and_pd(mx, mh), _mm256_and_pd(my, mv));
                _mm256_movemask_pd(hit) as u32
            }
        };
        let mut base = 0usize;
        for (((cxl, cxh), cyl), cyh) in xl
            .chunks_exact(FILTER_LANES)
            .zip(xh.chunks_exact(FILTER_LANES))
            .zip(yl.chunks_exact(FILTER_LANES))
            .zip(yh.chunks_exact(FILTER_LANES))
        {
            // xl-sorted input: once a chunk starts past the window's right
            // edge, every remaining entry does too.
            if cxl[0] > wxu {
                return;
            }
            let mut mask =
                quad_mask(cxl, cxh, cyl, cyh, 0) | (quad_mask(cxl, cxh, cyl, cyh, QUAD) << QUAD);
            while mask != 0 {
                // `& 7` pins the lane's range so the chunk indexing below
                // is provably in bounds — no checks in the pop loop.
                let lane = (mask.trailing_zeros() & 7) as usize;
                out.push((base + lane) as u32);
                gxl.push(cxl[lane]);
                gxh.push(cxh[lane]);
                gyl.push(cyl[lane]);
                gyh.push(cyh[lane]);
                mask &= mask - 1;
            }
            base += FILTER_LANES;
        }
        for i in base..n {
            if xl[i] > wxu {
                break;
            }
            let hit = (xh[i] >= wxl) & (yl[i] <= wyu) & (yh[i] >= wyl);
            if hit {
                out.push(i as u32);
                gxl.push(xl[i]);
                gxh.push(xh[i]);
                gyl.push(yl[i]);
                gyh.push(yh[i]);
            }
        }
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn filter_window_gather_body(
        &self,
        window: &Rect,
        out: &mut Vec<u32>,
        gxl: &mut Vec<f64>,
        gxh: &mut Vec<f64>,
        gyl: &mut Vec<f64>,
        gyh: &mut Vec<f64>,
    ) {
        out.clear();
        gxl.clear();
        gxh.clear();
        gyl.clear();
        gyh.clear();
        let n = self.len();
        out.reserve(n);
        gxl.reserve(n);
        gxh.reserve(n);
        gyl.reserve(n);
        gyh.reserve(n);
        let (wxl, wyl, wxu, wyu) = (window.xl, window.yl, window.xu, window.yu);
        let (xl, xh, yl, yh) = (&*self.xl, &*self.xh, &*self.yl, &*self.yh);
        let mut base = 0usize;
        for (((cxl, cxh), cyl), cyh) in xl
            .chunks_exact(FILTER_LANES)
            .zip(xh.chunks_exact(FILTER_LANES))
            .zip(yl.chunks_exact(FILTER_LANES))
            .zip(yh.chunks_exact(FILTER_LANES))
        {
            // xl-sorted input: once a chunk starts past the window's right
            // edge, every remaining entry does too.
            if cxl[0] > wxu {
                return;
            }
            // Two phases: a branch-free compare loop into a bool array
            // (which the vectorizer turns into packed compares), then a
            // scalar fold into the bitmask. Folding inside the compare loop
            // defeats vectorization entirely.
            let mut hits = [false; FILTER_LANES];
            for lane in 0..FILTER_LANES {
                hits[lane] = (cxl[lane] <= wxu)
                    & (cxh[lane] >= wxl)
                    & (cyl[lane] <= wyu)
                    & (cyh[lane] >= wyl);
            }
            let mut mask = 0u32;
            for (lane, &h) in hits.iter().enumerate() {
                mask |= (h as u32) << lane;
            }
            while mask != 0 {
                // `& 7` pins the lane's range so the chunk indexing below
                // is provably in bounds — no checks in the pop loop.
                let lane = (mask.trailing_zeros() & 7) as usize;
                out.push((base + lane) as u32);
                gxl.push(cxl[lane]);
                gxh.push(cxh[lane]);
                gyl.push(cyl[lane]);
                gyh.push(cyh[lane]);
                mask &= mask - 1;
            }
            base += FILTER_LANES;
        }
        for i in base..n {
            if xl[i] > wxu {
                break;
            }
            let hit = (xh[i] >= wxl) & (yl[i] <= wyu) & (yh[i] >= wyl);
            if hit {
                out.push(i as u32);
                gxl.push(xl[i]);
                gxh.push(xh[i]);
                gyl.push(yl[i]);
                gyh.push(yh[i]);
            }
        }
    }

    /// Appends the positions of all rectangles whose
    /// [`rect_distance`](crate::rect_distance) to `q` is `<= eps` (ascending).
    /// The per-entry computation is the same max/square/sqrt chain as the
    /// scalar function — bit-identical accept/reject decisions — run over the
    /// coordinate arrays in [`FILTER_LANES`]-wide branch-free chunks.
    pub fn filter_within(&self, q: &Rect, eps: f64, out: &mut Vec<u32>) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime AVX2 check above.
            unsafe { self.filter_within_avx2(q, eps, out) };
            return;
        }
        self.filter_within_body(q, eps, out);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn filter_within_avx2(&self, q: &Rect, eps: f64, out: &mut Vec<u32>) {
        self.filter_within_body(q, eps, out);
    }

    #[inline(always)]
    fn filter_within_body(&self, q: &Rect, eps: f64, out: &mut Vec<u32>) {
        out.clear();
        let n = self.len();
        out.reserve(n);
        let (qxl, qyl, qxu, qyu) = (q.xl, q.yl, q.xu, q.yu);
        let (xl, xh, yl, yh) = (&*self.xl, &*self.xh, &*self.yl, &*self.yh);
        let within = |i: usize| -> bool {
            let dx = (qxl - xh[i]).max(xl[i] - qxu).max(0.0);
            let dy = (qyl - yh[i]).max(yl[i] - qyu).max(0.0);
            (dx * dx + dy * dy).sqrt() <= eps
        };
        let mut base = 0usize;
        for (((cxl, cxh), cyl), cyh) in xl
            .chunks_exact(FILTER_LANES)
            .zip(xh.chunks_exact(FILTER_LANES))
            .zip(yl.chunks_exact(FILTER_LANES))
            .zip(yh.chunks_exact(FILTER_LANES))
        {
            let mut mask = 0u32;
            for lane in 0..FILTER_LANES {
                let dx = (qxl - cxh[lane]).max(cxl[lane] - qxu).max(0.0);
                let dy = (qyl - cyh[lane]).max(cyl[lane] - qyu).max(0.0);
                let hit = (dx * dx + dy * dy).sqrt() <= eps;
                mask |= (hit as u32) << lane;
            }
            while mask != 0 {
                let lane = (mask.trailing_zeros() & 7) as usize;
                out.push((base + lane) as u32);
                mask &= mask - 1;
            }
            base += FILTER_LANES;
        }
        for i in base..n {
            if within(i) {
                out.push(i as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(xl: f64, yl: f64, xu: f64, yu: f64) -> Rect {
        Rect::new(xl, yl, xu, yu)
    }

    #[test]
    fn roundtrips_rects() {
        let rects = vec![r(0.0, 1.0, 2.0, 3.0), r(-1.0, -2.0, 0.5, 0.5)];
        let soa = SoaMbrs::from_rects(&rects);
        assert_eq!(soa.len(), 2);
        for (i, want) in rects.iter().enumerate() {
            assert_eq!(&soa.rect(i), want);
        }
    }

    #[test]
    fn filter_matches_scalar_intersects() {
        // 37 rects: crosses several full chunks plus a remainder tail.
        let rects: Vec<Rect> = (0..37)
            .map(|i| {
                let x = (i % 7) as f64;
                let y = (i / 7) as f64;
                r(x, y, x + 1.0, y + 1.0)
            })
            .collect();
        let soa = SoaMbrs::from_rects(&rects);
        for window in [
            r(0.0, 0.0, 10.0, 10.0),
            r(2.0, 1.0, 3.5, 2.5),
            r(100.0, 100.0, 101.0, 101.0),
            r(3.0, 3.0, 3.0, 3.0), // degenerate point window
        ] {
            let mut got = Vec::new();
            soa.filter_window(&window, &mut got);
            let want: Vec<u32> = rects
                .iter()
                .enumerate()
                .filter(|(_, rc)| rc.intersects(&window))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "window {window:?}");
        }
    }

    #[test]
    fn gather_variant_matches_filter_window() {
        // xl-sorted (the gather variant's precondition), with duplicate xl
        // keys and varying widths so the early cutoff has suffixes to skip.
        let rects: Vec<Rect> = (0..37)
            .map(|i| {
                let x = (i / 3) as f64 * 0.5;
                let y = (i % 7) as f64;
                r(x, y, x + 1.0 + (i % 3) as f64, y + 1.0)
            })
            .collect();
        let soa = SoaMbrs::from_rects(&rects);
        for window in [
            r(0.0, 0.0, 10.0, 10.0),
            r(2.0, 1.0, 3.5, 2.5),
            r(100.0, 100.0, 101.0, 101.0),
        ] {
            let mut plain = Vec::new();
            soa.filter_window(&window, &mut plain);
            let mut idx = vec![9u32];
            let (mut xl, mut xh, mut yl, mut yh) = (vec![0.0], vec![0.0], vec![0.0], vec![0.0]);
            soa.filter_window_gather(&window, &mut idx, &mut xl, &mut xh, &mut yl, &mut yh);
            assert_eq!(idx, plain, "window {window:?}");
            for (pos, &i) in idx.iter().enumerate() {
                let want = rects[i as usize];
                assert_eq!(
                    (xl[pos], yl[pos], xh[pos], yh[pos]),
                    (want.xl, want.yl, want.xu, want.yu),
                    "gathered coords diverge at {pos}"
                );
            }
        }
    }

    #[test]
    fn touching_rects_count_as_intersecting() {
        let soa = SoaMbrs::from_rects(&[r(0.0, 0.0, 1.0, 1.0)]);
        let mut out = Vec::new();
        soa.filter_window(&r(1.0, 1.0, 2.0, 2.0), &mut out);
        assert_eq!(out, vec![0], "closed bounds: corner contact intersects");
    }

    #[test]
    fn empty_sequence() {
        let soa = SoaMbrs::from_rects(&[]);
        assert!(soa.is_empty());
        let mut out = vec![7u32];
        soa.filter_window(&r(0.0, 0.0, 1.0, 1.0), &mut out);
        assert!(out.is_empty(), "filter clears its output buffer");
    }
}
