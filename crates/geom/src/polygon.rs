//! Simple polygons — exact geometry for areal features (forests, cities,
//! administrative areas). Supports the "find all forests which are in a city"
//! style joins from the paper's introduction.

use crate::rect::mbr_of_points;
use crate::segment::{orientation, Orientation};
use crate::{Point, Polyline, Rect, Segment};
use serde::{Deserialize, Serialize};

/// A simple polygon given by its boundary ring (implicitly closed; the last
/// vertex connects back to the first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    ring: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its boundary ring.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three vertices are given.
    pub fn new(ring: Vec<Point>) -> Self {
        assert!(ring.len() >= 3, "a polygon needs at least three vertices");
        Polygon { ring }
    }

    /// The boundary vertices (without the closing duplicate).
    #[inline]
    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Iterator over the boundary edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.ring.len();
        (0..n).map(move |i| Segment::new(self.ring[i], self.ring[(i + 1) % n]))
    }

    /// Minimum bounding rectangle.
    pub fn mbr(&self) -> Rect {
        mbr_of_points(&self.ring)
    }

    /// Signed area via the shoelace formula (positive for counter-clockwise
    /// rings).
    pub fn signed_area(&self) -> f64 {
        let n = self.ring.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        acc * 0.5
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Point-in-polygon test (boundary counts as inside).
    pub fn contains_point(&self, p: &Point) -> bool {
        // Boundary check first so the crossing count cannot misclassify
        // points lying exactly on an edge.
        for e in self.edges() {
            if orientation(&e.a, &e.b, p) == Orientation::Collinear && e.mbr().contains_point(p) {
                return true;
            }
        }
        // Ray casting towards +x.
        let mut inside = false;
        let n = self.ring.len();
        let mut j = n - 1;
        for i in 0..n {
            let pi = self.ring[i];
            let pj = self.ring[j];
            if (pi.y > p.y) != (pj.y > p.y) {
                let x_cross = pj.x + (p.y - pj.y) / (pi.y - pj.y) * (pi.x - pj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Whether two polygons intersect (share any point, including full
    /// containment of one in the other).
    pub fn intersects(&self, other: &Polygon) -> bool {
        if !self.mbr().intersects(&other.mbr()) {
            return false;
        }
        for ea in self.edges() {
            let ma = ea.mbr();
            for eb in other.edges() {
                if ma.intersects(&eb.mbr()) && ea.intersects(&eb) {
                    return true;
                }
            }
        }
        // No boundary crossing: containment is the only remaining option.
        self.contains_point(&other.ring[0]) || other.contains_point(&self.ring[0])
    }

    /// Whether a polyline intersects this polygon (crosses the boundary or
    /// lies fully inside).
    pub fn intersects_polyline(&self, line: &Polyline) -> bool {
        if !self.mbr().intersects(&line.mbr()) {
            return false;
        }
        for ea in self.edges() {
            let ma = ea.mbr();
            for sb in line.segments() {
                if ma.intersects(&sb.mbr()) && ea.intersects(&sb) {
                    return true;
                }
            }
        }
        self.contains_point(&line.points()[0])
    }

    /// Whether `other` lies completely inside `self` ("forests in a city").
    pub fn contains_polygon(&self, other: &Polygon) -> bool {
        if !self.mbr().contains(&other.mbr()) {
            return false;
        }
        // All vertices inside and no boundary crossing.
        if !other.ring.iter().all(|p| self.contains_point(p)) {
            return false;
        }
        for ea in self.edges() {
            for eb in other.edges() {
                if ea.intersects(&eb) {
                    // Touching boundaries still count as contained only if no
                    // proper crossing; be conservative and reject crossings
                    // where an interior point of `other` leaves `self`.
                    let mid = eb.a.midpoint(&eb.b);
                    if !self.contains_point(&mid) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Serialized size in bytes when stored in a geometry cluster.
    pub fn stored_size(&self) -> usize {
        4 + self.ring.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x + side, y),
            Point::new(x + side, y + side),
            Point::new(x, y + side),
        ])
    }

    #[test]
    fn area_of_square() {
        assert_eq!(square(0.0, 0.0, 2.0).area(), 4.0);
    }

    #[test]
    fn signed_area_orientation() {
        let ccw = square(0.0, 0.0, 1.0);
        assert!(ccw.signed_area() > 0.0);
        let cw = Polygon::new(ccw.ring().iter().rev().copied().collect());
        assert!(cw.signed_area() < 0.0);
        assert_eq!(ccw.area(), cw.area());
    }

    #[test]
    fn contains_point_inside_outside() {
        let p = square(0.0, 0.0, 4.0);
        assert!(p.contains_point(&Point::new(2.0, 2.0)));
        assert!(!p.contains_point(&Point::new(5.0, 2.0)));
        assert!(!p.contains_point(&Point::new(-0.1, 2.0)));
    }

    #[test]
    fn contains_point_on_boundary() {
        let p = square(0.0, 0.0, 4.0);
        assert!(p.contains_point(&Point::new(0.0, 2.0)));
        assert!(p.contains_point(&Point::new(4.0, 4.0)));
    }

    #[test]
    fn contains_point_concave() {
        // A "U" shape: the notch is outside.
        let u = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 6.0),
            Point::new(0.0, 6.0),
        ]);
        assert!(u.contains_point(&Point::new(1.0, 5.0)));
        assert!(u.contains_point(&Point::new(5.0, 5.0)));
        assert!(!u.contains_point(&Point::new(3.0, 5.0))); // inside the notch
        assert!(u.contains_point(&Point::new(3.0, 1.0))); // under the notch
    }

    #[test]
    fn overlapping_polygons_intersect() {
        assert!(square(0.0, 0.0, 2.0).intersects(&square(1.0, 1.0, 2.0)));
    }

    #[test]
    fn disjoint_polygons() {
        assert!(!square(0.0, 0.0, 1.0).intersects(&square(5.0, 5.0, 1.0)));
    }

    #[test]
    fn nested_polygons_intersect() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(4.0, 4.0, 1.0);
        assert!(outer.intersects(&inner));
        assert!(inner.intersects(&outer));
    }

    #[test]
    fn contains_polygon_nested() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(4.0, 4.0, 1.0);
        assert!(outer.contains_polygon(&inner));
        assert!(!inner.contains_polygon(&outer));
        // Overlapping but not contained.
        let cross = square(9.0, 9.0, 5.0);
        assert!(!outer.contains_polygon(&cross));
    }

    #[test]
    fn polyline_crossing_polygon() {
        let p = square(0.0, 0.0, 4.0);
        let crossing = Polyline::new(vec![Point::new(-1.0, 2.0), Point::new(5.0, 2.0)]);
        assert!(p.intersects_polyline(&crossing));
        let inside = Polyline::new(vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)]);
        assert!(p.intersects_polyline(&inside));
        let outside = Polyline::new(vec![Point::new(5.0, 5.0), Point::new(6.0, 6.0)]);
        assert!(!p.intersects_polyline(&outside));
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn rejects_degenerate_ring() {
        let _ = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
    }
}
