//! Two-dimensional points.

use serde::{Deserialize, Serialize};

/// A point in the Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when only
    /// comparisons are needed, e.g. in the R\*-tree reinsertion sort).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(4.0, -3.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.midpoint(&b), Point::new(2.0, 4.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(7.0, -9.0);
        assert_eq!(a.distance(&a), 0.0);
    }
}
