//! Distance computations between geometric primitives.
//!
//! These support distance joins and nearest-neighbor refinement: the filter
//! step works on MBR distances (lower bounds), the refinement step on exact
//! geometry distances.

use crate::{Point, Polyline, Rect, Segment};

/// Distance from a point to the closed segment `s`.
pub fn point_segment_distance(p: &Point, s: &Segment) -> f64 {
    let (ax, ay) = (s.a.x, s.a.y);
    let (bx, by) = (s.b.x, s.b.y);
    let (dx, dy) = (bx - ax, by - ay);
    let len_sq = dx * dx + dy * dy;
    if len_sq == 0.0 {
        return p.distance(&s.a);
    }
    let t = (((p.x - ax) * dx + (p.y - ay) * dy) / len_sq).clamp(0.0, 1.0);
    p.distance(&Point::new(ax + t * dx, ay + t * dy))
}

/// Distance between two closed segments (0 when they intersect).
pub fn segment_distance(a: &Segment, b: &Segment) -> f64 {
    if a.intersects(b) {
        return 0.0;
    }
    point_segment_distance(&a.a, b)
        .min(point_segment_distance(&a.b, b))
        .min(point_segment_distance(&b.a, a))
        .min(point_segment_distance(&b.b, a))
}

/// Minimum distance between two rectangles (0 when they intersect); a lower
/// bound for the distance of any geometries they bound.
pub fn rect_distance(a: &Rect, b: &Rect) -> f64 {
    let dx = (b.xl - a.xu).max(a.xl - b.xu).max(0.0);
    let dy = (b.yl - a.yu).max(a.yl - b.yu).max(0.0);
    (dx * dx + dy * dy).sqrt()
}

/// Exact minimum distance between two polylines (0 when they intersect).
pub fn polyline_distance(a: &Polyline, b: &Polyline) -> f64 {
    let mut best = f64::INFINITY;
    for sa in a.segments() {
        for sb in b.segments() {
            let d = segment_distance(&sa, &sb);
            if d == 0.0 {
                return 0.0;
            }
            best = best.min(d);
        }
    }
    best
}

/// Whether two polylines come within `eps` of each other. Exits early via
/// per-segment MBR lower bounds.
pub fn polylines_within(a: &Polyline, b: &Polyline, eps: f64) -> bool {
    if rect_distance(&a.mbr(), &b.mbr()) > eps {
        return false;
    }
    for sa in a.segments() {
        let ma = sa.mbr();
        for sb in b.segments() {
            if rect_distance(&ma, &sb.mbr()) > eps {
                continue;
            }
            if segment_distance(&sa, &sb) <= eps {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn point_to_segment() {
        let seg = s(0.0, 0.0, 10.0, 0.0);
        assert_eq!(point_segment_distance(&Point::new(5.0, 3.0), &seg), 3.0);
        assert_eq!(point_segment_distance(&Point::new(-4.0, 0.0), &seg), 4.0); // before start
        assert_eq!(point_segment_distance(&Point::new(13.0, 4.0), &seg), 5.0); // past end
        assert_eq!(point_segment_distance(&Point::new(7.0, 0.0), &seg), 0.0); // on it
    }

    #[test]
    fn degenerate_segment_is_a_point() {
        let seg = s(2.0, 2.0, 2.0, 2.0);
        assert_eq!(point_segment_distance(&Point::new(5.0, 6.0), &seg), 5.0);
    }

    #[test]
    fn segment_to_segment() {
        assert_eq!(
            segment_distance(&s(0.0, 0.0, 1.0, 0.0), &s(0.0, 3.0, 1.0, 3.0)),
            3.0
        );
        // Crossing segments: zero.
        assert_eq!(
            segment_distance(&s(0.0, 0.0, 2.0, 2.0), &s(0.0, 2.0, 2.0, 0.0)),
            0.0
        );
        // Skew segments where the closest points are endpoints.
        let d = segment_distance(&s(0.0, 0.0, 1.0, 0.0), &s(2.0, 1.0, 3.0, 2.0));
        assert!((d - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rect_distance_basics() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(rect_distance(&a, &Rect::new(3.0, 0.0, 4.0, 1.0)), 2.0);
        assert_eq!(rect_distance(&a, &Rect::new(0.5, 0.5, 2.0, 2.0)), 0.0);
        let d = rect_distance(&a, &Rect::new(4.0, 5.0, 6.0, 7.0));
        assert_eq!(d, 5.0); // 3-4-5 triangle from corner (1,1) to (4,5)
    }

    #[test]
    fn rect_distance_lower_bounds_geometry() {
        let a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        let b = Polyline::new(vec![Point::new(5.0, 0.0), Point::new(6.0, 1.0)]);
        assert!(rect_distance(&a.mbr(), &b.mbr()) <= polyline_distance(&a, &b));
    }

    #[test]
    fn polyline_distance_and_within() {
        let a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let b = Polyline::new(vec![Point::new(0.0, 2.0), Point::new(10.0, 2.0)]);
        assert_eq!(polyline_distance(&a, &b), 2.0);
        assert!(polylines_within(&a, &b, 2.0));
        assert!(!polylines_within(&a, &b, 1.9));
        // Intersecting polylines have distance zero.
        let c = Polyline::new(vec![Point::new(5.0, -1.0), Point::new(5.0, 1.0)]);
        assert_eq!(polyline_distance(&a, &c), 0.0);
        assert!(polylines_within(&a, &c, 0.0));
    }
}
