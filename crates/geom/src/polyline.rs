//! Polylines — the exact geometry of TIGER-style line features (streets,
//! rivers, railway tracks, administrative boundaries).

use crate::rect::mbr_of_points;
use crate::{Point, Rect, Segment};
use serde::{Deserialize, Serialize};

/// An open chain of straight line segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    pts: Vec<Point>,
}

impl Polyline {
    /// Creates a polyline from its vertices.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two vertices are given.
    pub fn new(pts: Vec<Point>) -> Self {
        assert!(pts.len() >= 2, "a polyline needs at least two vertices");
        Polyline { pts }
    }

    /// The vertices of the polyline.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.pts
    }

    /// Number of segments (`vertices - 1`).
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.pts.len() - 1
    }

    /// Iterator over the constituent segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.pts.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Minimum bounding rectangle.
    pub fn mbr(&self) -> Rect {
        mbr_of_points(&self.pts)
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Exact intersection test against another polyline.
    ///
    /// Candidate segment pairs are pre-filtered by their MBRs; the remaining
    /// pairs run the exact orientation test. This mirrors the multi-step
    /// refinement of [BKSS 94]: approximation test first, exact test last.
    pub fn intersects(&self, other: &Polyline) -> bool {
        if !self.mbr().intersects(&other.mbr()) {
            return false;
        }
        // Small polylines: direct quadratic scan with MBR pre-filter.
        for sa in self.segments() {
            let ma = sa.mbr();
            for sb in other.segments() {
                if ma.intersects(&sb.mbr()) && sa.intersects(&sb) {
                    return true;
                }
            }
        }
        false
    }

    /// Exact intersection test that additionally restricts the search to a
    /// window, used when the caller already knows the MBR intersection.
    pub fn intersects_within(&self, other: &Polyline, window: &Rect) -> bool {
        for sa in self.segments() {
            let ma = sa.mbr();
            if !ma.intersects(window) {
                continue;
            }
            for sb in other.segments() {
                if ma.intersects(&sb.mbr()) && sa.intersects(&sb) {
                    return true;
                }
            }
        }
        false
    }

    /// Serialized size in bytes when stored in a geometry cluster: a vertex
    /// count followed by `2 × 8` bytes per vertex.
    pub fn stored_size(&self) -> usize {
        4 + self.pts.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(pts: &[(f64, f64)]) -> Polyline {
        Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    #[test]
    fn crossing_polylines_intersect() {
        let a = pl(&[(0.0, 0.0), (2.0, 2.0), (4.0, 0.0)]);
        let b = pl(&[(0.0, 2.0), (2.0, 0.0)]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn disjoint_polylines() {
        let a = pl(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pl(&[(0.0, 2.0), (1.0, 2.0)]);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn mbr_overlap_without_exact_intersection() {
        // L-shaped around each other: MBRs overlap, geometry does not.
        let a = pl(&[(0.0, 0.0), (0.0, 3.0), (3.0, 3.0)]);
        let b = pl(&[(1.0, 1.0), (2.0, 1.0)]);
        assert!(a.mbr().intersects(&b.mbr()));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn shared_vertex_intersects() {
        let a = pl(&[(0.0, 0.0), (1.0, 1.0)]);
        let b = pl(&[(1.0, 1.0), (2.0, 0.0)]);
        assert!(a.intersects(&b));
    }

    #[test]
    fn length_and_mbr() {
        let a = pl(&[(0.0, 0.0), (3.0, 4.0), (3.0, 10.0)]);
        assert_eq!(a.length(), 11.0);
        assert_eq!(a.mbr(), Rect::new(0.0, 0.0, 3.0, 10.0));
        assert_eq!(a.num_segments(), 2);
    }

    #[test]
    fn intersects_within_window() {
        let a = pl(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = pl(&[(5.0, -1.0), (5.0, 1.0)]);
        let hit_window = Rect::new(4.0, -1.0, 6.0, 1.0);
        assert!(a.intersects_within(&b, &hit_window));
        // A window that excludes every segment of `a` finds nothing.
        let miss_window = Rect::new(20.0, 20.0, 30.0, 30.0);
        assert!(!a.intersects_within(&b, &miss_window));
    }

    #[test]
    fn stored_size_formula() {
        let a = pl(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(a.stored_size(), 4 + 3 * 16);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_vertex() {
        let _ = Polyline::new(vec![Point::new(0.0, 0.0)]);
    }
}
