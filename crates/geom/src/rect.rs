//! Axis-parallel rectangles (minimum bounding rectangles).
//!
//! A [`Rect`] is given by its lower-left corner `(xl, yl)` and its upper-right
//! corner `(xu, yu)`, exactly as in the paper (§2.2). Degenerate rectangles
//! (zero width and/or height) are legal: they arise as the MBRs of horizontal
//! or vertical line segments and of points.

use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-parallel rectangle; the MBR approximation used by the filter step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower x bound.
    pub xl: f64,
    /// Lower y bound.
    pub yl: f64,
    /// Upper x bound.
    pub xu: f64,
    /// Upper y bound.
    pub yu: f64,
}

impl Rect {
    /// Creates a rectangle from its bounds.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if the bounds are inverted or NaN.
    #[inline]
    pub fn new(xl: f64, yl: f64, xu: f64, yu: f64) -> Self {
        debug_assert!(
            xl <= xu && yl <= yu,
            "inverted rect: [{xl},{xu}]x[{yl},{yu}]"
        );
        Rect { xl, yl, xu, yu }
    }

    /// The "empty" rectangle, an identity element for [`Rect::union`].
    #[inline]
    pub const fn empty() -> Self {
        Rect {
            xl: f64::INFINITY,
            yl: f64::INFINITY,
            xu: f64::NEG_INFINITY,
            yu: f64::NEG_INFINITY,
        }
    }

    /// Whether this is the empty rectangle (contains no point).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xl > self.xu || self.yl > self.yu
    }

    /// A rectangle that covers exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// Width along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.xu - self.xl
    }

    /// Height along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.yu - self.yl
    }

    /// Area of the rectangle. Zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half perimeter ("margin" in the R\*-tree split heuristics).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.xl + self.xu) * 0.5, (self.yl + self.yu) * 0.5)
    }

    /// Whether the two closed rectangles share at least one point.
    ///
    /// Touching boundaries count as intersecting — the filter step must not
    /// lose candidates whose MBRs merely touch.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xl <= other.xu && other.xl <= self.xu && self.yl <= other.yu && other.yl <= self.yu
    }

    /// Intersection of two rectangles, or `None` when disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if self.intersects(other) {
            Some(Rect {
                xl: self.xl.max(other.xl),
                yl: self.yl.max(other.yl),
                xu: self.xu.min(other.xu),
                yu: self.yu.min(other.yu),
            })
        } else {
            None
        }
    }

    /// Smallest rectangle covering both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xl: self.xl.min(other.xl),
            yl: self.yl.min(other.yl),
            xu: self.xu.max(other.xu),
            yu: self.yu.max(other.yu),
        }
    }

    /// Whether `other` lies completely inside `self` (closed containment).
    #[inline]
    pub fn contains(&self, other: &Rect) -> bool {
        self.xl <= other.xl && self.yl <= other.yl && self.xu >= other.xu && self.yu >= other.yu
    }

    /// Whether the point lies inside the closed rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.xl <= p.x && p.x <= self.xu && self.yl <= p.y && p.y <= self.yu
    }

    /// Area increase needed to include `other` (the `enlargement` of the
    /// classic R-tree ChooseSubtree heuristic).
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Area of overlap with `other` (zero when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        match self.intersection(other) {
            Some(i) => i.area(),
            None => 0.0,
        }
    }

    /// Normalized *degree of overlap* in `[0, 1]` between two intersecting
    /// MBRs; drives the simulated refinement-test duration (§4.2 of the
    /// paper: 2–18 ms depending on the degree of overlap).
    ///
    /// For non-degenerate rectangles this is the Jaccard measure
    /// `area(a ∩ b) / area(a ∪ b)` (w.r.t. the covering union rectangle).
    /// For degenerate rectangles (line-segment MBRs with zero area) we fall
    /// back to the product of the per-axis extent ratios so that heavily
    /// overlapping segments still report a high degree.
    pub fn overlap_degree(&self, other: &Rect) -> f64 {
        let Some(i) = self.intersection(other) else {
            return 0.0;
        };
        let u = self.union(other);
        let ua = u.area();
        if ua > 0.0 {
            let deg = i.area() / ua;
            if deg > 0.0 {
                return deg.clamp(0.0, 1.0);
            }
        }
        // Degenerate case: compare per-axis extents of the intersection with
        // the union's extents, treating a zero-extent axis as fully shared.
        let fx = if u.width() > 0.0 {
            i.width() / u.width()
        } else {
            1.0
        };
        let fy = if u.height() > 0.0 {
            i.height() / u.height()
        } else {
            1.0
        };
        (fx * fy).clamp(0.0, 1.0)
    }

    /// Minimum distance between the centers of `self` and `other` projected
    /// rectangle; used by tests and the data generator.
    #[inline]
    pub fn center_distance(&self, other: &Rect) -> f64 {
        self.center().distance(&other.center())
    }
}

impl Default for Rect {
    fn default() -> Self {
        Rect::empty()
    }
}

/// Computes the MBR of a set of points. Returns [`Rect::empty`] for an empty
/// slice.
pub fn mbr_of_points(pts: &[Point]) -> Rect {
    let mut r = Rect::empty();
    for p in pts {
        r = r.union(&Rect::from_point(*p));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(xl: f64, yl: f64, xu: f64, yu: f64) -> Rect {
        Rect::new(xl, yl, xu, yu)
    }

    #[test]
    fn area_and_margin() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
    }

    #[test]
    fn degenerate_rect_has_zero_area() {
        let a = r(1.0, 1.0, 1.0, 5.0);
        assert_eq!(a.area(), 0.0);
        assert_eq!(a.margin(), 4.0);
    }

    #[test]
    fn empty_rect_properties() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert_eq!(a.overlap_area(&b), 1.0);
    }

    #[test]
    fn touching_rects_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn disjoint_rects() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
        assert_eq!(a.overlap_degree(&b), 0.0);
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn containment() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert!(a.contains(&a));
        assert!(a.contains_point(&Point::new(0.0, 10.0)));
        assert!(!a.contains_point(&Point::new(-0.1, 5.0)));
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn overlap_degree_identical_is_one() {
        let a = r(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.overlap_degree(&a), 1.0);
    }

    #[test]
    fn overlap_degree_degenerate_segments() {
        // Two identical vertical-segment MBRs fully overlap.
        let a = r(1.0, 0.0, 1.0, 10.0);
        assert_eq!(a.overlap_degree(&a), 1.0);
        // Half-overlapping vertical segments on the same line.
        let b = r(1.0, 5.0, 1.0, 15.0);
        let d = a.overlap_degree(&b);
        assert!(d > 0.0 && d < 1.0, "degree was {d}");
    }

    #[test]
    fn mbr_of_points_covers_all() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let m = mbr_of_points(&pts);
        assert_eq!(m, r(-2.0, 0.0, 3.0, 5.0));
        assert!(mbr_of_points(&[]).is_empty());
    }
}
