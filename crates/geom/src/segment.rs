//! Line segments and exact segment-intersection predicates.
//!
//! The refinement step of the spatial join tests the *exact* geometry of two
//! candidate objects for intersection. For the TIGER-style line data used in
//! the paper, the exact geometry consists of polylines, whose intersection
//! test reduces to segment/segment tests.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A straight line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

/// Orientation of the ordered point triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    Ccw,
    /// Clockwise turn.
    Cw,
    /// Collinear points.
    Collinear,
}

/// Computes the orientation of the ordered triple `(a, b, c)`.
#[inline]
pub fn orientation(a: &Point, b: &Point, c: &Point) -> Orientation {
    let v = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    if v > 0.0 {
        Orientation::Ccw
    } else if v < 0.0 {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

impl Segment {
    /// Creates a segment from its endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Minimum bounding rectangle of the segment.
    #[inline]
    pub fn mbr(&self) -> Rect {
        Rect {
            xl: self.a.x.min(self.b.x),
            yl: self.a.y.min(self.b.y),
            xu: self.a.x.max(self.b.x),
            yu: self.a.y.max(self.b.y),
        }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Whether the closed segments share at least one point.
    ///
    /// Uses the classic orientation test, with bounding-box checks for the
    /// collinear special cases. Endpoint touching counts as intersection.
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = orientation(&self.a, &self.b, &other.a);
        let o2 = orientation(&self.a, &self.b, &other.b);
        let o3 = orientation(&other.a, &other.b, &self.a);
        let o4 = orientation(&other.a, &other.b, &self.b);

        if o1 != o2 && o3 != o4 {
            // General position or an endpoint lying exactly on the other
            // segment; both are true intersections for closed segments.
            return true;
        }
        // Collinear cases: intersection iff the projections overlap.
        (o1 == Orientation::Collinear && self.mbr().contains_point(&other.a))
            || (o2 == Orientation::Collinear && self.mbr().contains_point(&other.b))
            || (o3 == Orientation::Collinear && other.mbr().contains_point(&self.a))
            || (o4 == Orientation::Collinear && other.mbr().contains_point(&self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn crossing_segments_intersect() {
        assert!(s(0.0, 0.0, 2.0, 2.0).intersects(&s(0.0, 2.0, 2.0, 0.0)));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        assert!(!s(0.0, 0.0, 2.0, 0.0).intersects(&s(0.0, 1.0, 2.0, 1.0)));
    }

    #[test]
    fn touching_at_endpoint_intersects() {
        assert!(s(0.0, 0.0, 1.0, 1.0).intersects(&s(1.0, 1.0, 2.0, 0.0)));
    }

    #[test]
    fn t_junction_intersects() {
        // Endpoint of one segment lies in the interior of the other.
        assert!(s(0.0, 0.0, 2.0, 0.0).intersects(&s(1.0, 0.0, 1.0, 5.0)));
    }

    #[test]
    fn collinear_overlapping_intersects() {
        assert!(s(0.0, 0.0, 2.0, 0.0).intersects(&s(1.0, 0.0, 3.0, 0.0)));
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        assert!(!s(0.0, 0.0, 1.0, 0.0).intersects(&s(2.0, 0.0, 3.0, 0.0)));
    }

    #[test]
    fn disjoint_in_general_position() {
        assert!(!s(0.0, 0.0, 1.0, 1.0).intersects(&s(2.0, 0.0, 3.0, -1.0)));
    }

    #[test]
    fn near_miss_does_not_intersect() {
        // Segments whose MBRs overlap but that do not cross.
        assert!(!s(0.0, 0.0, 4.0, 4.0).intersects(&s(0.0, 1.5, 1.0, 4.0)));
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = s(0.0, 0.0, 3.0, 3.0);
        let b = s(0.0, 3.0, 3.0, 0.0);
        assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn mbr_covers_endpoints() {
        let seg = s(3.0, -1.0, 0.0, 2.0);
        let m = seg.mbr();
        assert!(m.contains_point(&seg.a));
        assert!(m.contains_point(&seg.b));
        assert_eq!(m, Rect::new(0.0, -1.0, 3.0, 2.0));
    }

    #[test]
    fn orientation_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(orientation(&a, &b, &Point::new(1.0, 1.0)), Orientation::Ccw);
        assert_eq!(orientation(&a, &b, &Point::new(1.0, -1.0)), Orientation::Cw);
        assert_eq!(
            orientation(&a, &b, &Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }
}
